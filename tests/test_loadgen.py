"""Tests for the closed-loop load harness (repro.loadgen).

The load-bearing properties: spec and SLO parsing fail loudly on
malformed input (mirroring the serving workload parser); percentiles
are exact nearest-rank over the full sample; workload generation and
the full harness are deterministic — the same spec at the same seed
produces byte-identical reports; SLO gates evaluate in both
directions and refuse to gate on missing metrics.
"""

import json

import pytest

from repro.errors import LoadGenError
from repro.loadgen import (
    GATES, LoadSpec, SLOSpec, bench_payload, evaluate, generate_workload,
    run_load, to_json, zipf_weights,
)
from repro.obs import Histogram, nearest_rank

SPEC = {
    "name": "t", "domain": "ecommerce", "asks": 24, "seed": 17,
    "sessions": 3, "skew": 1.0, "burst": 6, "think_work": 5,
}

QUESTIONS = ["q%d" % i for i in range(6)]


# ----------------------------------------------------------------------
# Exact nearest-rank percentiles
# ----------------------------------------------------------------------

class TestNearestRank:
    def test_small_sample_p50_p95_p99(self):
        sample = [10, 20, 30, 40, 50, 60, 70, 80, 90, 100]
        assert nearest_rank(sample, 0.50) == 50
        assert nearest_rank(sample, 0.95) == 100
        assert nearest_rank(sample, 0.99) == 100
        assert nearest_rank(sample, 0.90) == 90

    def test_result_is_always_an_observed_value(self):
        sample = [3, 1, 4, 1, 5]
        for q in (0.0, 0.25, 0.5, 0.75, 0.9, 1.0):
            assert nearest_rank(sample, q) in sample

    def test_tied_sample(self):
        assert nearest_rank([7, 7, 7, 7], 0.5) == 7
        assert nearest_rank([0, 0, 0, 100], 0.75) == 0
        assert nearest_rank([0, 0, 0, 100], 0.76) == 100

    def test_single_element(self):
        for q in (0.0, 0.5, 0.99, 1.0):
            assert nearest_rank([42], q) == 42

    def test_ints_stay_ints(self):
        value = nearest_rank([1, 2, 3], 0.5)
        assert value == 2 and isinstance(value, int)

    def test_unsorted_input_is_sorted_first(self):
        assert nearest_rank([9, 1, 5], 0.5) == 5

    def test_empty_sample_raises(self):
        with pytest.raises(ValueError):
            nearest_rank([], 0.5)

    def test_out_of_range_quantile_raises(self):
        with pytest.raises(ValueError):
            nearest_rank([1], 1.5)
        with pytest.raises(ValueError):
            nearest_rank([1], -0.1)

    def test_histogram_uses_nearest_rank(self):
        histogram = Histogram("t", reservoir=0)
        for value in (10, 20, 30, 40):
            histogram.observe(value)
        assert histogram.quantile(0.5) == nearest_rank(
            [10, 20, 30, 40], 0.5)
        assert histogram.summary()["p99"] == 40

    def test_unbounded_reservoir_keeps_all_samples(self):
        histogram = Histogram("t", reservoir=0)
        for value in range(5000):
            histogram.observe(value)
        assert len(histogram.values()) == 5000
        assert histogram.quantile(1.0) == 4999


# ----------------------------------------------------------------------
# Spec parsing fails loudly
# ----------------------------------------------------------------------

class TestLoadSpecParsing:
    def test_minimal_spec_defaults(self):
        spec = LoadSpec.from_dict(
            {"name": "m", "domain": "healthcare", "asks": 8})
        assert (spec.seed, spec.sessions, spec.burst) == (17, 4, 8)
        assert spec.arrival == "fixed" and spec.writes == ()

    def test_unknown_key_raises(self):
        with pytest.raises(LoadGenError, match="unknown spec key"):
            LoadSpec.from_dict(dict(SPEC, qps=100))

    def test_missing_required_key_raises(self):
        with pytest.raises(LoadGenError, match="missing required"):
            LoadSpec.from_dict({"name": "x", "domain": "ecommerce"})

    def test_unknown_domain_raises(self):
        with pytest.raises(LoadGenError, match="domain"):
            LoadSpec.from_dict(dict(SPEC, domain="finance"))

    def test_unknown_arrival_raises(self):
        with pytest.raises(LoadGenError, match="arrival"):
            LoadSpec.from_dict(dict(SPEC, arrival="bursty"))

    def test_negative_values_raise(self):
        with pytest.raises(LoadGenError, match="asks"):
            LoadSpec.from_dict(dict(SPEC, asks=0))
        with pytest.raises(LoadGenError, match="think_work"):
            LoadSpec.from_dict(dict(SPEC, think_work=-1))
        with pytest.raises(LoadGenError, match="skew"):
            LoadSpec.from_dict(dict(SPEC, skew=-0.5))

    def test_bool_is_not_an_integer(self):
        with pytest.raises(LoadGenError):
            LoadSpec.from_dict(dict(SPEC, asks=True))

    def test_ask_as_write_raises(self):
        with pytest.raises(LoadGenError, match="must mutate"):
            LoadSpec.from_dict(dict(
                SPEC, write_every=4,
                writes=[{"op": "ask", "question": "q"}],
            ))

    def test_invalid_write_record_raises(self):
        with pytest.raises(LoadGenError):
            LoadSpec.from_dict(dict(
                SPEC, write_every=4, writes=[{"op": "drop_tables"}],
            ))

    def test_write_every_without_writes_raises(self):
        with pytest.raises(LoadGenError, match="no writes"):
            LoadSpec.from_dict(dict(SPEC, write_every=4))

    def test_bad_json_raises(self):
        with pytest.raises(LoadGenError, match="not valid JSON"):
            LoadSpec.from_json("{nope}")

    def test_non_object_raises(self):
        with pytest.raises(LoadGenError, match="JSON object"):
            LoadSpec.from_json('["a"]')

    def test_to_dict_roundtrip(self):
        spec = LoadSpec.from_dict(dict(SPEC))
        assert LoadSpec.from_dict(spec.to_dict()) == spec

    def test_shards_defaults_to_one(self):
        spec = LoadSpec.from_dict(dict(SPEC))
        assert spec.shards == 1

    def test_shards_parsed_and_echoed(self):
        spec = LoadSpec.from_dict(dict(SPEC, shards=4))
        assert spec.shards == 4
        assert spec.to_dict()["shards"] == 4

    def test_shards_must_be_positive_integer(self):
        with pytest.raises(LoadGenError, match="shards"):
            LoadSpec.from_dict(dict(SPEC, shards=0))
        with pytest.raises(LoadGenError, match="shards"):
            LoadSpec.from_dict(dict(SPEC, shards="2"))


# ----------------------------------------------------------------------
# SLO parsing and gate evaluation
# ----------------------------------------------------------------------

class TestSLOSpec:
    def test_unknown_gate_raises(self):
        with pytest.raises(LoadGenError, match="unknown SLO key"):
            SLOSpec.from_dict({"p42_work_max": 1})

    def test_negative_threshold_raises(self):
        with pytest.raises(LoadGenError, match="non-negative"):
            SLOSpec.from_dict({"p95_work_max": -1})

    def test_rate_above_one_raises(self):
        with pytest.raises(LoadGenError, match=r"\[0, 1\]"):
            SLOSpec.from_dict({"error_rate_max": 1.5})

    def test_non_numeric_threshold_raises(self):
        with pytest.raises(LoadGenError, match="must be a number"):
            SLOSpec.from_dict({"p95_work_max": "fast"})
        with pytest.raises(LoadGenError, match="must be a number"):
            SLOSpec.from_dict({"p95_work_max": True})

    def test_empty_spec_raises(self):
        with pytest.raises(LoadGenError, match="no gates"):
            SLOSpec.from_dict({"name": "empty"})

    def test_evaluate_both_directions(self):
        slo = SLOSpec.from_dict({
            "p95_work_max": 100, "answer_hit_rate_min": 0.5,
        })
        verdict = evaluate(
            {"work_p95": 100, "answer_hit_rate": 0.4}, slo)
        by_gate = {r.gate: r.passed for r in verdict.results}
        assert by_gate == {"p95_work_max": True,
                           "answer_hit_rate_min": False}
        assert not verdict.passed
        assert [r.gate for r in verdict.failures()] == [
            "answer_hit_rate_min"]

    def test_evaluate_missing_metric_raises(self):
        slo = SLOSpec.from_dict({"p99_work_max": 10})
        with pytest.raises(LoadGenError, match="absent"):
            evaluate({"work_p50": 1}, slo)

    def test_evaluate_none_slo_is_ungated(self):
        assert evaluate({"anything": 1}, None) is None

    def test_every_gate_has_a_metric_and_direction(self):
        for gate, (metric, direction, kind) in GATES.items():
            assert direction in ("max", "min")
            assert kind in ("work", "rate")
            assert metric


# ----------------------------------------------------------------------
# Deterministic workload generation
# ----------------------------------------------------------------------

class TestGeneration:
    def test_same_seed_same_workload(self):
        spec = LoadSpec.from_dict(dict(SPEC, arrival="poisson"))
        assert generate_workload(spec, QUESTIONS) == generate_workload(
            spec, QUESTIONS)

    def test_different_seed_different_workload(self):
        a = LoadSpec.from_dict(dict(SPEC))
        b = LoadSpec.from_dict(dict(SPEC, seed=99))
        assert generate_workload(a, QUESTIONS) != generate_workload(
            b, QUESTIONS)

    def test_burst_and_count_shape(self):
        spec = LoadSpec.from_dict(dict(SPEC))
        bursts = generate_workload(spec, QUESTIONS)
        requests = [r for burst in bursts for r in burst.requests]
        assert len(requests) == spec.asks
        assert all(len(b.requests) <= spec.burst for b in bursts)
        assert all(b.gap == spec.think_work for b in bursts)
        sessions = {r.session for r in requests}
        assert sessions <= {"s00", "s01", "s02"}

    def test_zipf_skew_concentrates_on_hot_ranks(self):
        flat = LoadSpec.from_dict(dict(SPEC, asks=400, skew=0.0))
        hot = LoadSpec.from_dict(dict(SPEC, asks=400, skew=2.0))

        def rank0_share(spec):
            requests = [r for b in generate_workload(spec, QUESTIONS)
                        for r in b.requests]
            count = sum(1 for r in requests
                        if r.payload["question"] == QUESTIONS[0])
            return count / len(requests)

        assert rank0_share(hot) > 2 * rank0_share(flat)

    def test_zipf_weights_shape(self):
        assert zipf_weights(3, 0.0) == [1.0, 1.0, 1.0]
        weights = zipf_weights(4, 1.0)
        assert weights == sorted(weights, reverse=True)
        with pytest.raises(LoadGenError):
            zipf_weights(0, 1.0)

    def test_writes_interleave_as_barriers(self):
        spec = LoadSpec.from_dict(dict(
            SPEC, write_every=6,
            writes=[{"op": "sql", "statement": "SELECT 1"}],
        ))
        requests = [r for b in generate_workload(spec, QUESTIONS)
                    for r in b.requests]
        ops = [r.op for r in requests]
        assert ops.count("sql") == spec.asks // 6
        # A write follows every 6th ask exactly.
        asks_seen = 0
        for op in ops:
            if op == "ask":
                asks_seen += 1
            else:
                assert asks_seen % 6 == 0

    def test_empty_question_pool_raises(self):
        spec = LoadSpec.from_dict(dict(SPEC))
        with pytest.raises(LoadGenError, match="empty"):
            generate_workload(spec, [])


# ----------------------------------------------------------------------
# End-to-end harness determinism and gating
# ----------------------------------------------------------------------

class TestHarness:
    def test_two_runs_are_byte_identical(self):
        spec = LoadSpec.from_dict(dict(SPEC, arrival="poisson"))
        first = run_load(spec)
        second = run_load(spec)
        assert to_json(bench_payload([first])) == to_json(
            bench_payload([second]))
        assert "work_p95" in first.measurements
        assert first.measurements["asks"] == spec.asks

    def test_slo_breach_is_reported_not_raised(self):
        spec = LoadSpec.from_dict(dict(SPEC, asks=8))
        # think_work > 0 guarantees total_work > 0, so this must breach.
        slo = SLOSpec.from_dict({"total_work_max": 0})
        report = run_load(spec, slo)
        assert report.verdict is not None
        assert not report.passed
        assert [r.gate for r in report.verdict.failures()] == [
            "total_work_max"]
        payload = bench_payload([report])
        assert payload["passed"] is False


# ----------------------------------------------------------------------
# Tenant mix, tenant SLO tiers, per-tenant measurements
# ----------------------------------------------------------------------

TENANT_REGISTRY = {"tenants": [
    {"id": "greedy", "quota": {"capacity": 10, "refill": 0.0}},
    {"id": "quiet"},
]}


class TestTenantMix:
    def test_mix_without_registry_fails_closed(self):
        with pytest.raises(LoadGenError):
            LoadSpec.from_dict(dict(SPEC, tenants={"acme": 1}))

    def test_mix_naming_unregistered_tenant_raises(self):
        with pytest.raises(LoadGenError):
            LoadSpec.from_dict(dict(
                SPEC, tenants={"stranger": 1},
                tenant_registry=TENANT_REGISTRY))

    def test_bad_weights_raise(self):
        for weights in ({}, {"greedy": 0}, {"greedy": "lots"},
                        {"greedy": True}):
            with pytest.raises(LoadGenError):
                LoadSpec.from_dict(dict(
                    SPEC, tenants=weights,
                    tenant_registry=TENANT_REGISTRY))

    def test_invalid_embedded_registry_raises(self):
        with pytest.raises(LoadGenError):
            LoadSpec.from_dict(dict(
                SPEC, tenant_registry={"tenants": [{"id": "x",
                                                    "tier": "gold"}]}))

    def test_roundtrip_and_seeded_tenant_draw(self):
        spec = LoadSpec.from_dict(dict(
            SPEC, tenants={"greedy": 3, "quiet": 1},
            tenant_registry=TENANT_REGISTRY))
        assert LoadSpec.from_dict(spec.to_dict()) == spec
        first = generate_workload(spec, QUESTIONS)
        second = generate_workload(spec, QUESTIONS)
        assert first == second
        tenants = [r.tenant for b in first for r in b.requests
                   if r.op == "ask"]
        assert set(tenants) == {"greedy", "quiet"}
        assert tenants.count("greedy") > tenants.count("quiet")

    def test_untenanted_spec_draws_default_only(self):
        spec = LoadSpec.from_dict(dict(SPEC))
        tenants = {r.tenant for b in generate_workload(spec, QUESTIONS)
                   for r in b.requests}
        assert tenants == {"default"}


class TestTenantSLOTiers:
    def test_tenant_tiers_parse_and_roundtrip(self):
        slo = SLOSpec.from_dict({
            "name": "tiers",
            "error_rate_max": 0.0,
            "tenants": {"greedy": {"shed_rate_min": 0.2},
                        "quiet": {"shed_rate_max": 0.0}},
        })
        assert SLOSpec.from_dict(slo.to_dict()) == slo

    def test_empty_tier_and_unknown_tier_gate_raise(self):
        with pytest.raises(LoadGenError):
            SLOSpec.from_dict({"tenants": {"greedy": {}}})
        with pytest.raises(LoadGenError):
            SLOSpec.from_dict({"tenants": {"greedy": {"nope": 1}}})

    def test_tier_gates_read_prefixed_metrics(self):
        slo = SLOSpec.from_dict({
            "tenants": {"greedy": {"shed_rate_min": 0.2},
                        "quiet": {"shed_rate_max": 0.0}},
        })
        report = evaluate({"tenant.greedy.shed_rate": 0.5,
                           "tenant.quiet.shed_rate": 0.0}, slo)
        assert report.passed
        labels = [r.gate for r in report.results]
        assert labels == ["tenants.greedy.shed_rate_min",
                          "tenants.quiet.shed_rate_max"]
        report = evaluate({"tenant.greedy.shed_rate": 0.0,
                           "tenant.quiet.shed_rate": 0.0}, slo)
        assert [r.gate for r in report.failures()] == [
            "tenants.greedy.shed_rate_min"]

    def test_tier_on_unmeasured_tenant_raises(self):
        slo = SLOSpec.from_dict(
            {"tenants": {"ghost": {"shed_rate_max": 0.0}}})
        with pytest.raises(LoadGenError):
            evaluate({"shed_rate": 0.0}, slo)


class TestTenantHarness:
    def test_quota_isolation_end_to_end(self):
        spec = LoadSpec.from_dict(dict(
            SPEC, tenants={"greedy": 2, "quiet": 1},
            tenant_registry=TENANT_REGISTRY))
        slo = SLOSpec.from_dict({
            "error_rate_max": 0.0,
            "tenants": {"greedy": {"shed_rate_min": 0.1},
                        "quiet": {"shed_rate_max": 0.0}},
        })
        report = run_load(spec, slo)
        m = report.measurements
        assert m["tenant.greedy.asks"] + m["tenant.quiet.asks"] \
            == m["asks"]
        assert m["tenant.greedy.shed"] > 0
        assert m["tenant.quiet.shed"] == 0
        assert report.passed, report.verdict.render()

    def test_untenanted_measurements_have_no_tenant_keys(self):
        report = run_load(LoadSpec.from_dict(dict(SPEC)))
        assert not any(k.startswith("tenant.")
                       for k in report.measurements)


# ----------------------------------------------------------------------
# CLI exit codes
# ----------------------------------------------------------------------

class TestLoadCli:
    def write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload), encoding="utf-8")
        return str(path)

    def test_pass_breach_and_config_error_codes(self, tmp_path, capsys):
        from repro.cli import main

        spec_path = self.write(tmp_path, "spec.json",
                               dict(SPEC, asks=8))
        ok_path = self.write(tmp_path, "ok.json",
                             {"abstain_rate_max": 1.0})
        tight_path = self.write(tmp_path, "tight.json",
                                {"total_work_max": 0})
        out_path = tmp_path / "report.json"

        assert main(["load", "--spec", spec_path, "--slo", ok_path,
                     "--out", str(out_path)]) == 0
        assert json.loads(out_path.read_text())["passed"] is True
        assert "PASS" in capsys.readouterr().out

        assert main(["load", "--spec", spec_path,
                     "--slo", tight_path]) == 1
        assert "FAIL" in capsys.readouterr().out

        bad_path = self.write(tmp_path, "bad.json",
                              dict(SPEC, domain="finance"))
        assert main(["load", "--spec", bad_path]) == 2
        assert "domain" in capsys.readouterr().err
