"""Semi-structured document store (JSON-like records).

Documents are Python dicts/lists/scalars under a string id. The store
offers path-based filtering and projection plus field indexes — the
semi-structured leg of the heterogeneous lake (JSON logs, XML configs).
"""

from __future__ import annotations

import copy
import json
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from ...errors import StorageError
from ...metering import CHUNKS_READ, CostMeter, GLOBAL_METER
from .jsonpath import flatten, select, select_one


class DocumentStore:
    """A keyed collection of JSON-like documents with path queries."""

    def __init__(self, meter: Optional[CostMeter] = None):
        self._docs: Dict[str, Any] = {}
        self._field_indexes: Dict[str, Dict[Any, set]] = {}
        self._meter = meter if meter is not None else GLOBAL_METER
        self._mutation_listeners: List[Callable[[str], None]] = []

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def add_mutation_listener(self, listener: Callable[[str], None]) -> None:
        """Subscribe ``listener(op)`` to every write on this store.

        The serving layer's write-through cache invalidation hook;
        listeners must not write back into the store.
        """
        self._mutation_listeners.append(listener)

    def _notify_mutation(self, op: str) -> None:
        for listener in self._mutation_listeners:
            listener(op)

    def put(self, doc_id: str, document: Any) -> None:
        """Insert or replace a document (deep-copied on the way in)."""
        if not doc_id:
            raise StorageError("document id cannot be empty")
        _check_jsonable(document)
        if doc_id in self._docs:
            self._unindex(doc_id, self._docs[doc_id])
        stored = copy.deepcopy(document)
        self._docs[doc_id] = stored
        self._index(doc_id, stored)
        self._notify_mutation("put")

    def put_many(self, items: Iterable[Tuple[str, Any]]) -> int:
        """Insert many (id, document) pairs; returns count."""
        count = 0
        for doc_id, document in items:
            self.put(doc_id, document)
            count += 1
        return count

    def delete(self, doc_id: str) -> None:
        """Remove a document (StorageError when absent)."""
        document = self._docs.pop(doc_id, None)
        if document is None:
            raise StorageError("no document %r" % doc_id)
        self._unindex(doc_id, document)
        self._notify_mutation("delete")

    # ------------------------------------------------------------------
    # Field indexes
    # ------------------------------------------------------------------
    def create_field_index(self, path: str) -> None:
        """Index a scalar path for O(1) equality lookup."""
        if path in self._field_indexes:
            return
        index: Dict[Any, set] = {}
        for doc_id, document in self._docs.items():
            for value in select(document, path):
                if _is_scalar(value):
                    index.setdefault(value, set()).add(doc_id)
        self._field_indexes[path] = index

    def _index(self, doc_id: str, document: Any) -> None:
        for path, index in self._field_indexes.items():
            for value in select(document, path):
                if _is_scalar(value):
                    index.setdefault(value, set()).add(doc_id)

    def _unindex(self, doc_id: str, document: Any) -> None:
        for path, index in self._field_indexes.items():
            for value in select(document, path):
                if _is_scalar(value) and value in index:
                    index[value].discard(doc_id)
                    if not index[value]:
                        del index[value]

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get(self, doc_id: str) -> Any:
        """Fetch one document by id (deep copy)."""
        try:
            self._meter.charge(CHUNKS_READ)
            return copy.deepcopy(self._docs[doc_id])
        except KeyError:
            raise StorageError("no document %r" % doc_id) from None

    def ids(self) -> List[str]:
        """All document ids, sorted."""
        return sorted(self._docs)

    def __len__(self) -> int:
        return len(self._docs)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._docs

    def scan(self) -> Iterator[Tuple[str, Any]]:
        """Yield (id, document) in id order, charging ``chunks_read``."""
        for doc_id in sorted(self._docs):
            self._meter.charge(CHUNKS_READ)
            yield doc_id, copy.deepcopy(self._docs[doc_id])

    def find_equal(self, path: str, value: Any) -> List[str]:
        """Ids of documents whose *path* equals *value*.

        Uses the field index when one exists, else scans.
        """
        index = self._field_indexes.get(path)
        if index is not None:
            return sorted(index.get(value, ()))
        hits = []
        for doc_id, document in self.scan():
            if value in select(document, path):
                hits.append(doc_id)
        return hits

    def find(self, predicate: Callable[[Any], bool]) -> List[str]:
        """Ids of documents satisfying an arbitrary predicate."""
        return [d for d, doc in self.scan() if predicate(doc)]

    def project(self, paths: Dict[str, str]) -> List[Dict[str, Any]]:
        """Project every document to {column: value-at-path} records.

        The bridge from semi-structured to relational: the result loads
        directly via ``Database.load_dicts``.
        """
        records = []
        for doc_id, document in self.scan():
            record = {"doc_id": doc_id}
            for column, path in paths.items():
                record[column] = select_one(document, path)
            records.append(record)
        return records

    def flatten_document(self, doc_id: str) -> List[Tuple[str, Any]]:
        """(path, scalar) pairs of one document (for graph indexing)."""
        return flatten(self.get(doc_id))

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def dump_json(self) -> str:
        """Serialize the whole store to a JSON string."""
        return json.dumps(self._docs, sort_keys=True, default=str)

    @classmethod
    def load_json(cls, text: str,
                  meter: Optional[CostMeter] = None) -> "DocumentStore":
        """Rebuild a store from :meth:`dump_json` output."""
        store = cls(meter=meter)
        data = json.loads(text)
        if not isinstance(data, dict):
            raise StorageError("expected a JSON object of id → document")
        for doc_id, document in data.items():
            store.put(doc_id, document)
        return store


def _is_scalar(value: Any) -> bool:
    return value is None or isinstance(value, (str, int, float, bool))


def _check_jsonable(document: Any, depth: int = 0) -> None:
    if depth > 32:
        raise StorageError("document nesting too deep")
    if _is_scalar(document):
        return
    if isinstance(document, list):
        for item in document:
            _check_jsonable(item, depth + 1)
        return
    if isinstance(document, dict):
        for key, value in document.items():
            if not isinstance(key, str):
                raise StorageError("document keys must be strings")
            _check_jsonable(value, depth + 1)
        return
    raise StorageError(
        "unsupported document value of type %s" % type(document).__name__
    )
