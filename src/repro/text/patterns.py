"""Regex-based surface patterns for measure-like entities.

These implement the paper's examples directly: spotting "Q2" as a
time-related entity, "20%" as a change measure, "$1,299" as money, and
ISO dates/IDs in clinical notes. Pattern hits feed both the NER tagger
and the relational-table generator.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List

# Entity-kind constants shared with repro.text.ner and repro.extraction.
KIND_PERCENT = "PERCENT"
KIND_MONEY = "MONEY"
KIND_DATE = "DATE"
KIND_QUARTER = "QUARTER"
KIND_NUMBER = "NUMBER"
KIND_ID = "ID"
KIND_YEAR = "YEAR"

_MONTH = (
    "january|february|march|april|may|june|july|august|september|"
    "october|november|december|jan|feb|mar|apr|jun|jul|aug|sep|sept|"
    "oct|nov|dec"
)

_PATTERNS = [
    (KIND_PERCENT, re.compile(r"[-+]?\d+(?:\.\d+)?\s?%")),
    (KIND_MONEY, re.compile(r"\$\s?\d+(?:,\d{3})*(?:\.\d+)?(?:\s?(?:million|billion|k|m|bn))?", re.IGNORECASE)),
    (KIND_DATE, re.compile(r"\b\d{4}-\d{2}-\d{2}\b")),
    (KIND_DATE, re.compile(r"\b(?:%s)\.?\s+\d{1,2}(?:st|nd|rd|th)?,?\s+\d{4}\b" % _MONTH, re.IGNORECASE)),
    (KIND_QUARTER, re.compile(r"\bQ[1-4](?:\s+\d{4})?\b")),
    (KIND_QUARTER, re.compile(r"\b(?:first|second|third|fourth)\s+quarter(?:\s+of\s+\d{4})?\b", re.IGNORECASE)),
    (KIND_ID, re.compile(r"\b(?:PAT|CUST|PROD|ORD|TRIAL|DRUG|SKU|DOC)-\d+\b")),
    (KIND_YEAR, re.compile(r"\b(?:19|20)\d{2}\b")),
    (KIND_NUMBER, re.compile(r"\b\d+(?:,\d{3})*(?:\.\d+)?\b")),
]

_WORD_QUARTERS = {
    "first quarter": "Q1",
    "second quarter": "Q2",
    "third quarter": "Q3",
    "fourth quarter": "Q4",
}


@dataclass(frozen=True)
class PatternMatch:
    """A pattern hit with its kind, surface text and offsets."""

    kind: str
    text: str
    start: int
    end: int

    @property
    def span(self):
        """(start, end) character span."""
        return (self.start, self.end)


def find_patterns(text: str) -> List[PatternMatch]:
    """Find all measure-like entities in *text*, longest-match-first.

    Overlapping matches are resolved in pattern priority order (percent
    beats plain number, dates beat years), so "20%" never also yields a
    NUMBER hit for "20".

    >>> [m.kind for m in find_patterns("Q2 sales rose 20%")]
    ['QUARTER', 'PERCENT']
    """
    taken = [False] * len(text)
    matches: List[PatternMatch] = []
    for kind, regex in _PATTERNS:
        for m in regex.finditer(text):
            if any(taken[m.start() : m.end()]):
                continue
            for i in range(m.start(), m.end()):
                taken[i] = True
            matches.append(PatternMatch(kind, m.group(), m.start(), m.end()))
    matches.sort(key=lambda pm: pm.start)
    return matches


def normalize_quarter(text: str) -> str:
    """Canonicalize quarter mentions to "Qn" (optionally "Qn YYYY").

    >>> normalize_quarter("second quarter of 2024")
    'Q2 2024'
    """
    low = text.lower().strip()
    year_match = re.search(r"(19|20)\d{2}", low)
    year = year_match.group() if year_match else ""
    for phrase, canon in _WORD_QUARTERS.items():
        if low.startswith(phrase):
            return (canon + " " + year).strip()
    qmatch = re.match(r"q([1-4])", low)
    if qmatch:
        return ("Q%s %s" % (qmatch.group(1), year)).strip()
    return text.strip()


def normalize_percent(text: str) -> float:
    """Parse a percent mention to its float value.

    >>> normalize_percent("+20%")
    20.0
    """
    cleaned = text.replace("%", "").replace(" ", "")
    return float(cleaned)


def extract_first_scalar(text: str) -> "float | None":
    """First numeric value in *text*, scale-aware.

    Money mentions resolve through :func:`normalize_money` so
    "$1.2 million" yields 1200000.0, percents drop their sign mark,
    plain numbers lose their thousands separators.

    >>> extract_first_scalar("The answer is $1.2 million.")
    1200000.0
    """
    for match in find_patterns(text):
        if match.kind == KIND_MONEY:
            try:
                return normalize_money(match.text)
            except ValueError:
                continue
        if match.kind == KIND_PERCENT:
            try:
                return normalize_percent(match.text)
            except ValueError:
                continue
        if match.kind in (KIND_NUMBER, KIND_YEAR):
            cleaned = match.text.replace(",", "")
            # The unsigned NUMBER pattern misses a leading sign.
            if match.start > 0 and text[match.start - 1] in "+-":
                cleaned = text[match.start - 1] + cleaned
            try:
                return float(cleaned)
            except ValueError:
                continue
    return None


def normalize_money(text: str) -> float:
    """Parse a money mention to a float amount in base units.

    Handles thousands separators and scale words (million/billion/k).

    >>> normalize_money("$1.5 million")
    1500000.0
    """
    low = text.lower().replace("$", "").replace(",", "").strip()
    scale = 1.0
    for word, factor in (
        ("billion", 1e9), ("bn", 1e9), ("million", 1e6), ("m", 1e6),
        ("k", 1e3),
    ):
        if low.endswith(word):
            low = low[: -len(word)].strip()
            scale = factor
            break
    return float(low) * scale
