"""Per-tenant work-clock token buckets.

Quotas are measured on the CostMeter work clock (the sum of every
counter — deterministic, machine-independent, monotone), never wall
time, matching the budget/breaker discipline of the resilience layer.
A bucket is *post-paid*: admission only requires a positive balance,
and the request's actual work is charged afterwards, possibly driving
the balance into debt that later refill pays down. This keeps
admission O(1) without predicting request cost, while still bounding
every tenant's long-run work rate at ``refill`` units of work per unit
of cluster work-clock.

Buckets are plain instance state owned by the admission controller —
never module-level (the tenancy lint rule forbids that), so two
servers or two tests can never share quota accounting by accident.
"""

from __future__ import annotations

from typing import Optional


class WorkClockBucket:
    """One tenant's deterministic token bucket on the work clock."""

    def __init__(self, capacity: int, refill: float, now: int = 0):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        if refill < 0:
            raise ValueError("refill must be non-negative")
        self._capacity = float(capacity)
        self._refill = float(refill)
        self._tokens = float(capacity)
        self._clock = int(now)
        self._spent = 0

    def _advance(self, now: int) -> None:
        if now > self._clock:
            self._tokens = min(
                self._capacity,
                self._tokens + (now - self._clock) * self._refill,
            )
            self._clock = now

    def admit(self, now: int) -> bool:
        """May a request proceed at work-clock *now*?

        True while the balance is positive; the request's true cost is
        settled later via :meth:`charge`.
        """
        self._advance(now)
        return self._tokens > 0.0

    def charge(self, now: int, work: int) -> None:
        """Settle *work* units of completed request cost."""
        self._advance(now)
        if work > 0:
            self._tokens -= float(work)
            self._spent += work

    @property
    def tokens(self) -> float:
        """Current balance (may be negative: accumulated debt)."""
        return self._tokens

    @property
    def capacity(self) -> int:
        """The configured burst capacity."""
        return int(self._capacity)

    @property
    def spent(self) -> int:
        """Total work units this bucket has ever settled."""
        return self._spent


def bucket_for(capacity: Optional[int], refill: float,
               now: int = 0) -> Optional[WorkClockBucket]:
    """A bucket for a tenant quota, or None when the tenant is unlimited."""
    if capacity is None:
        return None
    return WorkClockBucket(capacity, refill, now=now)
