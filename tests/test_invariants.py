"""Property-based invariant tests across subsystems."""

import math
import random

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.metering import CostMeter
from repro.entropy import SemanticEntropyEstimator, auroc
from repro.graphindex import (
    EDGE_CO_OCCURS, EDGE_MENTIONS, GraphEdge, GraphNode,
    HeterogeneousGraph, NODE_CHUNK, NODE_ENTITY, graph_from_json,
    graph_to_json, pagerank,
)
from repro.retrieval.metrics import (
    ndcg_at_k, precision_at_k, recall_at_k, reciprocal_rank,
)
from repro.slm.entailment import EntailmentJudge
from repro.storage.types import sort_key

# ----------------------------------------------------------------------
# Graph invariants
# ----------------------------------------------------------------------
edge_list = st.lists(
    st.tuples(st.integers(0, 9), st.integers(0, 9)),
    min_size=0, max_size=30,
)


def build_graph(edges):
    g = HeterogeneousGraph(meter=CostMeter())
    for i in range(10):
        kind = NODE_CHUNK if i % 2 == 0 else NODE_ENTITY
        g.add_node(GraphNode("n%d" % i, kind, "n%d" % i))
    for a, b in edges:
        kind = EDGE_MENTIONS if (a + b) % 2 else EDGE_CO_OCCURS
        g.add_edge(GraphEdge("n%d" % a, "n%d" % b, kind))
    return g


class TestGraphInvariants:
    @given(edges=edge_list)
    @settings(max_examples=50, deadline=None)
    def test_degree_sum_is_twice_edges(self, edges):
        g = build_graph(edges)
        loops = sum(
            1 for e in g.edges() if e.source == e.target
        )
        degree_sum = sum(g.degree(n.node_id) for n in g.nodes())
        assert degree_sum == 2 * g.n_edges - loops

    @given(edges=edge_list)
    @settings(max_examples=50, deadline=None)
    def test_bfs_symmetric_reachability(self, edges):
        g = build_graph(edges)
        depths_a = g.bfs(["n0"], max_depth=10)
        for target in depths_a:
            back = g.bfs([target], max_depth=10)
            assert "n0" in back

    @given(edges=edge_list)
    @settings(max_examples=30, deadline=None)
    def test_pagerank_is_distribution(self, edges):
        g = build_graph(edges)
        ranks = pagerank(g)
        assert all(r >= 0 for r in ranks.values())
        assert sum(ranks.values()) == pytest.approx(1.0, abs=1e-6)

    @given(edges=edge_list)
    @settings(max_examples=30, deadline=None)
    def test_json_roundtrip_preserves_structure(self, edges):
        g = build_graph(edges)
        clone = graph_from_json(graph_to_json(g), meter=CostMeter())
        assert clone.n_nodes == g.n_nodes
        assert clone.n_edges == g.n_edges
        for node in g.nodes():
            assert clone.degree(node.node_id) == g.degree(node.node_id)

    @given(edges=edge_list)
    @settings(max_examples=30, deadline=None)
    def test_components_partition_nodes(self, edges):
        g = build_graph(edges)
        components = g.connected_components()
        all_nodes = set()
        for component in components:
            assert not (all_nodes & component)
            all_nodes |= component
        assert len(all_nodes) == g.n_nodes


# ----------------------------------------------------------------------
# Retrieval metric invariants
# ----------------------------------------------------------------------
ranking_strategy = st.lists(
    st.sampled_from([chr(ord("a") + i) for i in range(12)]),
    min_size=0, max_size=12, unique=True,
)
relevant_strategy = st.sets(
    st.sampled_from([chr(ord("a") + i) for i in range(12)]),
    min_size=0, max_size=6,
)


class TestMetricInvariants:
    @given(ranking=ranking_strategy, relevant=relevant_strategy,
           k=st.integers(1, 12))
    @settings(max_examples=80, deadline=None)
    def test_bounds(self, ranking, relevant, k):
        for fn in (recall_at_k, precision_at_k, ndcg_at_k):
            value = fn(ranking, relevant, k)
            assert 0.0 <= value <= 1.0
        assert 0.0 <= reciprocal_rank(ranking, relevant) <= 1.0

    @given(ranking=ranking_strategy, relevant=relevant_strategy)
    @settings(max_examples=60, deadline=None)
    def test_recall_monotone_in_k(self, ranking, relevant):
        values = [
            recall_at_k(ranking, relevant, k)
            for k in range(1, len(ranking) + 2)
        ]
        assert values == sorted(values)

    @given(ranking=ranking_strategy, relevant=relevant_strategy,
           k=st.integers(1, 12))
    @settings(max_examples=60, deadline=None)
    def test_perfect_prefix_maximizes_ndcg(self, ranking, relevant, k):
        assume(relevant)
        ideal = list(relevant) + [r for r in ranking if r not in relevant]
        assert ndcg_at_k(ideal, relevant, k) == pytest.approx(1.0)


# ----------------------------------------------------------------------
# Entropy / calibration invariants
# ----------------------------------------------------------------------
class TestEntropyInvariants:
    @given(answers=st.lists(
        st.sampled_from([
            "sales rose 20%", "sales fell 5%", "the patient recovered",
            "it depends on the data", "revenue rose 20%",
        ]), min_size=1, max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_entropy_bounds(self, answers):
        estimator = SemanticEntropyEstimator(
            judge=EntailmentJudge(meter=CostMeter())
        )
        estimate = estimator.estimate_texts(answers)
        assert 0.0 <= estimate.entropy <= math.log(len(answers)) + 1e-9
        assert 1 <= estimate.n_clusters <= len(answers)
        assert 0.0 <= estimate.normalized <= 1.0 + 1e-9

    @given(answers=st.lists(
        st.sampled_from(["a b c", "x y z", "p q r"]),
        min_size=2, max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_duplicating_samples_preserves_entropy(self, answers):
        estimator = SemanticEntropyEstimator(
            judge=EntailmentJudge(meter=CostMeter())
        )
        once = estimator.estimate_texts(answers).entropy
        twice = estimator.estimate_texts(answers + answers).entropy
        assert once == pytest.approx(twice, abs=1e-9)

    @given(scores=st.lists(st.floats(0, 1, allow_nan=False),
                           min_size=2, max_size=20),
           flips=st.lists(st.booleans(), min_size=2, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_auroc_complement_symmetry(self, scores, flips):
        n = min(len(scores), len(flips))
        scores, labels = scores[:n], flips[:n]
        assume(any(labels) and not all(labels))
        direct = auroc(scores, labels)
        inverted = auroc([-s for s in scores], labels)
        assert direct + inverted == pytest.approx(1.0)


# ----------------------------------------------------------------------
# sort_key total order
# ----------------------------------------------------------------------
mixed_values = st.one_of(
    st.none(), st.booleans(), st.integers(-50, 50),
    st.floats(-50, 50, allow_nan=False),
    st.text(max_size=6), st.dates(),
)


class TestSortKeyInvariants:
    @given(values=st.lists(mixed_values, max_size=25))
    @settings(max_examples=60, deadline=None)
    def test_sortable_and_stable(self, values):
        ordered = sorted(values, key=sort_key)
        assert sorted(ordered, key=sort_key) == ordered

    @given(values=st.lists(mixed_values, min_size=1, max_size=25))
    @settings(max_examples=60, deadline=None)
    def test_nulls_first(self, values):
        ordered = sorted(values, key=sort_key)
        seen_non_null = False
        for value in ordered:
            if value is None:
                assert not seen_non_null
            else:
                seen_non_null = True
