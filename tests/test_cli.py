"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestCLI:
    def test_demo_runs(self, capsys):
        assert main(["demo", "--domain", "ecommerce", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "correct" in out

    def test_ask_structured(self, capsys):
        code = main([
            "ask", "--domain", "ecommerce", "--seed", "3",
            "Find the total sales of all products in Q2.",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert out.strip()

    def test_stats(self, capsys):
        assert main(["stats", "--domain", "healthcare", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "graph:" in out and "tables:" in out

    def test_sql(self, capsys):
        code = main([
            "sql", "--domain", "ecommerce", "--seed", "3",
            "SELECT COUNT(*) AS n FROM products",
        ])
        assert code == 0
        assert "n" in capsys.readouterr().out

    def test_session_mode(self, capsys):
        import io

        from repro.cli import build_parser, cmd_session

        args = build_parser().parse_args(
            ["session", "--domain", "ecommerce", "--seed", "3"]
        )
        args._stdin = io.StringIO(
            "Find the total sales of all products in Q2.\n"
            "\n"
        )
        assert cmd_session(args) == 0
        out = capsys.readouterr().out
        assert out.strip()

    def test_analyze_check_passes_on_shipped_tree(self, capsys):
        assert main(["analyze", "--check"]) == 0
        out = capsys.readouterr().out
        assert "stage-interference:" in out

    def test_analyze_forwards_table_override(self, tmp_path, capsys):
        table = tmp_path / "safety.json"
        assert main(["analyze", "--write", "--table", str(table)]) == 0
        assert table.exists()
        capsys.readouterr()

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])

    def test_parser_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.domain == "ecommerce" and args.seed == 7
