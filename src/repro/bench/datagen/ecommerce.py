"""Synthetic e-commerce data lake with ground truth.

Generates the workload the paper's introduction motivates: a product
catalog and quarterly sales (structured), shipment logs (JSON), and
customer-review/market reports (unstructured) that mention per-product
satisfaction changes. The generator keeps every planted fact, so QA
pairs, retrieval gold and extraction gold all come with labels.

Everything is seeded: the same spec reproduces the same lake.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ...errors import BenchmarkError
from .queries import (
    KIND_COMPARISON, KIND_CROSS_MODAL, KIND_STRUCTURED_AGG,
    KIND_STRUCTURED_ENTITY, KIND_UNSTRUCTURED_FACT, QAPair, RetrievalQuery,
)

_ADJECTIVES = (
    "Alpha", "Beta", "Gamma", "Delta", "Epsilon", "Zeta", "Nova", "Prime",
    "Crimson", "Azure", "Amber", "Cobalt", "Ivory", "Onyx", "Quartz",
    "Solar", "Lunar", "Rapid", "Silent", "Turbo",
)
_NOUNS = (
    "Widget", "Gadget", "Gizmo", "Module", "Sensor", "Router", "Speaker",
    "Charger", "Blender", "Lamp", "Kettle", "Monitor", "Drone", "Scale",
    "Camera", "Printer", "Tracker", "Heater", "Fan", "Clock",
)
_MANUFACTURERS = (
    "Acme", "Globex", "Initech", "Umbrella", "Stark Labs", "Wayne Tech",
    "Hooli", "Vandelay",
)
_CATEGORIES = ("electronics", "home", "kitchen", "outdoor", "office")

_UP_TEMPLATES = (
    "Customer satisfaction with the {product} increased {pct}% in "
    "{quarter} {year}.",
    "In {quarter} {year}, satisfaction with the {product} rose {pct}%.",
    "The {product} saw its satisfaction climb {pct}% during "
    "{quarter} {year}.",
)
_DOWN_TEMPLATES = (
    "Customer satisfaction with the {product} decreased {pct}% in "
    "{quarter} {year}.",
    "In {quarter} {year}, satisfaction with the {product} fell {pct}%.",
    "The {product} saw its satisfaction drop {pct}% during "
    "{quarter} {year}.",
)
_FILLER_SENTENCES = (
    "Shoppers praised the packaging and the quick setup process.",
    "Several buyers mentioned the helpful customer support team.",
    "Retail partners reported steady foot traffic over the period.",
    "The warranty terms remained unchanged from the previous cycle.",
    "Online forums discussed accessories and third-party add-ons.",
    "Seasonal promotions ran in selected regional markets.",
)
_NOISE_SENTENCES = (
    "Some users felt the product was somewhat better than before.",
    "Feedback was mixed and hard to quantify this period.",
    "Anecdotal reports suggested modest shifts in sentiment.",
)

QUARTERS = ("Q1", "Q2", "Q3", "Q4")


@dataclass
class LakeSpec:
    """Size/noise knobs of the synthetic lake."""

    n_products: int = 12
    n_quarters: int = 4
    year: int = 2024
    reviews_noise: float = 0.0   # fraction of reports made vague
    n_filler_docs: int = 4       # entity-free distractor documents
    name_variant_prob: float = 0.0  # reviews hyphenate product names
    seed: int = 7

    def __post_init__(self):
        if not 1 <= self.n_quarters <= 4:
            raise BenchmarkError("n_quarters must be in [1, 4]")
        if self.n_products < 2:
            raise BenchmarkError("need at least 2 products")
        if not 0.0 <= self.reviews_noise <= 1.0:
            raise BenchmarkError("reviews_noise must be in [0, 1]")
        if not 0.0 <= self.name_variant_prob <= 1.0:
            raise BenchmarkError("name_variant_prob must be in [0, 1]")


@dataclass
class SatisfactionFact:
    """Gold: one planted satisfaction-change fact."""

    product: str
    quarter: str
    year: int
    change_percent: float   # signed
    doc_id: str
    noisy: bool = False

    def gold_record(self) -> Dict[str, Any]:
        """The gold extraction record (E4's unit of comparison)."""
        return {
            "subject": self.product.lower(),
            "metric": "satisfaction",
            "change_percent": self.change_percent,
            "quarter": self.quarter,
            "year": self.year,
            "direction": "up" if self.change_percent >= 0 else "down",
        }


@dataclass
class EcommerceLake:
    """A fully materialized synthetic lake plus all gold labels."""

    spec: LakeSpec
    products: List[Dict[str, Any]] = field(default_factory=list)
    sales: List[Dict[str, Any]] = field(default_factory=list)
    shipment_docs: List[Tuple[str, Dict[str, Any]]] = field(
        default_factory=list
    )
    review_texts: List[Tuple[str, str]] = field(default_factory=list)
    satisfaction_facts: List[SatisfactionFact] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def sql_statements(self) -> List[str]:
        """CREATE/INSERT statements for the curated tables."""
        statements = [
            "CREATE TABLE products (pid INT PRIMARY KEY, name TEXT, "
            "name_key TEXT, manufacturer TEXT, category TEXT, price FLOAT)",
            "CREATE TABLE sales (sid INT PRIMARY KEY, pid INT, "
            "quarter TEXT, year INT, amount FLOAT)",
        ]
        for product in self.products:
            statements.append(
                "INSERT INTO products VALUES (%d, '%s', '%s', '%s', '%s', "
                "%.2f)" % (
                    product["pid"], product["name"],
                    product["name"].lower(), product["manufacturer"],
                    product["category"], product["price"],
                )
            )
        for row in self.sales:
            statements.append(
                "INSERT INTO sales VALUES (%d, %d, '%s', %d, %.2f)" % (
                    row["sid"], row["pid"], row["quarter"], row["year"],
                    row["amount"],
                )
            )
        return statements

    def product_names(self) -> List[str]:
        """All product surface names (for gazetteers)."""
        return [p["name"] for p in self.products]

    def gold_extraction_records(
        self, include_noisy: bool = False
    ) -> List[Dict[str, Any]]:
        """Gold records for planted facts.

        Noisy facts exist in the world but are written too vaguely to
        extract; include them when measuring recall against *all*
        planted information (E4's noise sweep).
        """
        return [
            f.gold_record() for f in self.satisfaction_facts
            if include_noisy or not f.noisy
        ]

    # ------------------------------------------------------------------
    # Workloads
    # ------------------------------------------------------------------
    def qa_pairs(self, per_kind: int = 8,
                 seed: Optional[int] = None) -> List[QAPair]:
        """A balanced QA suite across the four question classes."""
        rng = random.Random(self.spec.seed if seed is None else seed)
        pairs: List[QAPair] = []
        pairs += self._structured_entity_pairs(per_kind, rng)
        pairs += self._structured_agg_pairs(per_kind, rng)
        pairs += self._unstructured_pairs(per_kind, rng)
        pairs += self._cross_modal_pairs(per_kind, rng)
        pairs += self._comparison_pairs(per_kind, rng)
        return pairs

    def _comparison_pairs(self, n: int, rng) -> List[QAPair]:
        """Two-entity satisfaction comparisons (paper's intro example)."""
        by_key: Dict[Tuple[str, str], SatisfactionFact] = {}
        for fact in self.satisfaction_facts:
            if not fact.noisy:
                by_key[(fact.product, fact.quarter)] = fact
        products = sorted({p for p, _ in by_key})
        pairs: List[QAPair] = []
        candidates = []
        for quarter in QUARTERS[: self.spec.n_quarters]:
            present = [p for p in products if (p, quarter) in by_key]
            for i in range(0, len(present) - 1, 2):
                candidates.append((present[i], present[i + 1], quarter))
        rng.shuffle(candidates)
        for a, b, quarter in candidates[:n]:
            fact_a, fact_b = by_key[(a, quarter)], by_key[(b, quarter)]
            if fact_a.change_percent == fact_b.change_percent:
                continue
            winner = a if fact_a.change_percent > fact_b.change_percent \
                else b
            pairs.append(QAPair(
                question="Compare the satisfaction change of the %s and "
                         "the %s in %s %d." % (a, b, quarter,
                                               self.spec.year),
                kind=KIND_COMPARISON,
                answer_text="%s is higher" % winner.lower(),
                relevant_docs=(fact_a.doc_id, fact_b.doc_id),
                metadata={
                    "winner": winner.lower(),
                    "values": {a.lower(): fact_a.change_percent,
                               b.lower(): fact_b.change_percent},
                },
            ))
        return pairs

    def _sales_lookup(self) -> Dict[Tuple[int, str], float]:
        return {
            (row["pid"], row["quarter"]): row["amount"]
            for row in self.sales
        }

    def _structured_entity_pairs(self, n: int, rng) -> List[QAPair]:
        lookup = self._sales_lookup()
        pairs = []
        combos = [
            (p, q) for p in self.products
            for q in QUARTERS[: self.spec.n_quarters]
        ]
        rng.shuffle(combos)
        for product, quarter in combos[:n]:
            amount = lookup[(product["pid"], quarter)]
            pairs.append(QAPair(
                question="What is the total sales of the %s in %s?"
                         % (product["name"], quarter),
                kind=KIND_STRUCTURED_ENTITY,
                answer_value=round(amount, 2),
                metadata={"product": product["name"], "quarter": quarter},
            ))
        return pairs

    def _structured_agg_pairs(self, n: int, rng) -> List[QAPair]:
        pairs = []
        quarters = list(QUARTERS[: self.spec.n_quarters])
        manufacturers = sorted({p["manufacturer"] for p in self.products})
        options = []
        for quarter in quarters:
            total = sum(
                row["amount"] for row in self.sales
                if row["quarter"] == quarter
            )
            options.append(QAPair(
                question="Find the total sales of all products in %s."
                         % quarter,
                kind=KIND_STRUCTURED_AGG,
                answer_value=round(total, 2),
                metadata={"quarter": quarter},
            ))
        for quarter in quarters:
            count = sum(
                1 for row in self.sales if row["quarter"] == quarter
            )
            options.append(QAPair(
                question="How many sales records are there in %s?" % quarter,
                kind=KIND_STRUCTURED_AGG,
                answer_value=float(count),
                metadata={"quarter": quarter},
            ))
        pid_to_mfr = {p["pid"]: p["manufacturer"] for p in self.products}
        for manufacturer in manufacturers:
            for quarter in quarters[:2]:
                total = sum(
                    row["amount"] for row in self.sales
                    if row["quarter"] == quarter
                    and pid_to_mfr[row["pid"]] == manufacturer
                )
                if total == 0:
                    continue
                options.append(QAPair(
                    question="Find the total sales of %s products in %s."
                             % (manufacturer, quarter),
                    kind=KIND_STRUCTURED_AGG,
                    answer_value=round(total, 2),
                    metadata={"manufacturer": manufacturer,
                              "quarter": quarter},
                ))
        rng.shuffle(options)
        return options[:n]

    def _unstructured_pairs(self, n: int, rng) -> List[QAPair]:
        clean = [f for f in self.satisfaction_facts if not f.noisy]
        rng.shuffle(clean)
        pairs = []
        for fact in clean[:n]:
            pairs.append(QAPair(
                question="How much did satisfaction with the %s change "
                         "in %s %d?" % (fact.product, fact.quarter,
                                        fact.year),
                kind=KIND_UNSTRUCTURED_FACT,
                answer_value=abs(fact.change_percent),
                relevant_docs=(fact.doc_id,),
                metadata={"product": fact.product,
                          "quarter": fact.quarter,
                          "signed": fact.change_percent,
                          "magnitude": True},
            ))
        return pairs

    def _cross_modal_pairs(self, n: int, rng) -> List[QAPair]:
        by_manufacturer: Dict[str, List[SatisfactionFact]] = {}
        name_to_product = {p["name"]: p for p in self.products}
        for fact in self.satisfaction_facts:
            if fact.noisy:
                continue
            manufacturer = name_to_product[fact.product]["manufacturer"]
            by_manufacturer.setdefault(manufacturer, []).append(fact)
        pairs = []
        for manufacturer in sorted(by_manufacturer):
            facts = by_manufacturer[manufacturer]
            mean_change = sum(f.change_percent for f in facts) / len(facts)
            pairs.append(QAPair(
                question="What is the average satisfaction change of "
                         "products from %s?" % manufacturer,
                kind=KIND_CROSS_MODAL,
                answer_value=round(mean_change, 6),
                relevant_docs=tuple(sorted(f.doc_id for f in facts)),
                metadata={"manufacturer": manufacturer,
                          "n_facts": len(facts)},
            ))
        rng.shuffle(pairs)
        return pairs[:n]

    def retrieval_queries(self, n: int = 20,
                          seed: Optional[int] = None) -> List[RetrievalQuery]:
        """Entity-anchored retrieval queries with document-level gold."""
        rng = random.Random(self.spec.seed + 1 if seed is None else seed)
        by_product: Dict[str, List[str]] = {}
        for fact in self.satisfaction_facts:
            by_product.setdefault(fact.product, []).append(fact.doc_id)
        queries: List[RetrievalQuery] = []
        products = sorted(by_product)
        rng.shuffle(products)
        for product in products:
            queries.append(RetrievalQuery(
                query="How did customer satisfaction with the %s develop?"
                      % product,
                relevant_docs=set(by_product[product]),
                n_entities=1,
            ))
        for i in range(0, len(products) - 1, 2):
            a, b = products[i], products[i + 1]
            queries.append(RetrievalQuery(
                query="Compare satisfaction trends for the %s and the %s."
                      % (a, b),
                relevant_docs=set(by_product[a]) | set(by_product[b]),
                n_entities=2,
            ))
        rng.shuffle(queries)
        return queries[:n]

    def indirect_retrieval_queries(self) -> List[RetrievalQuery]:
        """Manufacturer-level queries whose gold reviews never mention
        the manufacturer — answerable only through the catalog link."""
        by_product: Dict[str, List[str]] = {}
        for fact in self.satisfaction_facts:
            by_product.setdefault(fact.product, []).append(fact.doc_id)
        by_manufacturer: Dict[str, set] = {}
        for product in self.products:
            docs = set(by_product.get(product["name"], ()))
            if docs:
                by_manufacturer.setdefault(
                    product["manufacturer"], set()
                ).update(docs)
        return [
            RetrievalQuery(
                query="How did customers respond to products from %s?"
                      % manufacturer,
                relevant_docs=docs,
                n_entities=1,
                query_class="indirect",
            )
            for manufacturer, docs in sorted(by_manufacturer.items())
        ]


def generate_ecommerce_lake(spec: Optional[LakeSpec] = None) -> EcommerceLake:
    """Materialize a lake from *spec* (deterministic per seed)."""
    spec = spec or LakeSpec()
    rng = random.Random(spec.seed)
    lake = EcommerceLake(spec=spec)

    names = [
        "%s %s" % (adj, noun) for adj in _ADJECTIVES for noun in _NOUNS
    ]
    rng.shuffle(names)
    if spec.n_products > len(names):
        raise BenchmarkError(
            "at most %d products supported" % len(names)
        )
    for pid in range(1, spec.n_products + 1):
        lake.products.append({
            "pid": pid,
            "name": names[pid - 1],
            "manufacturer": rng.choice(_MANUFACTURERS),
            "category": rng.choice(_CATEGORIES),
            "price": round(rng.uniform(5.0, 250.0), 2),
        })

    sid = 0
    for product in lake.products:
        for quarter in QUARTERS[: spec.n_quarters]:
            sid += 1
            lake.sales.append({
                "sid": sid,
                "pid": product["pid"],
                "quarter": quarter,
                "year": spec.year,
                "amount": round(rng.uniform(50.0, 500.0), 2),
            })

    for i, row in enumerate(rng.sample(lake.sales,
                                       min(len(lake.sales), 30))):
        lake.shipment_docs.append((
            "ship-%03d" % i,
            {
                "order": "ORD-%04d" % (1000 + i),
                "pid": row["pid"],
                "quarter": row["quarter"],
                "status": rng.choice(["delivered", "delayed", "returned"]),
                "carrier": rng.choice(["FastShip", "BluePost", "AeroFreight"]),
            },
        ))

    doc_index = 0
    for product in lake.products:
        for quarter in QUARTERS[: spec.n_quarters]:
            doc_id = "review-%03d" % doc_index
            doc_index += 1
            pct = round(rng.uniform(2.0, 35.0), 0)
            going_up = rng.random() < 0.6
            signed = pct if going_up else -pct
            noisy = rng.random() < spec.reviews_noise
            if noisy:
                body = rng.choice(_NOISE_SENTENCES)
            else:
                template = rng.choice(
                    _UP_TEMPLATES if going_up else _DOWN_TEMPLATES
                )
                surface = product["name"]
                if rng.random() < spec.name_variant_prob:
                    # Source-specific naming: hyphenated variant that
                    # exact entity keys do not unify (E11's target).
                    surface = surface.replace(" ", "-")
                body = template.format(
                    product=surface, pct=int(pct),
                    quarter=quarter, year=spec.year,
                )
            filler = rng.sample(_FILLER_SENTENCES, 2)
            text = " ".join([filler[0], body, filler[1]])
            lake.review_texts.append((doc_id, text))
            lake.satisfaction_facts.append(SatisfactionFact(
                product=product["name"], quarter=quarter, year=spec.year,
                change_percent=signed, doc_id=doc_id, noisy=noisy,
            ))

    for i in range(spec.n_filler_docs):
        lake.review_texts.append((
            "filler-%02d" % i,
            " ".join(rng.sample(_FILLER_SENTENCES,
                                min(3, len(_FILLER_SENTENCES)))),
        ))
    return lake
