"""Logical query specifications produced by operator synthesis.

A :class:`QuerySpec` is the flat, comparable form of a synthesized
query: one base table, optional equi-joins, conjunctive filters,
grouping, aggregates, projection and ordering. Flat specs (rather than
operator trees) make E5's plan-accuracy metric a simple signature
comparison, and compile 1:1 to the engine's SQL subset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from ..errors import SynthesisError

FILTER_OPS = ("=", "!=", "<", "<=", ">", ">=", "like")
AGG_FUNCS = ("sum", "avg", "count", "min", "max")


@dataclass(frozen=True)
class FilterSpec:
    """One conjunctive predicate: column op value."""

    column: str
    op: str
    value: Any

    def __post_init__(self):
        if self.op not in FILTER_OPS:
            raise SynthesisError("unsupported filter op %r" % self.op)

    def signature(self) -> Tuple:
        """Canonical comparison form (numbers normalized to float)."""
        value = self.value
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            value = float(value)
        elif isinstance(value, str):
            value = value.strip().lower()
        return (self.column, self.op, value)


@dataclass(frozen=True)
class JoinSpec:
    """An equi-join to another table."""

    table: str
    left_column: str
    right_column: str

    def signature(self) -> Tuple:
        """Canonical comparison form."""
        return (self.table, self.left_column, self.right_column)


@dataclass(frozen=True)
class AggregateSpec:
    """An aggregate over one column ('*' for COUNT(*))."""

    func: str
    column: str = "*"
    distinct: bool = False

    def __post_init__(self):
        if self.func not in AGG_FUNCS:
            raise SynthesisError("unsupported aggregate %r" % self.func)
        if self.func != "count" and self.column == "*":
            raise SynthesisError("%s(*) is not valid" % self.func)
        if self.distinct and self.column == "*":
            raise SynthesisError("COUNT(DISTINCT *) is not valid")

    def signature(self) -> Tuple:
        """Canonical comparison form."""
        return (self.func, self.column, self.distinct)


@dataclass
class QuerySpec:
    """A complete synthesized query."""

    table: str
    joins: Tuple[JoinSpec, ...] = ()
    filters: Tuple[FilterSpec, ...] = ()
    group_by: Tuple[str, ...] = ()
    aggregates: Tuple[AggregateSpec, ...] = ()
    having: Tuple[Tuple[AggregateSpec, str, Any], ...] = ()
    projection: Tuple[str, ...] = ()
    order_by: Optional[str] = None
    descending: bool = False
    limit: Optional[int] = None

    def __post_init__(self):
        if not self.table:
            raise SynthesisError("query needs a base table")
        if not (self.aggregates or self.projection or self.group_by):
            raise SynthesisError(
                "query needs aggregates, a projection or grouping"
            )
        if self.group_by and not self.aggregates:
            raise SynthesisError("grouping without aggregates is ambiguous")

    @property
    def is_aggregate(self) -> bool:
        """True for aggregate queries (global or grouped)."""
        return bool(self.aggregates)

    def signature(self) -> Tuple:
        """Order-insensitive canonical form for plan-accuracy scoring.

        Two specs with the same signature produce the same result
        modulo row order.
        """
        return (
            self.table,
            tuple(sorted(j.signature() for j in self.joins)),
            tuple(sorted(f.signature() for f in self.filters)),
            tuple(sorted(self.group_by)),
            tuple(sorted(a.signature() for a in self.aggregates)),
            tuple(sorted(
                (agg.signature(), op, float(value))
                for agg, op, value in self.having
            )),
            tuple(sorted(self.projection)),
            self.order_by,
            self.descending,
            self.limit,
        )

    def matches(self, other: "QuerySpec") -> bool:
        """Exact logical-plan match (E5's strict metric)."""
        return self.signature() == other.signature()

    def describe(self) -> str:
        """One-line human-readable rendering."""
        parts = ["FROM %s" % self.table]
        for join in self.joins:
            parts.append("JOIN %s ON %s=%s" % (
                join.table, join.left_column, join.right_column
            ))
        if self.filters:
            parts.append("WHERE " + " AND ".join(
                "%s %s %r" % (f.column, f.op, f.value) for f in self.filters
            ))
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(self.group_by))
        if self.aggregates:
            parts.append("AGG " + ", ".join(
                "%s(%s)" % (a.func, a.column) for a in self.aggregates
            ))
        if self.having:
            parts.append("HAVING " + " AND ".join(
                "%s(%s) %s %r" % (agg.func, agg.column, op, value)
                for agg, op, value in self.having
            ))
        if self.projection:
            parts.append("SELECT " + ", ".join(self.projection))
        if self.order_by:
            parts.append("ORDER BY %s%s" % (
                self.order_by, " DESC" if self.descending else ""
            ))
        if self.limit is not None:
            parts.append("LIMIT %d" % self.limit)
        return " | ".join(parts)
