"""Project-wide call graph with best-effort, type-seeded resolution.

The :class:`ProjectIndex` ingests the same parsed modules the lint
engine loads (:func:`repro.lint.core.load_module`) and builds:

* a symbol table per module (imported names resolved through the
  package's own import graph, relative imports included);
* a class index — methods, base classes, and **attribute types**
  recovered from three seeds: ``self.x = ClassName(...)`` constructor
  assignments, ``self.x = param`` where the parameter carries a type
  annotation, and annotation forms ``Optional[X]`` /
  ``Callable[..., X]`` (the executor's provider idiom: calling the
  attribute yields an ``X``);
* a function index keyed by qualified name
  (``qa.executor.PlanExecutor.execute``).

:meth:`ProjectIndex.resolve_call` maps one AST call site to the
functions it may invoke. Resolution is *best-effort and closed under
the package*: receivers typed via the seeds resolve exactly; untyped
receivers fall back to a name match over every known class, accepted
only when few classes define the method (``_AMBIGUITY_CAP``) —
otherwise the call is reported as *opaque* so downstream verdicts
degrade to ``unknown`` instead of silently guessing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..lint.core import ModuleInfo

#: Max classes a name-based method fallback may match before the call
#: is declared opaque.
_AMBIGUITY_CAP = 4

# Attribute-type flavors.
TYPE_INSTANCE = "instance"  #: the attribute *is* an instance of the class
TYPE_PROVIDER = "provider"  #: calling the attribute *returns* an instance


@dataclass
class FunctionInfo:
    """One function or method definition in the package."""

    qualname: str  # e.g. "qa.executor.PlanExecutor.execute"
    module_name: str
    relpath: str
    lineno: int
    node: ast.AST
    class_name: Optional[str] = None


@dataclass
class ClassInfo:
    """One class: methods, bases, and inferred attribute types."""

    name: str
    module_name: str
    relpath: str
    bases: Tuple[str, ...] = ()
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: attr name -> (TYPE_INSTANCE | TYPE_PROVIDER, class name)
    attr_types: Dict[str, Tuple[str, str]] = field(default_factory=dict)


@dataclass
class Resolution:
    """Outcome of resolving one call site.

    ``targets`` are in-package functions the call may reach (empty for
    external/opaque calls); ``dotted`` is the external dotted path when
    the call leaves the package (``re.search``); ``opaque_name`` is set
    when nothing resolved; ``receiver`` describes the call receiver for
    effect classification — one of ``("self",)``, ``("self_attr",
    class_name, attr)``, ``("param", name)``, ``("local", name)``,
    ``("global", name)``, ``("class", name)``, ``("module", dotted)``
    or ``()``; ``const_arg0`` carries the first positional argument
    when it is a string literal (keyed-dispatch intrinsics).
    """

    targets: List[FunctionInfo] = field(default_factory=list)
    dotted: Optional[str] = None
    opaque_name: Optional[str] = None
    method_name: Optional[str] = None
    receiver: Tuple = ()
    const_arg0: Optional[str] = None
    ambiguous: bool = False


def parse_type_annotation(node) -> Optional[Tuple[str, str]]:
    """Extract ``(flavor, class_name)`` from an annotation AST.

    Understands ``X``, ``"X"`` (string forward refs, parsed),
    ``Optional[X]``, ``X | None``, and ``Callable[..., X]`` (provider
    flavor, including nested ``Callable[[], Optional[X]]``). Returns
    ``None`` for anything else (``object``, containers, unions of
    concrete types).
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Name):
        if node.id in ("object", "Any", "None"):
            return None
        return (TYPE_INSTANCE, node.id)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        for side in (node.left, node.right):
            if not (isinstance(side, ast.Constant) and side.value is None):
                return parse_type_annotation(side)
        return None
    if isinstance(node, ast.Subscript):
        head = node.value
        if not isinstance(head, (ast.Name, ast.Attribute)):
            return None
        head_name = head.attr if isinstance(head, ast.Attribute) else head.id
        inner = node.slice
        if head_name == "Optional":
            return parse_type_annotation(inner)
        if head_name == "Callable":
            if isinstance(inner, ast.Tuple) and inner.elts:
                returned = parse_type_annotation(inner.elts[-1])
                if returned is not None:
                    return (TYPE_PROVIDER, returned[1])
        return None
    return None


def _relative_prefix(module: ModuleInfo,
                     node: ast.ImportFrom) -> Optional[List[str]]:
    """Package-path prefix a relative import resolves to, or None."""
    pkg = module.relpath.split("/")[:-1]
    drop = node.level - 1
    if drop > len(pkg):
        return None
    base = pkg[:len(pkg) - drop] if drop else pkg
    prefix = list(base)
    if node.module:
        prefix.extend(node.module.split("."))
    return prefix


class ProjectIndex:
    """Symbol, class and function indexes over one package tree."""

    def __init__(self, modules: Sequence[ModuleInfo]):
        self.modules = list(modules)
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, List[ClassInfo]] = {}
        self.class_of: Dict[str, ClassInfo] = {}  # "module.Class"
        #: module_name -> local name -> ("class"|"func"|"external"|
        #:                               "module", payload)
        self.symbols: Dict[str, Dict[str, Tuple[str, object]]] = {}
        self.methods_by_name: Dict[str, List[FunctionInfo]] = {}
        #: "module.NAME" -> class name, for module-level singletons
        #: (``GLOBAL_METER = CostMeter()``).
        self.global_instances: Dict[str, str] = {}
        for module in self.modules:
            self._index_module(module)
        self._link_imports()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _index_module(self, module: ModuleInfo) -> None:
        mod = module.module_name
        for stmt in module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = "%s.%s" % (mod, stmt.name)
                self.functions[qual] = FunctionInfo(
                    qualname=qual, module_name=mod,
                    relpath=module.relpath, lineno=stmt.lineno,
                    node=stmt,
                )
            elif isinstance(stmt, ast.ClassDef):
                self._index_class(module, stmt)
            elif isinstance(stmt, ast.Assign):
                # Module-level singleton: NAME = ClassName(...)
                value = stmt.value
                if (isinstance(value, ast.Call)
                        and isinstance(value.func, ast.Name)
                        and value.func.id[:1].isupper()):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            self.global_instances[
                                "%s.%s" % (mod, target.id)
                            ] = value.func.id

    def _index_class(self, module: ModuleInfo, stmt: ast.ClassDef) -> None:
        mod = module.module_name
        bases = tuple(
            base.id for base in stmt.bases if isinstance(base, ast.Name)
        )
        info = ClassInfo(name=stmt.name, module_name=mod,
                         relpath=module.relpath, bases=bases)
        for item in stmt.body:
            if not isinstance(item, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            qual = "%s.%s.%s" % (mod, stmt.name, item.name)
            fn = FunctionInfo(
                qualname=qual, module_name=mod, relpath=module.relpath,
                lineno=item.lineno, node=item, class_name=stmt.name,
            )
            info.methods[item.name] = fn
            self.functions[qual] = fn
            self.methods_by_name.setdefault(item.name, []).append(fn)
        self._seed_attr_types(info)
        self.classes.setdefault(stmt.name, []).append(info)
        self.class_of["%s.%s" % (mod, stmt.name)] = info

    def _seed_attr_types(self, info: ClassInfo) -> None:
        """Infer ``self.attr`` types from constructor-style seeds."""
        for method in info.methods.values():
            params = _param_annotations(method.node)
            for node in ast.walk(method.node):
                if not isinstance(node, ast.Assign):
                    continue
                for target in node.targets:
                    if not (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        continue
                    seeded = self._value_type(node.value, params)
                    if seeded is not None:
                        info.attr_types.setdefault(target.attr, seeded)

    @staticmethod
    def _value_type(value: ast.expr,
                    params: Dict[str, Tuple[str, str]]
                    ) -> Optional[Tuple[str, str]]:
        """Type of an assigned value: ctor call or annotated param."""
        if (isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id[:1].isupper()):
            return (TYPE_INSTANCE, value.func.id)
        if isinstance(value, ast.Name):
            return params.get(value.id)
        if isinstance(value, ast.BoolOp) and value.values:
            # "catalog or SchemaCatalog(db)" — either side may seed.
            for side in value.values:
                seeded = ProjectIndex._value_type(side, params)
                if seeded is not None:
                    return seeded
        if isinstance(value, ast.IfExp):
            # "meter if meter is not None else GLOBAL_METER"
            for side in (value.body, value.orelse):
                seeded = ProjectIndex._value_type(side, params)
                if seeded is not None:
                    return seeded
        return None

    def _link_imports(self) -> None:
        """Resolve every module's imported names to indexed symbols."""
        known = {m.module_name: m for m in self.modules}
        for module in self.modules:
            table: Dict[str, Tuple[str, object]] = {}
            # Names defined in the module itself.
            for stmt in module.tree.body:
                if isinstance(stmt, ast.ClassDef):
                    table[stmt.name] = (
                        "class",
                        self.class_of["%s.%s" % (module.module_name,
                                                 stmt.name)],
                    )
                elif isinstance(stmt, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                    table[stmt.name] = (
                        "func",
                        self.functions["%s.%s" % (module.module_name,
                                                  stmt.name)],
                    )
            for qual, cls_name in self.global_instances.items():
                mod_of, _, name = qual.rpartition(".")
                if mod_of == module.module_name:
                    table.setdefault(name, ("instance", cls_name))
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ImportFrom):
                    self._link_import_from(module, node, known, table)
                elif isinstance(node, ast.Import):
                    for alias in node.names:
                        bound = alias.asname or alias.name.split(".")[0]
                        table.setdefault(
                            bound, ("module", alias.name if alias.asname
                                    else alias.name.split(".")[0]))
            self.symbols[module.module_name] = table

    def _link_import_from(self, module: ModuleInfo, node: ast.ImportFrom,
                          known: Dict[str, ModuleInfo],
                          table: Dict[str, Tuple[str, object]]) -> None:
        if node.level > 0:
            prefix = _relative_prefix(module, node)
            if prefix is None:
                return
        elif node.module and (node.module == "repro"
                              or node.module.startswith("repro.")):
            prefix = node.module.split(".")[1:]
        else:
            # External import: record the dotted origin.
            if node.module is None:
                return
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                table.setdefault(
                    bound,
                    ("external", "%s.%s" % (node.module, alias.name)))
            return
        source = ".".join(prefix)
        for alias in node.names:
            if alias.name == "*":
                continue
            bound = alias.asname or alias.name
            target = self._package_symbol(source, alias.name, known)
            if target is not None:
                table.setdefault(bound, target)

    def _package_symbol(self, source: str, name: str,
                        known: Dict[str, ModuleInfo]
                        ) -> Optional[Tuple[str, object]]:
        """Resolve ``from <source> import <name>`` inside the package."""
        qual_class = "%s.%s" % (source, name) if source else name
        if qual_class in self.class_of:
            return ("class", self.class_of[qual_class])
        if qual_class in self.functions:
            return ("func", self.functions[qual_class])
        if qual_class in self.global_instances:
            return ("instance", self.global_instances[qual_class])
        submodule = qual_class
        if submodule in known:
            return ("module", submodule)
        # "from . import x" or a package __init__ re-export: search the
        # package's own modules for a unique definition of the name.
        hits: List[Tuple[str, object]] = []
        for cls_list in self.classes.get(name, []) or []:
            hits.append(("class", cls_list))
        if not hits:
            for qual, fn in self.functions.items():
                if qual.endswith("." + name) and "." not in qual[
                        :-(len(name) + 1)].split(".")[-1]:
                    if fn.class_name is None:
                        hits.append(("func", fn))
        if len(hits) == 1:
            return hits[0]
        return None

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------
    def resolve_class_name(self, name: str) -> Optional[ClassInfo]:
        """The class *name* denotes, when unique package-wide."""
        candidates = self.classes.get(name, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    def method_on(self, cls: ClassInfo,
                  method: str) -> Optional[FunctionInfo]:
        """Resolve *method* on *cls* or (transitively) its bases."""
        seen = set()
        frontier = [cls]
        while frontier:
            current = frontier.pop(0)
            if current.name in seen:
                continue
            seen.add(current.name)
            if method in current.methods:
                return current.methods[method]
            for base in current.bases:
                parent = self.resolve_class_name(base)
                if parent is not None:
                    frontier.append(parent)
        return None

    # ------------------------------------------------------------------
    # Call resolution
    # ------------------------------------------------------------------
    def resolve_call(self, fn: FunctionInfo, call: ast.Call,
                     local_types: Dict[str, Tuple[str, str]],
                     param_types: Dict[str, Tuple[str, str]]
                     ) -> Resolution:
        """Best-effort resolution of one call site inside *fn*."""
        out = Resolution()
        if call.args and isinstance(call.args[0], ast.Constant) \
                and isinstance(call.args[0].value, str):
            out.const_arg0 = call.args[0].value
        func = call.func
        if isinstance(func, ast.Name):
            self._resolve_name_call(fn, func.id, out)
            return out
        if isinstance(func, ast.Attribute):
            self._resolve_attr_call(fn, func, out, local_types,
                                    param_types)
            return out
        out.opaque_name = "<dynamic>"
        return out

    def _resolve_name_call(self, fn: FunctionInfo, name: str,
                           out: Resolution) -> None:
        table = self.symbols.get(fn.module_name, {})
        entry = table.get(name)
        out.method_name = name
        if entry is None:
            out.receiver = ("local", name)
            out.opaque_name = name  # builtin handling happens upstream
            return
        kind, payload = entry
        if kind == "func":
            out.targets.append(payload)
        elif kind == "class":
            ctor = self.method_on(payload, "__init__")
            out.receiver = ("class", payload.name)
            if ctor is not None:
                out.targets.append(ctor)
        elif kind == "external":
            out.dotted = payload
        elif kind == "module":
            out.dotted = payload

    def _resolve_attr_call(self, fn: FunctionInfo, func: ast.Attribute,
                           out: Resolution,
                           local_types: Dict[str, Tuple[str, str]],
                           param_types: Dict[str, Tuple[str, str]]
                           ) -> None:
        method = func.attr
        out.method_name = method
        base = func.value
        own_class = (self.resolve_class_name(fn.class_name)
                     if fn.class_name else None)

        # self.method(...)
        if isinstance(base, ast.Name) and base.id == "self" \
                and own_class is not None:
            out.receiver = ("self",)
            resolved = self.method_on(own_class, method)
            if resolved is not None:
                out.targets.append(resolved)
                return
            # Maybe a typed callable attribute: self._provider().
            self._fallback(method, out)
            return

        # self.attr.method(...) — typed attribute receivers.
        if (isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self" and own_class is not None):
            out.receiver = ("self_attr", own_class.name, base.attr)
            seeded = own_class.attr_types.get(base.attr)
            if seeded is not None and seeded[0] == TYPE_INSTANCE:
                cls = self.resolve_class_name(seeded[1])
                if cls is not None:
                    resolved = self.method_on(cls, method)
                    if resolved is not None:
                        out.targets.append(resolved)
                        return
            self._fallback(method, out)
            return

        # self.attr(...) as the call itself (provider invocation) is a
        # Name/Attribute call handled above; here: name.method(...).
        if isinstance(base, ast.Name):
            name = base.id
            seeded = local_types.get(name) or param_types.get(name)
            if seeded is not None and seeded[0] == TYPE_INSTANCE:
                out.receiver = ("local", name)
                cls = self.resolve_class_name(seeded[1])
                if cls is not None:
                    resolved = self.method_on(cls, method)
                    if resolved is not None:
                        out.targets.append(resolved)
                        return
            entry = self.symbols.get(fn.module_name, {}).get(name)
            if entry is not None:
                kind, payload = entry
                if kind == "class":
                    out.receiver = ("class", payload.name)
                    resolved = self.method_on(payload, method)
                    if resolved is not None:
                        out.targets.append(resolved)
                        return
                elif kind == "instance":
                    out.receiver = ("global", name)
                    cls = self.resolve_class_name(str(payload))
                    if cls is not None:
                        resolved = self.method_on(cls, method)
                        if resolved is not None:
                            out.targets.append(resolved)
                            return
                elif kind == "module":
                    out.receiver = ("module", str(payload))
                    qual = "%s.%s" % (payload, method)
                    if qual in self.functions:
                        out.targets.append(self.functions[qual])
                    else:
                        out.dotted = qual
                    return
                elif kind == "external":
                    out.receiver = ("module", str(payload))
                    out.dotted = "%s.%s" % (payload, method)
                    return
            if name in param_types:
                out.receiver = ("param", name)
            elif out.receiver == ():
                out.receiver = ("local", name)
            self._fallback(method, out)
            return

        # super().method(...) — resolve through the base classes.
        if isinstance(base, ast.Call) \
                and isinstance(base.func, ast.Name) \
                and base.func.id == "super" and own_class is not None:
            out.receiver = ("self",)
            for parent_name in own_class.bases:
                parent = self.resolve_class_name(parent_name)
                if parent is not None:
                    resolved = self.method_on(parent, method)
                    if resolved is not None:
                        out.targets.append(resolved)
                        return
            return  # base outside the package (object, Exception, ...)

        # ClassName(...).method(...) — constructor-chained receiver.
        if isinstance(base, ast.Call) and isinstance(base.func,
                                                     ast.Name):
            entry = self.symbols.get(fn.module_name, {}).get(
                base.func.id)
            cls = (entry[1] if entry is not None and entry[0] == "class"
                   else self.resolve_class_name(base.func.id))
            if isinstance(cls, ClassInfo):
                out.receiver = ("local", base.func.id)
                ctor = self.method_on(cls, "__init__")
                if ctor is not None:
                    out.targets.append(ctor)
                resolved = self.method_on(cls, method)
                if resolved is not None:
                    out.targets.append(resolved)
                    return

        # chained/other receivers: x.y.method(), call().method(), ...
        out.receiver = ()
        self._fallback(method, out)

    def _fallback(self, method: str, out: Resolution) -> None:
        """Name-based resolution over every known class, capped."""
        candidates = self.methods_by_name.get(method, [])
        if 0 < len(candidates) <= _AMBIGUITY_CAP:
            out.targets.extend(candidates)
            out.ambiguous = True
        else:
            out.opaque_name = method


def _param_annotations(node) -> Dict[str, Tuple[str, str]]:
    """Annotated parameter types of one function definition."""
    out: Dict[str, Tuple[str, str]] = {}
    args = node.args
    every = (list(getattr(args, "posonlyargs", [])) + list(args.args)
             + list(args.kwonlyargs))
    for arg in every:
        seeded = parse_type_annotation(arg.annotation)
        if seeded is not None:
            out[arg.arg] = seeded
    return out


def param_annotations(node) -> Dict[str, Tuple[str, str]]:
    """Public alias of the parameter-annotation extractor."""
    return _param_annotations(node)
