"""Tests for typo-tolerant value binding."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.metering import CostMeter
from repro.semql import OperatorSynthesizer, QueryCompiler, SchemaCatalog
from repro.semql.catalog import _edit_distance_at_most_one
from repro.storage.relational import Database


class TestEditDistance:
    @pytest.mark.parametrize("a,b,expected", [
        ("alpha", "alpha", True),
        ("alpha", "alpa", True),     # deletion
        ("alpha", "alphaa", True),   # insertion
        ("alpha", "alphq", True),    # substitution
        ("alpha", "alqhq", False),   # two edits
        ("alpha", "alp", False),     # length gap 2
        ("", "a", True),
        ("", "", True),
    ])
    def test_cases(self, a, b, expected):
        assert _edit_distance_at_most_one(a, b) is expected

    @given(st.text(max_size=12))
    @settings(max_examples=50, deadline=None)
    def test_symmetric(self, text):
        mutated = text + "x"
        assert _edit_distance_at_most_one(text, mutated)
        assert _edit_distance_at_most_one(mutated, text)


@pytest.fixture
def setting():
    db = Database(meter=CostMeter())
    db.execute(
        "CREATE TABLE products (pid INT PRIMARY KEY, name TEXT, "
        "price FLOAT)"
    )
    db.execute(
        "INSERT INTO products VALUES (1, 'Alpha Widget', 10.0), "
        "(2, 'Beta Gadget', 20.0)"
    )
    catalog = SchemaCatalog(db)
    catalog.register_display_column("products", "name")
    catalog.build_value_index()
    return catalog, OperatorSynthesizer(catalog), QueryCompiler(db)


class TestTypoBinding:
    def test_exact_still_preferred(self, setting):
        catalog, _, _ = setting
        hits = catalog.find_values("tell me about the alpha widget")
        assert hits and hits[0].value == "alpha widget"

    def test_single_typo_recovers(self, setting):
        catalog, _, _ = setting
        hits = catalog.find_values("tell me about the alpa widget")
        assert any(h.value == "alpha widget" for h in hits)

    def test_typo_question_answerable(self, setting):
        _, synthesizer, compiler = setting
        spec = synthesizer.synthesize("How many products are called "
                                      "Alpha Widgett?")
        result = compiler.execute(spec)
        assert result.scalar() == 1

    def test_garbage_still_misses(self, setting):
        catalog, _, _ = setting
        assert catalog.find_values("zzqqttrr bbnnmm") == []

    def test_short_values_not_fuzzed(self, setting):
        catalog, _, _ = setting
        # No 1-edit matching against short values like "q2"-style ones:
        # nothing in this catalog is short, so assert general silence.
        assert catalog.find_values("xx") == []
