"""Serving — cold vs warm throughput and cache hit rates.

The serving subsystem's performance claim: on a repeated-question
workload, a warm multi-tier cache answers at least 3x cheaper (in
CostMeter work units) than the cold pass, on both benchmark domains.

Each run serves the same repeated-question workload twice through one
:class:`~repro.serving.QueryServer` — the first pass populates every
tier (cold), the second replays against them (warm) — and records work
units, wall time, per-tier hit rates, and the speedup ratios. Besides
the usual markdown table the run emits ``benchmarks/out/
BENCH_serving.json``, a canonical machine-readable artifact so future
PRs can track the serving-perf trajectory.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.bench import (
    HealthSpec, LakeSpec, generate_ecommerce_lake, generate_healthcare_lake,
    render_table,
)
from repro.bench.runner import build_hybrid_system
from repro.resilience import work_now
from repro.serving import CachePolicy, QueryServer, repeated_questions

from _common import OUT_DIR, emit

SEED = 13
REPEATS = 2  # rounds of the question list inside one pass
RESULTS = []


def build_lake(domain):
    if domain == "ecommerce":
        return generate_ecommerce_lake(LakeSpec(n_products=6, seed=SEED))
    return generate_healthcare_lake(HealthSpec(n_drugs=5, n_patients=16,
                                               seed=SEED))


def serve_pass(server, workload):
    meter = server.pipeline.meter
    started_work = work_now(meter)
    started_wall = time.perf_counter()
    results = server.serve(workload)
    wall = time.perf_counter() - started_wall
    work = work_now(meter) - started_work
    return results, work, wall


def hit_rate(counters):
    total = counters["hits"] + counters["misses"]
    return counters["hits"] / total if total else 0.0


#: "full" is the headline configuration; the second drops the answer
#: tier so warm traffic actually reaches the plan/retrieval tiers and
#: their hit rates become visible instead of being absorbed upstream.
POLICIES = ("full", "plan,retrieval,embedding")


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("domain", ["ecommerce", "healthcare"])
def test_serving_cold_vs_warm(benchmark, domain, policy):
    """One domain/policy cold-warm comparison (3x floor on 'full')."""
    lake = build_lake(domain)
    questions = [pair.question for pair in lake.qa_pairs(per_kind=1)]
    workload = repeated_questions(questions, repeats=REPEATS)
    server = QueryServer(build_hybrid_system(lake, seed=SEED)[1],
                         policy=CachePolicy.from_string(policy),
                         batch_size=8)

    cold_results, cold_work, cold_wall = serve_pass(server, workload)
    warm_results, warm_work, warm_wall = serve_pass(server, workload)

    cold_texts = [r.answer.text for r in cold_results]
    warm_texts = [r.answer.text for r in warm_results]
    assert cold_texts == warm_texts, "warm answers diverged from cold"

    stats = server.stats()["cache"]
    work_speedup = cold_work / warm_work if warm_work else float("inf")

    def rate(tier):
        return (round(hit_rate(stats[tier]), 3)
                if tier in stats else None)

    row = {
        "domain": domain,
        "policy": policy,
        "questions": len(questions),
        "asks_per_pass": len(workload),
        "cold_work": cold_work,
        "warm_work": warm_work,
        "work_speedup": round(min(work_speedup, 9999.0), 1),
        "cold_wall_ms": round(cold_wall * 1000.0, 1),
        "warm_wall_ms": round(warm_wall * 1000.0, 1),
        "answer_hit_rate": rate("answer"),
        "plan_hit_rate": rate("plan"),
        "retrieval_hit_rate": rate("retrieval"),
    }
    RESULTS.append(row)

    if policy == "full":
        # The acceptance floor: >= 3x warm-over-cold on repeats.
        assert warm_work * 3 <= cold_work, (
            "warm pass only %.1fx cheaper than cold" % work_speedup)
        assert hit_rate(stats["answer"]) > 0.0
    else:
        # Lower tiers must carry reuse once the answer tier is off.
        assert warm_work < cold_work
        assert hit_rate(stats["plan"]) > 0.0

    benchmark(lambda: None)


def test_serving_report(benchmark):
    """Render the table and the canonical BENCH_serving.json artifact."""
    benchmark(lambda: None)  # keep the report under --benchmark-only
    assert RESULTS, "parametrized serving runs must execute first"
    rows = sorted(RESULTS, key=lambda r: (r["domain"], r["policy"]))
    emit("serving", render_table(
        rows, title="Serving — cold vs warm throughput"
    ))
    payload = {
        "bench": "serving",
        "seed": SEED,
        "repeats": REPEATS,
        "runs": rows,
    }
    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(OUT_DIR, "BENCH_serving.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    for row in rows:
        if row["policy"] == "full":
            assert row["work_speedup"] >= 3.0
