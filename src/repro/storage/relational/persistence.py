"""JSON serialization for databases and tables.

Enables the paper's edge-deployment story: build the lake (and its
generated tables) once on a capable machine, ship the serialized state
to the constrained device, and re-load without re-running extraction.
"""

from __future__ import annotations

import datetime as _dt
import json
from typing import Any, Dict, Optional

from ...errors import StorageError
from ...metering import CostMeter
from ..types import DataType
from .database import Database
from .schema import Column, TableSchema
from .table import Table

FORMAT_VERSION = 1


def _encode_value(value: Any) -> Any:
    if isinstance(value, _dt.date):
        return {"__date__": value.isoformat()}
    return value


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict) and "__date__" in value:
        return _dt.date.fromisoformat(value["__date__"])
    return value


def table_to_dict(table: Table) -> Dict[str, Any]:
    """Serialize one table (schema + rows) to plain JSON-able data."""
    schema = table.schema
    return {
        "name": schema.name,
        "columns": [
            {"name": c.name, "dtype": c.dtype.value,
             "nullable": c.nullable}
            for c in schema.columns
        ],
        "primary_key": schema.primary_key,
        "rows": [
            [_encode_value(v) for v in row] for row in table.rows()
        ],
    }


def table_from_dict(payload: Dict[str, Any],
                    meter: Optional[CostMeter] = None) -> Table:
    """Rebuild a table serialized by :func:`table_to_dict`."""
    try:
        columns = [
            Column(c["name"], DataType(c["dtype"]),
                   nullable=c.get("nullable", True))
            for c in payload["columns"]
        ]
        schema = TableSchema(
            payload["name"], columns,
            primary_key=payload.get("primary_key"),
        )
    except (KeyError, ValueError) as exc:
        raise StorageError("malformed table payload: %s" % exc) from exc
    table = Table(schema, meter=meter)
    for row in payload.get("rows", []):
        table.insert(tuple(_decode_value(v) for v in row))
    return table


def database_to_json(db: Database) -> str:
    """Serialize every table of *db* to one JSON string."""
    payload = {
        "version": FORMAT_VERSION,
        "tables": [
            table_to_dict(db.table(name)) for name in db.table_names()
        ],
    }
    return json.dumps(payload, sort_keys=True)


def database_from_json(text: str,
                       meter: Optional[CostMeter] = None) -> Database:
    """Rebuild a database serialized by :func:`database_to_json`."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise StorageError("invalid database JSON: %s" % exc) from exc
    if payload.get("version") != FORMAT_VERSION:
        raise StorageError(
            "unsupported database format version %r"
            % payload.get("version")
        )
    db = Database(meter=meter)
    for table_payload in payload.get("tables", []):
        table = table_from_dict(table_payload, meter=meter)
        db.create_table(table.schema)
        target = db.table(table.schema.name)
        for row in table.rows():
            target.insert(row)
    return db


def save_database(db: Database, path: str) -> None:
    """Write the database JSON to *path*."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(database_to_json(db))


def load_database(path: str,
                  meter: Optional[CostMeter] = None) -> Database:
    """Read a database JSON file written by :func:`save_database`."""
    with open(path, "r", encoding="utf-8") as handle:
        return database_from_json(handle.read(), meter=meter)
