"""Sentence-level attribute extraction.

Implements the paper's worked example: from "Q2 sales increased 20%"
the SLM identifies "Q2" (time), "sales" (metric), "20%" (change
measure), producing one structured record. Combines NER/pattern hits
with POS-driven direction detection.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field
from typing import Any, Dict, List

from ..slm.model import SmallLanguageModel
from ..text import patterns as pat
from ..text.ner import TYPE_METRIC
from ..text.tokenizer import split_sentences
from .normalize import detect_direction, normalize_value


@dataclass
class ExtractedFact:
    """One structured fact from one sentence.

    ``attributes`` holds the normalized fields actually found; a field
    absent from the sentence is simply missing (→ NULL in the table).
    ``source_sentence`` keeps provenance for answer citations.
    """

    attributes: Dict[str, Any] = field(default_factory=dict)
    source_sentence: str = ""

    def get(self, name: str, default: Any = None) -> Any:
        """Value of one attribute or *default*."""
        return self.attributes.get(name, default)

    def __bool__(self) -> bool:
        return bool(self.attributes)


# Attribute names emitted by the extractor; the schema-inference layer
# (and the gold labels of E4) use the same vocabulary.
ATTR_SUBJECT = "subject"
ATTR_METRIC = "metric"
ATTR_CHANGE_PERCENT = "change_percent"
ATTR_AMOUNT = "amount"
ATTR_COUNT = "count"
ATTR_QUARTER = "quarter"
ATTR_YEAR = "year"
ATTR_DATE = "event_date"
ATTR_DIRECTION = "direction"


class AttributeExtractor:
    """Extract structured facts from free text via the SLM's taggers."""

    def __init__(self, slm: SmallLanguageModel):
        self._slm = slm

    def extract_sentence(self, sentence: str) -> ExtractedFact:
        """One fact for one sentence (empty fact when nothing found)."""
        attributes: Dict[str, Any] = {}
        entities = self._slm.tag_entities(sentence)

        subject = None
        metric = None
        for entity in entities:
            if entity.etype == TYPE_METRIC and metric is None:
                metric = entity.norm
            elif entity.etype in (pat.KIND_QUARTER,):
                value, _ = normalize_value(pat.KIND_QUARTER, entity.text)
                attributes[ATTR_QUARTER] = value.split()[0]
                year_part = value.split()[1:]
                if year_part:
                    attributes[ATTR_YEAR] = int(year_part[0])
            elif entity.etype == pat.KIND_DATE:
                value, dtype = normalize_value(pat.KIND_DATE, entity.text)
                if isinstance(value, _dt.date):
                    attributes[ATTR_DATE] = value
            elif entity.etype == pat.KIND_PERCENT:
                value, _ = normalize_value(pat.KIND_PERCENT, entity.text)
                attributes[ATTR_CHANGE_PERCENT] = value
            elif entity.etype == pat.KIND_MONEY:
                value, _ = normalize_value(pat.KIND_MONEY, entity.text)
                attributes[ATTR_AMOUNT] = value
            elif entity.etype == pat.KIND_YEAR:
                value, _ = normalize_value(pat.KIND_YEAR, entity.text)
                attributes.setdefault(ATTR_YEAR, value)
            elif entity.etype == pat.KIND_ID or subject is None:
                if entity.etype not in (pat.KIND_NUMBER,):
                    subject = entity.norm

        if subject is not None:
            attributes[ATTR_SUBJECT] = subject
        if metric is not None:
            attributes[ATTR_METRIC] = metric

        direction = detect_direction(sentence)
        if direction is not None and (
            ATTR_CHANGE_PERCENT in attributes or metric is not None
        ):
            attributes[ATTR_DIRECTION] = direction

        # Signed change: "decreased 20%" stores -20.0.
        if direction == "down" and ATTR_CHANGE_PERCENT in attributes:
            value = attributes[ATTR_CHANGE_PERCENT]
            if value > 0:
                attributes[ATTR_CHANGE_PERCENT] = -value

        # A fact needs a hook to query by: subject or metric.
        if ATTR_SUBJECT not in attributes and ATTR_METRIC not in attributes:
            return ExtractedFact({}, sentence)
        return ExtractedFact(attributes, sentence)

    def extract(self, text: str) -> List[ExtractedFact]:
        """All non-empty facts from *text*, one per sentence at most."""
        facts = []
        for sentence in split_sentences(text):
            fact = self.extract_sentence(sentence)
            if fact:
                facts.append(fact)
        return facts
