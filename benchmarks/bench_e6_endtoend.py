"""E6 — End-to-end efficiency: the SLM pipeline vs conventional dense RAG.

Paper claims (Sections I, IV): the system targets "low-latency
responses or deployment on devices with limited memory"; conventional
RAG's "repeated LLM inference passes and large-scale vector indexing"
are the costs avoided.

Reproduced table, per system:

* build cost — model calls to index the lake (embedding + tagging);
* per-query model calls (embedding + generation) — the dominant
  latency term on a real device, where each SLM inference pass costs
  milliseconds;
* index memory — vector-matrix bytes vs serialized graph bytes;
* wall-clock per query (pytest-benchmark) on this machine;
* answer accuracy over the same mixed QA suite.

Expected shape: the hybrid pipeline spends zero embedding calls per
query and needs no O(corpus) vector matrix, at equal-or-better
accuracy; dense RAG pays one embedding call per chunk at build and one
per query plus O(corpus) similarity work.
"""

from __future__ import annotations

import pytest

from repro.bench import (
    LakeSpec, generate_ecommerce_lake, render_table, run_qa_suite,
)
from repro.bench.runner import build_hybrid_system, build_rag_system
from repro.graphindex import graph_to_json
from repro.metering import (
    CostMeter, EMBEDDING_CALLS, GENERATION_CALLS, TAGGING_CALLS,
    VECTORS_COMPARED,
)
from repro.slm import SLMConfig, SmallLanguageModel
from repro.text.chunker import Chunker, ChunkerConfig
from repro.retrieval.dense import DenseRetriever
from repro.text.ner import Gazetteer

from _common import emit

RESULTS = []
STAGE_ROWS = []


@pytest.fixture(scope="module")
def lake():
    return generate_ecommerce_lake(LakeSpec(n_products=12, seed=61))


@pytest.fixture(scope="module")
def suite(lake):
    return lake.qa_pairs(per_kind=5)


def _measure(system_name, build_fn, lake, suite):
    meter = CostMeter()
    system, extras = build_fn(lake, meter)
    build_cost = meter.snapshot()
    result = run_qa_suite(system, suite, warmup=1, repeats=3, trace=True)
    n = len(suite)
    for stage in sorted(result.stages):
        entry = result.stages[stage]
        top_cost = ", ".join(
            "%s=%d" % (name, amount) for name, amount in sorted(
                entry["cost"].items(), key=lambda kv: (-kv[1], kv[0])
            )[:2]
        )
        STAGE_ROWS.append({
            "system": system_name,
            "stage": stage,
            "calls": entry["calls"],
            "self_s": round(entry["seconds"], 4),
            "top_cost": top_cost or "-",
        })
    row = {
        "system": system_name,
        "build_embed": build_cost.get(EMBEDDING_CALLS, 0),
        "build_tag": build_cost.get(TAGGING_CALLS, 0),
        "q_embed": round(result.cost.get(EMBEDDING_CALLS, 0) / n, 2),
        "q_gen": round(result.cost.get(GENERATION_CALLS, 0) / n, 2),
        "q_vec_cmp": round(result.cost.get(VECTORS_COMPARED, 0) / n, 1),
        "index_bytes": extras["index_bytes"],
        "accuracy": round(result.overall_accuracy, 3),
        "wall_s_suite": round(result.total_seconds, 3),
    }
    return system, row


def _build_hybrid(lake, meter):
    system, pipeline = build_hybrid_system(lake)
    meter.merge(system.meter)
    index_bytes = len(graph_to_json(pipeline.graph).encode("utf-8"))
    # Re-point meter so run_qa_suite diffs against the shared meter.
    return system, {"index_bytes": index_bytes}


def _build_rag(lake, meter):
    system = build_rag_system(lake)
    meter.merge(system.meter)
    gazetteer = Gazetteer()
    gazetteer.add("VALUE", lake.product_names())
    probe_meter = CostMeter()
    slm = SmallLanguageModel(SLMConfig(seed=0), gazetteer=gazetteer,
                             meter=probe_meter)
    chunks = Chunker(
        ChunkerConfig(max_tokens=48, overlap_sentences=0)
    ).chunk_corpus(lake.review_texts)
    retriever = DenseRetriever(slm.embedder, meter=probe_meter)
    retriever.index(chunks)
    return system, {"index_bytes": retriever.index_bytes}


def test_e6_hybrid(benchmark, lake, suite):
    system, row = _measure("hybrid", _build_hybrid, lake, suite)
    RESULTS.append(row)
    benchmark(system.answer, suite[0].question)


def test_e6_dense_rag(benchmark, lake, suite):
    system, row = _measure("dense_rag", _build_rag, lake, suite)
    RESULTS.append(row)
    benchmark(system.answer, suite[0].question)


def test_e6_report(benchmark):
    benchmark(lambda: None)
    assert len(RESULTS) >= 2, "E6 systems must run first"
    report = render_table(
        RESULTS, title="E6 — End-to-end cost and accuracy"
    )
    if STAGE_ROWS:
        report += "\n\n" + render_table(
            STAGE_ROWS,
            title="E6 — Per-stage breakdown (self time over the suite)",
        )
    emit("e6_endtoend", report)
    by_system = {r["system"]: r for r in RESULTS}
    hybrid, rag = by_system["hybrid"], by_system["dense_rag"]
    # Hybrid answers without per-query embedding passes.
    assert hybrid["q_embed"] == 0.0
    assert rag["q_embed"] >= 1.0
    # Dense RAG pays one embedding pass per chunk at build time.
    assert rag["build_embed"] > 0
    assert hybrid["build_embed"] == 0
    # And the hybrid system is more accurate on the mixed suite.
    assert hybrid["accuracy"] > rag["accuracy"]
