"""Project-scope rules: analyses that need the whole module set.

Currently one rule lives here: import-cycle detection over the
module-level import graph. Lazy (function-level) imports are the
sanctioned cycle-breaking idiom and deliberately excluded.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set

from .core import Finding, ModuleInfo, Rule, register


def _toplevel_statements(tree: ast.Module) -> Iterator[ast.stmt]:
    """Module-level statements, descending into top-level If/Try blocks
    (e.g. ``TYPE_CHECKING`` guards) but never into functions/classes."""
    stack: List[ast.stmt] = list(tree.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.If, ast.Try)):
            for name in ("body", "orelse", "finalbody"):
                stack.extend(getattr(node, name, []) or [])
            for handler in getattr(node, "handlers", []) or []:
                stack.extend(handler.body)


def _import_targets(module: ModuleInfo, node: ast.stmt,
                    known: Set[str]) -> Iterator[str]:
    """Dotted in-package module names *node* imports, resolved against
    the set of modules that actually exist (*known*)."""
    if isinstance(node, ast.ImportFrom):
        if node.level > 0:
            pkg = module.relpath.split("/")[:-1]
            drop = node.level - 1
            if drop > len(pkg):
                return
            base = pkg[:len(pkg) - drop] if drop else pkg
            prefix = list(base)
            if node.module:
                prefix.extend(node.module.split("."))
        elif node.module and (node.module == "repro"
                              or node.module.startswith("repro.")):
            prefix = node.module.split(".")[1:]
        else:
            return
        # "from pkg import name": name may be a submodule or an attr.
        for alias in node.names:
            candidate = ".".join(prefix + [alias.name])
            if candidate in known:
                yield candidate
        dotted = ".".join(prefix)
        # An edge to an ancestor package would make every submodule of
        # a re-exporting package cyclic; submodules only need the
        # parent *partially* initialized, which import machinery
        # guarantees, so count edges to non-ancestor packages only.
        if dotted in known and not (
            module.module_name == dotted
            or module.module_name.startswith(dotted + ".")
        ):
            yield dotted
    elif isinstance(node, ast.Import):
        for alias in node.names:
            if not alias.name.startswith("repro."):
                continue
            parts = alias.name.split(".")[1:]
            while parts:
                dotted = ".".join(parts)
                if dotted in known:
                    yield dotted
                    break
                parts = parts[:-1]


@register
class ImportCycleRule(Rule):
    """No cycles in the module-level import graph.

    A cycle means no valid initialization order exists; which module
    wins depends on who is imported first. Function-level imports do
    not count: deferring an import *is* how a back-reference is
    legitimately expressed.
    """

    id = "import-cycle"
    summary = "forbid cycles among module-level imports"
    scope = "project"

    def check_project(
        self, modules: List[ModuleInfo]
    ) -> Iterator[Finding]:
        known = {m.module_name for m in modules}
        graph: Dict[str, Set[str]] = {}
        lines: Dict[str, Dict[str, int]] = {}
        by_name = {m.module_name: m for m in modules}
        for module in modules:
            edges: Set[str] = set()
            edge_lines: Dict[str, int] = {}
            for stmt in _toplevel_statements(module.tree):
                if not isinstance(stmt, (ast.Import, ast.ImportFrom)):
                    continue
                for target in _import_targets(module, stmt, known):
                    if target != module.module_name:
                        edges.add(target)
                        edge_lines.setdefault(target, stmt.lineno)
            graph[module.module_name] = edges
            lines[module.module_name] = edge_lines
        for cycle in _cycles(graph):
            entry = cycle[0]
            module = by_name[entry]
            line = lines[entry].get(cycle[1 % len(cycle)], 1)
            yield module.finding(
                line, self.id,
                "import cycle: %s" % " -> ".join(cycle + [entry]),
            )


def _cycles(graph: Dict[str, Set[str]]) -> List[List[str]]:
    """Strongly connected components of size > 1 (plus self-loops),
    each rotated to start at its lexicographically smallest member."""
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = [0]

    def strongconnect(root: str) -> None:
        # Iterative Tarjan: (node, iterator over successors).
        work = [(root, iter(sorted(graph.get(root, ()))))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in graph:
                    continue
                if succ not in index:
                    index[succ] = low[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(graph.get(succ, ())))))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1 or node in graph.get(node, ()):
                    smallest = min(component)
                    pivot = component.index(smallest)
                    sccs.append(component[pivot:] + component[:pivot])

    for name in sorted(graph):
        if name not in index:
            strongconnect(name)
    sccs.sort()
    return sccs
