"""The effect lattice: what the whole-program analysis computes over.

An :class:`Effect` is one observable interaction of a function with
state outside its own frame: ``(kind, resource)``. Kinds map to one of
five **interference modes** which drive the stage-pair verdicts in
:mod:`repro.analysis.interference`:

* ``read`` / ``write`` — classic data-race modes. Two effects on the
  same resource conflict when at least one is a write.
* ``commute`` — order-independent for answer bytes: CostMeter charges
  (totals are sums), obs spans/metrics (the observational plane; a
  deterministic join re-emits them in plan order), and idempotent
  keyed caches (values are pure functions of their key, so racing
  writers insert identical bytes; only eviction order can differ,
  which affects cost, never answers).
* ``local`` — confined to the caller's own frame or arguments
  (argument mutation, raised exception types): reported in signatures
  but never a cross-stage conflict by itself.
* ``opaque`` — a call the resolver could not see through. Opaque
  effects shared by both stages of a pair poison the verdict to
  ``unknown`` (the analysis cannot prove disjointness).

The lattice is deliberately small and the ordering is by *pessimism*:
``local < commute < read < write < opaque-shared``. Fixpoint
propagation only ever adds effects, so the analysis is monotone and
terminates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Tuple

# ----------------------------------------------------------------------
# Interference modes
# ----------------------------------------------------------------------

MODE_READ = "read"
MODE_WRITE = "write"
MODE_COMMUTE = "commute"
MODE_LOCAL = "local"
MODE_OPAQUE = "opaque"

# ----------------------------------------------------------------------
# Effect kinds
# ----------------------------------------------------------------------

#: Read of a module-level mutable container.
GLOBAL_READ = "global-read"
#: Write/rebind/mutation of a module-level name.
GLOBAL_WRITE = "global-write"
#: Mutation of instance state (``self.attr = ...`` / in-place mutator),
#: keyed by ``Class.attr`` — the conservative proxy for "same object".
ATTR_WRITE = "attr-write"
#: Mutation of a caller-supplied argument (stays in the caller's frame).
ARG_WRITE = "arg-write"
#: A draw from a *shared* RNG stream (advancing it is order-sensitive).
RNG_WRITE = "rng-write"
#: A guarded engine dispatch through the resilience layer, keyed by
#: backend name: circuit-breaker state plus the per-backend
#: fault-injection RNG stream, both order-sensitive per key.
BACKEND_DISPATCH = "backend-dispatch"
#: CostMeter work charge (totals commute).
METER = "meter"
#: Span/metric emission (observational plane).
OBS = "obs"
#: Idempotent keyed cache read/write (repro.caching tiers, plan cache).
CACHE = "cache"
#: Read of a storage backend (relational/document/text/index).
STORE_READ = "store-read"
#: Mutation of a storage backend.
STORE_WRITE = "store-write"
#: File/terminal I/O.
IO_WRITE = "io-write"
#: Exception type this function (transitively) may raise.
RAISES = "raises"
#: Unresolvable call — the analysis blind spot marker.
OPAQUE = "opaque"

#: kind -> interference mode (the lattice projection).
KIND_MODES = {
    GLOBAL_READ: MODE_READ,
    GLOBAL_WRITE: MODE_WRITE,
    ATTR_WRITE: MODE_WRITE,
    ARG_WRITE: MODE_LOCAL,
    RNG_WRITE: MODE_WRITE,
    BACKEND_DISPATCH: MODE_WRITE,
    METER: MODE_COMMUTE,
    OBS: MODE_COMMUTE,
    CACHE: MODE_COMMUTE,
    STORE_READ: MODE_READ,
    STORE_WRITE: MODE_WRITE,
    IO_WRITE: MODE_WRITE,
    RAISES: MODE_LOCAL,
    OPAQUE: MODE_OPAQUE,
}

#: Every effect kind, stable order for reports.
EFFECT_KINDS = tuple(sorted(KIND_MODES))


@dataclass(frozen=True, order=True)
class Effect:
    """One observable interaction: ``(kind, resource)``.

    *resource* is a namespaced identity string — ``Class.attr`` for
    instance state, ``module.NAME`` for globals, a backend name for
    guarded dispatch, an exception name for ``raises``, a method name
    for ``opaque``.
    """

    kind: str
    resource: str

    @property
    def mode(self) -> str:
        """This effect's interference mode (see module docstring)."""
        return KIND_MODES[self.kind]

    def render(self) -> str:
        """Canonical ``kind:resource`` string (table/report form)."""
        return "%s:%s" % (self.kind, self.resource)


@dataclass
class FunctionEffects:
    """The inferred effect signature of one function.

    ``truncated`` marks signatures that hit the analyzer's size cap —
    any stage whose closure is truncated can only ever be ``unknown``
    in the capability table, never ``safe-parallel``.
    """

    effects: FrozenSet[Effect]
    truncated: bool = False

    def rendered(self) -> Tuple[str, ...]:
        """Sorted canonical strings of every effect (deterministic)."""
        return tuple(sorted(e.render() for e in self.effects))
