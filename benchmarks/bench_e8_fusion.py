"""E8 (extension) — Fused retrieval: topology + BM25 via RRF.

The paper's future work commits to "further optimize the retrieval
mechanism". E7 exposed the two regimes: lexical matching dominates on
direct-vocabulary queries while graph traversal is the only signal on
indirect (relational-hop) queries. The standard remedy is fusion;
this bench measures whether RRF over {topology, BM25} recovers the
best of both, with and without the keyword reranker.

Expected shape: fusion ≈ BM25 on direct queries, ≈ topology on
indirect queries, strictly better than either on the combined suite.
"""

from __future__ import annotations

import pytest

from repro.bench import LakeSpec, generate_ecommerce_lake, render_table
from repro.graphindex import GraphIndexBuilder
from repro.metering import CostMeter
from repro.retrieval import (
    BM25Retriever, FusionRetriever, KeywordReranker, TopologyRetriever,
    aggregate_rankings, evaluate_ranking,
)
from repro.slm import SLMConfig, SmallLanguageModel
from repro.storage.relational import Database
from repro.text.chunker import Chunker, ChunkerConfig
from repro.text.ner import Gazetteer

from _common import emit

RESULTS = []


@pytest.fixture(scope="module")
def setting():
    lake = generate_ecommerce_lake(
        LakeSpec(n_products=16, seed=81, n_filler_docs=8)
    )
    chunks = Chunker(
        ChunkerConfig(max_tokens=48, overlap_sentences=0)
    ).chunk_corpus(lake.review_texts)
    queries = lake.retrieval_queries(n=16) \
        + lake.indirect_retrieval_queries()
    db = Database(meter=CostMeter())
    for statement in lake.sql_statements():
        db.execute(statement)

    meter = CostMeter()
    gazetteer = Gazetteer()
    gazetteer.add("VALUE", lake.product_names())
    gazetteer.add("VALUE", sorted({p["manufacturer"]
                                   for p in lake.products}))
    slm = SmallLanguageModel(SLMConfig(seed=0), gazetteer=gazetteer,
                             meter=meter)
    builder = GraphIndexBuilder(slm, meter=meter)
    builder.add_chunks(chunks)
    builder.add_table(db.table("products"),
                      entity_columns=["name_key", "manufacturer"])
    graph = builder.build()

    def make(kind):
        if kind == "topology":
            return TopologyRetriever(graph, slm, meter=meter)
        if kind == "bm25":
            return BM25Retriever(meter=meter)
        if kind == "fusion":
            return FusionRetriever([
                TopologyRetriever(graph, slm, meter=meter),
                BM25Retriever(meter=meter),
            ])
        raise ValueError(kind)

    return chunks, queries, make


def evaluate(retriever, queries, rerank=False):
    reranker = KeywordReranker(meter=CostMeter()) if rerank else None
    buckets = {"direct": [], "indirect": []}
    for query in queries:
        hits = retriever.retrieve(query.query, k=8)
        if reranker is not None:
            hits = reranker.rerank(query.query, hits)
        ranked = []
        for hit in hits:
            if hit.chunk.doc_id not in ranked:
                ranked.append(hit.chunk.doc_id)
        metrics = evaluate_ranking(ranked, query.relevant_docs, ks=(5,))
        buckets[
            "indirect" if query.query_class == "indirect" else "direct"
        ].append(metrics)
    direct = aggregate_rankings(buckets["direct"])
    indirect = aggregate_rankings(buckets["indirect"])
    combined = aggregate_rankings(buckets["direct"] + buckets["indirect"])
    return direct, indirect, combined


@pytest.mark.parametrize("kind,rerank", [
    ("topology", False), ("bm25", False),
    ("fusion", False), ("fusion", True),
])
def test_e8_fusion(benchmark, setting, kind, rerank):
    chunks, queries, make = setting
    retriever = make(kind)
    retriever.index(chunks)
    direct, indirect, combined = evaluate(retriever, queries, rerank)
    RESULTS.append({
        "retriever": kind + ("+rerank" if rerank else ""),
        "recall@5_direct": round(direct.get("recall@5", 0.0), 3),
        "recall@5_indirect": round(indirect.get("recall@5", 0.0), 3),
        "recall@5_all": round(combined.get("recall@5", 0.0), 3),
        "mrr_all": round(combined.get("mrr", 0.0), 3),
    })
    benchmark(retriever.retrieve, queries[0].query, 8)


def test_e8_report(benchmark):
    benchmark(lambda: None)
    assert RESULTS, "fusion runs first"
    emit("e8_fusion", render_table(
        RESULTS, title="E8 (extension) — Fused retrieval"
    ))
    by_name = {r["retriever"]: r for r in RESULTS}
    fusion = by_name["fusion"]
    topo = by_name["topology"]
    bm25 = by_name["bm25"]
    # Fusion keeps most of the indirect capability BM25 lacks (some
    # dilution from interleaving BM25's weak indirect rankings is the
    # documented RRF tradeoff)...
    assert fusion["recall@5_indirect"] >= 0.7 * topo["recall@5_indirect"]
    assert bm25["recall@5_indirect"] <= 0.2
    # ...and the combined suite beats both members.
    assert fusion["recall@5_all"] >= topo["recall@5_all"]
    assert fusion["recall@5_all"] >= bm25["recall@5_all"]
