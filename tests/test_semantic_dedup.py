"""Tests for the sem_dedup operator."""

import pytest

from repro.metering import CostMeter
from repro.semql import SemanticOperators
from repro.slm import SLMConfig, SmallLanguageModel
from repro.storage.relational.executor import ResultSet


def make_ops(threshold=0.18):
    slm = SmallLanguageModel(SLMConfig(seed=0), meter=CostMeter())
    return SemanticOperators(slm, similarity_threshold=threshold)


class TestSemDedup:
    def test_near_duplicates_collapse(self):
        rs = ResultSet(["fact"], [
            ("Alpha Widget sales rose 20% in Q2",),
            ("sales of the alpha widget rose 20% in Q2",),
            ("the patient recovered fully after treatment",),
        ])
        out = make_ops().sem_dedup(rs, threshold=0.6)
        assert len(out) == 2
        assert out.rows[0][0].startswith("Alpha Widget")

    def test_keeps_first_representative(self):
        rs = ResultSet(["t"], [("b c d",), ("b c d e",), ("b c d",)])
        out = make_ops().sem_dedup(rs, threshold=0.9)
        assert out.rows[0] == ("b c d",)

    def test_distinct_rows_survive(self):
        rs = ResultSet(["t"], [
            ("quarterly revenue grew strongly",),
            ("the chemical spill was contained",),
            ("a new stadium opened downtown",),
        ])
        out = make_ops().sem_dedup(rs, threshold=0.8)
        assert len(out) == 3

    def test_empty_input(self):
        out = make_ops().sem_dedup(ResultSet(["t"], []))
        assert out.rows == []

    def test_column_restriction(self):
        rs = ResultSet(["id", "text"], [
            (1, "same underlying story here"),
            (2, "same underlying story here"),
        ])
        # Restricted to the text column, ids don't block dedup.
        out = make_ops().sem_dedup(rs, columns=["text"], threshold=0.95)
        assert len(out) == 1
