"""Fuzz tests for the NL layers: they may abstain, never crash.

Users type anything; `analyze`, the synthesizer and comparison
detection must respond with a result or a typed error — no raw
exceptions.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReproError
from repro.metering import CostMeter
from repro.qa.compare import decompose, detect_comparison
from repro.semql import OperatorSynthesizer, SchemaCatalog, analyze
from repro.slm import SLMConfig, SmallLanguageModel
from repro.storage.relational import Database
from repro.text.ner import TYPE_PRODUCT, Gazetteer

question_soup = st.text(
    alphabet=st.sampled_from(
        list("abcdefghij ALPHAWIDGET?%0123456789.,'-")
    ),
    max_size=80,
)

phrase_soup = st.lists(
    st.sampled_from([
        "compare", "total", "average", "sales", "of", "the",
        "Alpha Widget", "Beta Gadget", "in", "Q2", "2024", "and",
        "more than", "15%", "per", "manufacturer", "which", "highest",
        "between", "10", "not from", "Acme", "list", "products",
        "with", "increase", "above", "top 3", "cheapest", "?", "",
    ]),
    min_size=1, max_size=12,
).map(" ".join)


@pytest.fixture(scope="module")
def nl_stack():
    db = Database(meter=CostMeter())
    db.execute(
        "CREATE TABLE products (pid INT PRIMARY KEY, name TEXT, "
        "manufacturer TEXT, price FLOAT)"
    )
    db.execute(
        "CREATE TABLE sales (sid INT PRIMARY KEY, pid INT, "
        "quarter TEXT, amount FLOAT)"
    )
    db.execute(
        "INSERT INTO products VALUES (1, 'Alpha Widget', 'Acme', 10.0), "
        "(2, 'Beta Gadget', 'Globex', 20.0)"
    )
    db.execute("INSERT INTO sales VALUES (1, 1, 'q2', 100.0)")
    catalog = SchemaCatalog(db)
    catalog.register_synonym("sales", "sales", "amount")
    catalog.register_join("sales", "pid", "products", "pid")
    catalog.register_display_column("products", "name")
    catalog.build_value_index()
    gazetteer = Gazetteer()
    gazetteer.add(TYPE_PRODUCT, ["Alpha Widget", "Beta Gadget"])
    slm = SmallLanguageModel(SLMConfig(seed=0), gazetteer=gazetteer,
                             meter=CostMeter())
    return OperatorSynthesizer(catalog), slm


class TestNLFuzz:
    @given(question=question_soup)
    @settings(max_examples=150, deadline=None)
    def test_analyze_never_crashes(self, question):
        frame = analyze(question)
        assert frame.question == question

    @given(question=phrase_soup)
    @settings(max_examples=150, deadline=None)
    def test_synthesize_abstains_cleanly(self, question, nl_stack):
        synthesizer, _ = nl_stack
        try:
            spec = synthesizer.synthesize(question)
        except ReproError:
            return
        assert spec.table

    @given(question=phrase_soup)
    @settings(max_examples=100, deadline=None)
    def test_comparison_detection_never_crashes(self, question, nl_stack):
        _, slm = nl_stack
        frame = detect_comparison(question, slm)
        if frame is not None:
            subs = decompose(frame)
            assert len(subs) == len(frame.entities)
            for _, sub_question in subs:
                assert sub_question.strip()

    @given(question=question_soup)
    @settings(max_examples=100, deadline=None)
    def test_tagging_never_crashes(self, question, nl_stack):
        _, slm = nl_stack
        for entity in slm.tag_entities(question):
            assert question[entity.start:entity.end] == entity.text
