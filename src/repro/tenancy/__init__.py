"""Multi-tenant governance: registry, contexts, static checks, quotas.

The gateway layer that lets one federated stack serve many isolated
organizations. Three pieces:

* :class:`TenantRegistry` / :class:`TenantContext` — declarative JSON
  tenant specs resolved into immutable per-request contexts (catalog
  visibility, RLS predicates, document scopes, work-clock quota, SLO
  tier). No mutable global anywhere.
* :func:`check_tenancy` — the compile-time governance gate: a static
  pass rejecting any plan whose stages do not carry exactly the
  tenant's mandated RLS/scope parameters (fail-closed).
* :class:`WorkClockBucket` — deterministic per-tenant token buckets on
  the CostMeter work clock, backing serving-layer admission so one
  greedy tenant sheds without degrading its neighbours.
"""

from .check import (
    PARAM_BOUND_TABLES, PARAM_RLS, PARAM_SCOPE, ROUTE_KIND,
    SEVERITY_ERROR, SEVERITY_WARNING, TABLE_KINDS, TEXT_KINDS,
    TenancyDiagnostic, check_tenancy, tenancy_errors,
)
from .quota import WorkClockBucket, bucket_for
from .registry import (
    DEFAULT_TENANT, PERMISSIVE_DEFAULT, RLS_OPS, RLSRule, TenantContext,
    TenantRegistry, validate_registry_data,
)

__all__ = [
    "DEFAULT_TENANT", "PERMISSIVE_DEFAULT", "RLS_OPS", "RLSRule",
    "TenantContext", "TenantRegistry", "validate_registry_data",
    "PARAM_BOUND_TABLES", "PARAM_RLS", "PARAM_SCOPE", "ROUTE_KIND",
    "SEVERITY_ERROR", "SEVERITY_WARNING", "TABLE_KINDS", "TEXT_KINDS",
    "TenancyDiagnostic", "check_tenancy", "tenancy_errors",
    "WorkClockBucket", "bucket_for",
]
