"""Tests for qualifier-style NL queries over generated tables:
entity listing with metric ranges and directional counting."""

import pytest

from repro.metering import CostMeter
from repro.qa import HybridQAPipeline
from repro.slm import SLMConfig, SmallLanguageModel
from repro.text.ner import TYPE_PRODUCT, Gazetteer

REVIEWS = [
    ("r1", "Satisfaction with the Alpha Widget increased 25% in Q2 "
           "2024."),
    ("r2", "Satisfaction with the Beta Gadget increased 5% in Q2 "
           "2024."),
    ("r3", "Satisfaction with the Gamma Gizmo decreased 12% in Q2 "
           "2024."),
]


@pytest.fixture(scope="module")
def pipe():
    gaz = Gazetteer()
    gaz.add(TYPE_PRODUCT, ["Alpha Widget", "Beta Gadget", "Gamma Gizmo"])
    slm = SmallLanguageModel(SLMConfig(seed=0), gazetteer=gaz,
                             meter=CostMeter())
    pipe = HybridQAPipeline(slm, meter=CostMeter())
    pipe.add_sql([
        "CREATE TABLE products (pid INT PRIMARY KEY, name TEXT)",
        "INSERT INTO products VALUES (1, 'Alpha Widget'), "
        "(2, 'Beta Gadget'), (3, 'Gamma Gizmo')",
    ])
    pipe.declare_entity_columns("products", ["name"])
    pipe.add_texts(REVIEWS)
    pipe.generate_table("facts")
    pipe.build()
    return pipe


class TestQualifierListing:
    def test_list_with_range_projects_entities(self, pipe):
        answer = pipe.answer("List products with an increase above 10%")
        assert answer.contains_text("alpha widget")
        assert not answer.contains_text("beta gadget")

    def test_list_all_above_negative(self, pipe):
        answer = pipe.answer(
            "List products with a change above -20%"
        )
        assert answer.contains_text("gamma gizmo")

    def test_value_question_still_projects_metric(self, pipe):
        answer = pipe.answer(
            "How much did satisfaction with the Beta Gadget change in "
            "Q2 2024?"
        )
        assert answer.matches_number(5.0)


class TestDirectionalCounting:
    def test_count_decreases(self, pipe):
        answer = pipe.answer(
            "How many products had a satisfaction decrease?"
        )
        assert answer.matches_number(1.0)

    def test_count_increases(self, pipe):
        answer = pipe.answer(
            "How many products had a satisfaction increase?"
        )
        assert answer.matches_number(2.0)

    def test_explicit_threshold_not_overridden(self, pipe):
        answer = pipe.answer(
            "Count facts with an increase of more than 20%"
        )
        assert answer.matches_number(1.0)
