"""Tests for superlative question synthesis."""

import pytest

from repro.errors import SynthesisError
from repro.metering import CostMeter
from repro.semql import (
    OperatorSynthesizer, QueryCompiler, SchemaCatalog, analyze,
)
from repro.storage.relational import Database


@pytest.fixture
def setting():
    db = Database(meter=CostMeter())
    db.execute(
        "CREATE TABLE products (pid INT PRIMARY KEY, name TEXT, "
        "manufacturer TEXT, price FLOAT)"
    )
    db.execute(
        "INSERT INTO products VALUES (1, 'Alpha', 'Acme', 19.99), "
        "(2, 'Beta', 'Globex', 29.99), (3, 'Gamma', 'Acme', 9.99)"
    )
    catalog = SchemaCatalog(db)
    catalog.register_display_column("products", "name")
    catalog.build_value_index()
    return OperatorSynthesizer(catalog), QueryCompiler(db)


class TestIntent:
    def test_superlative_max(self):
        frame = analyze("Which product has the highest price?")
        assert frame.superlative == "max" and frame.wants_entity
        assert frame.aggregate is None  # entity, not MAX(value)

    def test_superlative_min(self):
        assert analyze("Which item is the cheapest?").superlative == "min"

    def test_plain_max_still_aggregate(self):
        frame = analyze("Find the highest price")
        assert frame.aggregate == "max" and not frame.wants_entity

    def test_implicit_price_metric(self):
        frame = analyze("Which product is the most expensive?")
        assert "price" in frame.metric_terms


class TestSynthesis:
    def test_highest(self, setting):
        synthesizer, compiler = setting
        spec = synthesizer.synthesize("Which product has the highest price?")
        assert spec.order_by == "price" and spec.descending
        assert spec.limit == 1
        assert compiler.execute(spec).rows == [("Beta",)]

    def test_cheapest(self, setting):
        synthesizer, compiler = setting
        spec = synthesizer.synthesize("Which product is the cheapest?")
        assert not spec.descending
        assert compiler.execute(spec).rows == [("Gamma",)]

    def test_superlative_with_filter(self, setting):
        synthesizer, compiler = setting
        spec = synthesizer.synthesize(
            "Which product from Acme has the highest price?"
        )
        assert compiler.execute(spec).rows == [("Alpha",)]

    def test_top_k_override(self, setting):
        synthesizer, compiler = setting
        spec = synthesizer.synthesize(
            "Which are the top 2 products by highest price?"
        )
        assert spec.limit == 2
        assert compiler.execute(spec).column("name") == ["Beta", "Alpha"]

    def test_unbound_superlative_abstains(self, setting):
        synthesizer, _ = setting
        with pytest.raises(SynthesisError):
            synthesizer.synthesize("Which product has the highest zorp?")

    def test_group_superlative_sum(self, setting):
        synthesizer, compiler = setting
        spec = synthesizer.synthesize(
            "Which manufacturer has the highest total price?"
        )
        assert spec.group_by == ("manufacturer",)
        assert spec.order_by == "sum_price" and spec.descending
        result = compiler.execute(spec)
        # Acme sums to 29.98 (19.99 + 9.99); Globex's single 29.99 wins.
        assert result.rows[0][0] == "Globex"

    def test_group_superlative_avg(self, setting):
        synthesizer, compiler = setting
        spec = synthesizer.synthesize(
            "Which manufacturer has the highest average price?"
        )
        assert spec.aggregates[0].func == "avg"
        result = compiler.execute(spec)
        assert result.rows[0][0] == "Globex"  # 29.99 vs (19.99+9.99)/2

    def test_group_superlative_min(self, setting):
        synthesizer, compiler = setting
        spec = synthesizer.synthesize(
            "Which manufacturer has the lowest average price?"
        )
        assert not spec.descending
        assert compiler.execute(spec).rows[0][0] == "Acme"

    def test_value_max_still_works(self, setting):
        synthesizer, compiler = setting
        spec = synthesizer.synthesize("What is the highest price?")
        # "What is the highest price" → wants_entity is true for
        # "what", so this also resolves as a superlative over price —
        # but projecting the display column. Accept either reading:
        result = compiler.execute(spec)
        assert result.rows in ([("Beta",)], [(29.99,)])
