"""Tests for the heterogeneous graph: structure, centrality, builder."""

import pytest

from repro.errors import GraphIndexError
from repro.metering import EDGES_TRAVERSED, CostMeter
from repro.graphindex import (
    BuilderConfig, EDGE_CO_OCCURS, EDGE_MENTIONS, EDGE_NEXT, EDGE_RELATES,
    GraphEdge, GraphIndexBuilder, GraphNode, HeterogeneousGraph,
    NODE_CHUNK, NODE_ENTITY, NODE_RECORD, chunk_key, degree_centrality,
    entity_key, graph_from_json, graph_to_json, harmonic_centrality,
    normalize_scores, pagerank,
)
from repro.slm import SLMConfig, SmallLanguageModel
from repro.storage.document import DocumentStore
from repro.storage.relational import Column, Database, TableSchema
from repro.storage.types import DataType
from repro.text.chunker import Chunker, ChunkerConfig
from repro.text.ner import TYPE_PRODUCT, Gazetteer


def make_graph():
    g = HeterogeneousGraph(meter=CostMeter())
    for i in range(3):
        g.add_node(GraphNode("chunk:c%d" % i, NODE_CHUNK, "c%d" % i))
    for name in ("alpha", "beta"):
        g.add_node(GraphNode("entity:%s" % name, NODE_ENTITY, name))
    g.add_edge(GraphEdge("chunk:c0", "entity:alpha", EDGE_MENTIONS))
    g.add_edge(GraphEdge("chunk:c1", "entity:alpha", EDGE_MENTIONS))
    g.add_edge(GraphEdge("chunk:c1", "entity:beta", EDGE_MENTIONS))
    g.add_edge(GraphEdge("entity:alpha", "entity:beta", EDGE_CO_OCCURS))
    g.add_edge(GraphEdge("chunk:c0", "chunk:c1", EDGE_NEXT))
    return g


class TestGraphStructure:
    def test_counts(self):
        g = make_graph()
        assert g.n_nodes == 5 and g.n_edges == 5

    def test_duplicate_node_ignored(self):
        g = make_graph()
        assert not g.add_node(GraphNode("chunk:c0", NODE_CHUNK, "dup"))

    def test_duplicate_edge_ignored_both_orientations(self):
        g = make_graph()
        assert not g.add_edge(
            GraphEdge("chunk:c0", "entity:alpha", EDGE_MENTIONS)
        )
        assert not g.add_edge(
            GraphEdge("entity:alpha", "chunk:c0", EDGE_MENTIONS)
        )

    def test_edge_requires_nodes(self):
        g = make_graph()
        with pytest.raises(GraphIndexError):
            g.add_edge(GraphEdge("chunk:c0", "entity:nope", EDGE_MENTIONS))

    def test_neighbors_filtered(self):
        g = make_graph()
        ents = g.neighbors("chunk:c1", node_kind=NODE_ENTITY)
        assert {n.node_id for _, n in ents} == {"entity:alpha", "entity:beta"}
        nexts = g.neighbors("chunk:c1", edge_kinds=[EDGE_NEXT])
        assert [n.node_id for _, n in nexts] == ["chunk:c0"]

    def test_degree(self):
        g = make_graph()
        assert g.degree("entity:alpha") == 3
        assert g.degree("entity:alpha", edge_kinds=[EDGE_MENTIONS]) == 2

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            GraphNode("x", "bogus", "x")
        with pytest.raises(ValueError):
            GraphEdge("a", "b", "bogus")
        with pytest.raises(ValueError):
            GraphEdge("a", "b", EDGE_NEXT, weight=0)

    def test_nodes_by_kind(self):
        g = make_graph()
        assert len(g.nodes(NODE_ENTITY)) == 2
        with pytest.raises(GraphIndexError):
            g.nodes("bogus")

    def test_meter_charged_on_traversal(self):
        meter = CostMeter()
        g = HeterogeneousGraph(meter=meter)
        g.add_node(GraphNode("chunk:a", NODE_CHUNK, "a"))
        g.add_node(GraphNode("chunk:b", NODE_CHUNK, "b"))
        g.add_edge(GraphEdge("chunk:a", "chunk:b", EDGE_NEXT))
        g.neighbors("chunk:a")
        assert meter.get(EDGES_TRAVERSED) == 1


class TestTraversal:
    def test_bfs_depths(self):
        g = make_graph()
        depths = g.bfs(["chunk:c0"], max_depth=2)
        assert depths["chunk:c0"] == 0
        assert depths["entity:alpha"] == 1
        assert depths["chunk:c1"] == 1
        assert depths["entity:beta"] == 2

    def test_bfs_max_nodes(self):
        g = make_graph()
        depths = g.bfs(["chunk:c0"], max_depth=3, max_nodes=2)
        assert len(depths) == 2

    def test_bfs_ignores_unknown_sources(self):
        g = make_graph()
        assert g.bfs(["nope"], max_depth=1) == {}

    def test_bfs_negative_depth(self):
        with pytest.raises(GraphIndexError):
            make_graph().bfs(["chunk:c0"], max_depth=-1)

    def test_shortest_path(self):
        g = make_graph()
        assert g.shortest_path_length("chunk:c0", "entity:beta") == 2
        assert g.shortest_path_length("chunk:c0", "chunk:c0") == 0
        assert g.shortest_path_length("chunk:c0", "chunk:c2") is None

    def test_components(self):
        g = make_graph()
        comps = g.connected_components()
        assert len(comps) == 2
        assert len(comps[0]) == 4  # largest first

    def test_stats(self):
        stats = make_graph().stats()
        assert stats["n_chunks"] == 3 and stats["n_entities"] == 2
        assert stats["n_components"] == 2


class TestCentrality:
    def test_degree_centrality(self):
        scores = degree_centrality(make_graph())
        assert scores["entity:alpha"] == pytest.approx(3 / 4)
        assert scores["chunk:c2"] == 0.0

    def test_pagerank_sums_to_one(self):
        ranks = pagerank(make_graph())
        assert sum(ranks.values()) == pytest.approx(1.0, abs=1e-6)

    def test_pagerank_hub_ranks_high(self):
        ranks = pagerank(make_graph())
        assert ranks["entity:alpha"] > ranks["chunk:c2"]

    def test_pagerank_bad_damping(self):
        with pytest.raises(GraphIndexError):
            pagerank(make_graph(), damping=1.5)

    def test_pagerank_empty_graph(self):
        assert pagerank(HeterogeneousGraph(meter=CostMeter())) == {}

    def test_harmonic_subset(self):
        g = make_graph()
        scores = harmonic_centrality(g, nodes=["entity:alpha", "chunk:c2"])
        assert scores["entity:alpha"] > scores["chunk:c2"] == 0.0

    def test_harmonic_unknown_node(self):
        with pytest.raises(GraphIndexError):
            harmonic_centrality(make_graph(), nodes=["zzz"])

    def test_normalize(self):
        out = normalize_scores({"a": 1.0, "b": 3.0})
        assert out == {"a": 0.0, "b": 1.0}
        assert normalize_scores({"a": 2.0, "b": 2.0}) == {"a": 0.0, "b": 0.0}
        assert normalize_scores({}) == {}


def make_slm():
    gaz = Gazetteer()
    gaz.add(TYPE_PRODUCT, ["Alpha Widget", "Beta Gadget"])
    return SmallLanguageModel(SLMConfig(seed=0), gazetteer=gaz,
                              meter=CostMeter())


class TestBuilder:
    def build_from_text(self, config=None):
        slm = make_slm()
        chunker = Chunker(ChunkerConfig(max_tokens=40, overlap_sentences=0))
        chunks = chunker.chunk_corpus({
            "r1": "The Alpha Widget sales increased 20% in Q2. "
                  "Customers liked the Alpha Widget.",
            "r2": "The Beta Gadget sold poorly. Q2 returns rose.",
        })
        builder = GraphIndexBuilder(slm, config=config, meter=CostMeter())
        builder.add_chunks(chunks)
        return builder.build()

    def test_chunk_and_entity_nodes(self):
        g = self.build_from_text()
        assert len(g.nodes(NODE_CHUNK)) >= 2
        entity_ids = {n.node_id for n in g.nodes(NODE_ENTITY)}
        assert entity_key("alpha widget") in entity_ids
        assert entity_key("beta gadget") in entity_ids

    def test_mentions_edges(self):
        g = self.build_from_text()
        ek = entity_key("alpha widget")
        mentions = g.neighbors(ek, edge_kinds=[EDGE_MENTIONS])
        assert len(mentions) >= 1

    def test_relation_cue_extracted(self):
        g = self.build_from_text()
        # "Alpha Widget sales increased 20%" links entities via a verb.
        relates = [e for e in g.edges() if e.kind == EDGE_RELATES]
        assert relates, "expected at least one relational cue edge"
        assert all(e.label for e in relates)

    def test_chunk_only_ablation(self):
        g = self.build_from_text(
            BuilderConfig(entity_nodes=False)
        )
        assert g.nodes(NODE_ENTITY) == []
        assert len(g.nodes(NODE_CHUNK)) >= 2

    def test_no_cooccurrence_ablation(self):
        g = self.build_from_text(BuilderConfig(cooccurrence_edges=False))
        assert not [e for e in g.edges() if e.kind == EDGE_CO_OCCURS]

    def test_empty_build_rejected(self):
        builder = GraphIndexBuilder(make_slm(), meter=CostMeter())
        with pytest.raises(GraphIndexError):
            builder.build()

    def test_add_table(self):
        db = Database(meter=CostMeter())
        db.create_table(TableSchema(
            "purchases",
            [Column("customer", DataType.TEXT),
             Column("product", DataType.TEXT)],
        ))
        db.load_rows("purchases", [("cust-1", "Alpha Widget")])
        builder = GraphIndexBuilder(make_slm(), meter=CostMeter())
        builder.add_table(db.table("purchases"),
                          entity_columns=["customer", "product"])
        builder.add_table_relations(db.table("purchases"), "customer",
                                    "product", relation="purchased")
        g = builder.build()
        assert len(g.nodes(NODE_RECORD)) == 1
        relates = [e for e in g.edges() if e.kind == EDGE_RELATES]
        assert relates and relates[0].label == "purchased"
        # Table entity unifies with text entity via normalization.
        assert g.has_node(entity_key("alpha widget"))

    def test_add_documents(self):
        store = DocumentStore(meter=CostMeter())
        store.put("log1", {"customer": "cust-1", "event": "return"})
        builder = GraphIndexBuilder(make_slm(), meter=CostMeter())
        builder.add_documents(store, entity_paths=["customer"])
        g = builder.build()
        assert g.has_node(entity_key("cust-1"))
        assert len(g.nodes(NODE_RECORD)) == 1


class TestPersistence:
    def test_roundtrip(self):
        g = make_graph()
        clone = graph_from_json(graph_to_json(g), meter=CostMeter())
        assert clone.n_nodes == g.n_nodes
        assert clone.n_edges == g.n_edges
        assert clone.stats() == g.stats()

    def test_bad_json(self):
        with pytest.raises(GraphIndexError):
            graph_from_json("not json at all {")
        with pytest.raises(GraphIndexError):
            graph_from_json("[]")

    def test_version_check(self):
        with pytest.raises(GraphIndexError):
            graph_from_json('{"version": 99, "nodes": [], "edges": []}')

    def test_file_roundtrip(self, tmp_path):
        from repro.graphindex import load_graph, save_graph
        g = make_graph()
        path = str(tmp_path / "graph.json")
        save_graph(g, path)
        clone = load_graph(path, meter=CostMeter())
        assert clone.n_nodes == g.n_nodes

    def test_networkx_export(self):
        pytest.importorskip("networkx")
        g = make_graph()
        nxg = g.to_networkx()
        assert nxg.number_of_nodes() == g.n_nodes
        assert nxg.number_of_edges() == g.n_edges
