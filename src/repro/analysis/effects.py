"""Per-function effect signatures by fixpoint propagation.

:class:`EffectAnalyzer` runs two passes over the
:class:`~repro.analysis.callgraph.ProjectIndex`:

1. **Local extraction** — one AST walk per function collecting direct
   effects (assignments to ``self``/argument/global state, in-place
   mutator calls, RNG draws, raises, I/O) plus the call edges the
   resolver can see. Nested functions and lambdas are walked as part
   of their enclosing definition, so closure bodies passed to
   ``try_call`` count against the caller that builds them.
2. **Fixpoint closure** — monotone union of callee signatures into
   callers until nothing changes. Effects only accumulate, so the
   pass terminates in at most ``O(depth)`` sweeps.

A small set of **intrinsics** keeps the closure honest where blunt
traversal would lie:

* calls into ``obs/`` are one commuting ``obs`` effect (spans/metrics
  are the observational plane, re-emitted deterministically), not a
  false shared-state conflict on ``Span.attrs``;
* calls into ``metering.py`` are a commuting ``meter`` charge;
* calls into ``caching.py`` are a commuting ``cache`` effect keyed by
  the receiver (idempotent keyed tiers: racing writers insert
  identical bytes);
* ``ResilienceManager.try_call/shield/invoke/attempt`` with a literal
  backend key become ``backend-dispatch:<key>`` — breaker state and
  the per-backend fault stream are order-sensitive *per key*, which is
  exactly what lets differently-keyed arms overlap.

Everything the resolver cannot see through becomes an ``opaque``
effect naming the callee, never a silent pass.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from .callgraph import (
    TYPE_INSTANCE, TYPE_PROVIDER, FunctionInfo, ProjectIndex,
    param_annotations, parse_type_annotation,
)
from .model import (
    ARG_WRITE, ATTR_WRITE, BACKEND_DISPATCH, CACHE, GLOBAL_READ,
    GLOBAL_WRITE, IO_WRITE, METER, OBS, OPAQUE, RAISES, RNG_WRITE,
    Effect, FunctionEffects,
)

#: Effect-count cap per closure; beyond it the signature is flagged
#: ``truncated`` and the owning stage can never certify safe-parallel.
_EFFECT_CAP = 200

#: In-place container mutators: calling one on a non-local receiver is
#: a write to that receiver's storage.
_MUTATOR_METHODS = frozenset({
    "append", "appendleft", "extend", "insert", "add", "update",
    "pop", "popitem", "popleft", "push", "put", "remove", "discard",
    "clear", "setdefault", "sort", "reverse",
})

#: ``random.Random``-style draw methods: each call advances the
#: stream, so draws from a *shared* stream are order-sensitive writes.
_RNG_METHODS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "betavariate",
    "triangular", "getrandbits", "seed",
})

#: File-ish method names treated as I/O when unresolved in-package.
_IO_METHODS = frozenset({
    "write", "writelines", "write_text", "write_bytes", "read_text",
    "read_bytes", "mkdir", "unlink", "touch", "flush",
})

#: Builtin callables with no effect beyond their arguments.
_PURE_BUILTINS = frozenset({
    "abs", "all", "any", "bool", "bytes", "callable", "chr", "dict",
    "divmod", "enumerate", "filter", "float", "format", "frozenset",
    "getattr", "hasattr", "hash", "id", "int", "isinstance",
    "issubclass", "iter", "len", "list", "map", "max", "min", "next",
    "object", "ord", "pow", "range", "repr", "reversed", "round",
    "set", "slice", "sorted", "str", "sum", "super", "tuple", "type",
    "vars", "zip",
    # Exception constructors raised/propagated are tracked via Raise.
    "Exception", "ValueError", "TypeError", "KeyError", "IndexError",
    "RuntimeError", "StopIteration", "AttributeError",
    "NotImplementedError", "OSError",
})

#: External dotted-call prefixes known to be frame-local/pure.
_PURE_EXTERNAL = (
    "abc.", "ast.", "base64.", "bisect.", "collections.", "copy.",
    "dataclasses.", "difflib.", "enum.", "functools.", "hashlib.",
    "heapq.", "html.", "itertools.", "json.dumps", "json.loads",
    "math.", "operator.", "re.", "statistics.", "string.",
    "textwrap.", "typing.", "unicodedata.",
    # Constructing a locally-seeded stream is pure; *drawing* from a
    # shared one is what _RNG_METHODS catches.
    "random.Random",
)

#: External dotted-call prefixes that are file/terminal/system I/O.
_IO_EXTERNAL = (
    "csv.", "io.", "json.dump", "json.load", "os.", "pathlib.",
    "pickle.", "shutil.", "socket.", "subprocess.", "sys.",
    "tempfile.", "urllib.",
)

#: Method names so common on builtin containers/strings/matches that
#: an *untyped* receiver is overwhelmingly a frame-local object; the
#: name-fallback would otherwise smear unrelated classes that happen
#: to define them into every caller. Typed receivers resolve before
#: this list is consulted, so e.g. a typed cache tier's ``get`` still
#: classifies as a cache effect.
_FRAME_LOCAL_METHODS = frozenset({
    "capitalize", "copy", "count", "date", "decode", "digest",
    "encode", "end", "endswith", "find", "findall", "finditer",
    "format", "from_bytes", "fromisoformat", "fromkeys", "fullmatch",
    "get",
    "group", "groups", "hexdigest", "index", "is_integer", "isalnum",
    "isalpha", "isdigit", "islower", "isnumeric", "isoformat",
    "isspace", "istitle", "isupper", "items", "join", "keys", "ljust",
    "lower", "lstrip", "match", "most_common", "partition", "replace",
    "rjust", "rsplit", "rstrip", "search", "split", "splitlines",
    "start", "startswith", "strip", "sub", "title", "toordinal",
    "total_seconds", "upper", "values", "zfill",
})

#: ResilienceManager entry points that guard one engine dispatch.
_DISPATCH_METHODS = frozenset({"try_call", "shield", "invoke",
                               "attempt"})

#: Module-level constructor names that produce mutable containers.
_MUTABLE_CTORS = frozenset({"dict", "list", "set", "defaultdict",
                            "OrderedDict", "Counter", "deque"})


@dataclass
class _LocalSummary:
    """Direct effects and outgoing call edges of one function."""

    effects: Set[Effect] = field(default_factory=set)
    callees: Set[str] = field(default_factory=set)


def _is_mutable_literal(value: Optional[ast.expr]) -> bool:
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                          ast.ListComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
        return value.func.id in _MUTABLE_CTORS
    return False


class EffectAnalyzer:
    """Compute transitive effect signatures for every function."""

    def __init__(self, index: ProjectIndex):
        self.index = index
        #: module name -> module-level names bound to mutable containers
        self.module_globals: Dict[str, Set[str]] = {}
        for module in index.modules:
            names: Set[str] = set()
            for stmt in module.tree.body:
                targets = []
                if isinstance(stmt, ast.Assign):
                    targets = stmt.targets
                elif isinstance(stmt, ast.AnnAssign):
                    targets = [stmt.target]
                else:
                    continue
                if not _is_mutable_literal(stmt.value):
                    continue
                for target in targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            self.module_globals[module.module_name] = names
        self._locals: Dict[str, _LocalSummary] = {}
        self._nested: Set[str] = set()  # per-function helper names

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def analyze(self) -> Dict[str, FunctionEffects]:
        """Effect signatures for every indexed function (fixpoint)."""
        for qual, fn in self.index.functions.items():
            self._locals[qual] = self._local(fn)
        closure: Dict[str, Set[Effect]] = {
            qual: set(summary.effects)
            for qual, summary in self._locals.items()
        }
        changed = True
        while changed:
            changed = False
            for qual, summary in self._locals.items():
                mine = closure[qual]
                before = len(mine)
                for callee in summary.callees:
                    callee_effects = closure.get(callee)
                    if callee_effects:
                        mine |= callee_effects
                if len(mine) != before:
                    changed = True
        return {
            qual: FunctionEffects(
                effects=frozenset(effects),
                truncated=len(effects) > _EFFECT_CAP,
            )
            for qual, effects in closure.items()
        }

    # ------------------------------------------------------------------
    # Local extraction
    # ------------------------------------------------------------------
    def _local(self, fn: FunctionInfo) -> _LocalSummary:
        out = _LocalSummary()
        param_types = param_annotations(fn.node)
        local_types = self._infer_locals(fn, param_types)
        # Nested helpers are walked inline as part of this function,
        # so a call to one must not read as an opaque callee.
        nested = {
            child.name for child in ast.walk(fn.node)
            if isinstance(child, (ast.FunctionDef,
                                  ast.AsyncFunctionDef))
            and child is not fn.node
        }
        self._nested = nested
        declared_global: Set[str] = set()
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Global):
                for name in node.names:
                    declared_global.add(name)
                    out.effects.add(Effect(
                        GLOBAL_WRITE,
                        "%s.%s" % (fn.module_name, name)))
            elif isinstance(node, (ast.Assign, ast.AugAssign,
                                   ast.AnnAssign)):
                self._assignment_effects(fn, node, out, param_types,
                                         declared_global)
            elif isinstance(node, ast.Raise):
                self._raise_effects(node, out)
            elif isinstance(node, ast.Call):
                self._call_effects(fn, node, out, local_types,
                                   param_types)
            elif isinstance(node, ast.Name) and isinstance(
                    node.ctx, ast.Load):
                if node.id in self.module_globals.get(
                        fn.module_name, ()):
                    out.effects.add(Effect(
                        GLOBAL_READ,
                        "%s.%s" % (fn.module_name, node.id)))
        return out

    def _infer_locals(self, fn: FunctionInfo,
                      param_types: Dict[str, Tuple[str, str]]
                      ) -> Dict[str, Tuple[str, str]]:
        """Flow-insensitive local variable types from assignments."""
        own_class = (self.index.resolve_class_name(fn.class_name)
                     if fn.class_name else None)
        out: Dict[str, Tuple[str, str]] = {}
        # Two sweeps so one level of chaining resolves (x = A(); y = x).
        for _ in range(2):
            for node in ast.walk(fn.node):
                target = None
                value = None
                if isinstance(node, ast.Assign) \
                        and len(node.targets) == 1 \
                        and isinstance(node.targets[0], ast.Name):
                    target, value = node.targets[0].id, node.value
                elif isinstance(node, ast.AnnAssign) \
                        and isinstance(node.target, ast.Name):
                    seeded = parse_type_annotation(node.annotation)
                    if seeded is not None:
                        out.setdefault(node.target.id, seeded)
                    continue
                if target is None or value is None:
                    continue
                seeded = self._value_type(fn, value, own_class, out,
                                          param_types)
                if seeded is not None:
                    out.setdefault(target, seeded)
        return out

    def _value_type(self, fn: FunctionInfo, value: ast.expr, own_class,
                    local_types: Dict[str, Tuple[str, str]],
                    param_types: Dict[str, Tuple[str, str]]
                    ) -> Optional[Tuple[str, str]]:
        if isinstance(value, ast.Name):
            return local_types.get(value.id) or param_types.get(value.id)
        if not isinstance(value, ast.Call):
            return None
        func = value.func
        # ClassName(...) constructor call.
        if isinstance(func, ast.Name) and func.id[:1].isupper() \
                and self.index.resolve_class_name(func.id) is not None:
            return (TYPE_INSTANCE, func.id)
        # name(...) — a module-level function's return annotation.
        if isinstance(func, ast.Name):
            entry = self.index.symbols.get(fn.module_name,
                                           {}).get(func.id)
            if entry is not None and entry[0] == "func":
                return self._returns(entry[1])
        if isinstance(func, ast.Attribute) \
                and isinstance(func.value, ast.Name) \
                and func.value.id == "self" and own_class is not None:
            # self._provider() — a typed provider attribute yields T.
            seeded = own_class.attr_types.get(func.attr)
            if seeded is not None and seeded[0] == TYPE_PROVIDER:
                return (TYPE_INSTANCE, seeded[1])
            # self._method() — the method's return annotation.
            target = self.index.method_on(own_class, func.attr)
            if target is not None:
                return self._returns(target)
        return None

    def _returns(self, target: FunctionInfo
                 ) -> Optional[Tuple[str, str]]:
        """A resolved callee's return type, when annotated concretely."""
        seeded = parse_type_annotation(
            getattr(target.node, "returns", None))
        if seeded is not None and seeded[0] == TYPE_INSTANCE \
                and self.index.resolve_class_name(seeded[1]) is not None:
            return seeded
        return None

    # -- assignments ----------------------------------------------------
    def _assignment_effects(self, fn: FunctionInfo, node, out,
                            param_types, declared_global) -> None:
        if isinstance(node, ast.Assign):
            targets = node.targets
        else:
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Tuple):
                inner = list(target.elts)
            else:
                inner = [target]
            for item in inner:
                self._target_effect(fn, item, out, param_types,
                                    declared_global)

    def _target_effect(self, fn: FunctionInfo, target, out,
                       param_types, declared_global) -> None:
        if isinstance(target, ast.Name):
            if target.id in declared_global:
                out.effects.add(Effect(
                    GLOBAL_WRITE,
                    "%s.%s" % (fn.module_name, target.id)))
            return
        base = target.value if isinstance(
            target, (ast.Attribute, ast.Subscript)) else None
        if base is None:
            return
        if isinstance(target, ast.Attribute):
            path = self._receiver_path(fn, base, param_types)
            if path is None:
                return
            flavor, root = path
            if flavor == "self":
                out.effects.add(Effect(
                    ATTR_WRITE, "%s.%s" % (root, target.attr)))
            elif flavor == "attr":
                out.effects.add(Effect(ATTR_WRITE, root))
            elif flavor == "param":
                out.effects.add(Effect(
                    ARG_WRITE, "%s.%s" % (root, target.attr)))
            elif flavor == "global":
                out.effects.add(Effect(GLOBAL_WRITE, root))
            return
        # Subscript store: classify by the container's receiver.
        path = self._receiver_path(fn, base, param_types)
        if path is None:
            return
        flavor, root = path
        if flavor in ("self", "attr"):
            out.effects.add(Effect(ATTR_WRITE, root))
        elif flavor == "param":
            out.effects.add(Effect(ARG_WRITE, root))
        elif flavor == "global":
            out.effects.add(Effect(GLOBAL_WRITE, root))

    def _receiver_path(self, fn: FunctionInfo, base,
                       param_types) -> Optional[Tuple[str, str]]:
        """Classify a receiver expression by where its storage lives.

        Returns ``(flavor, path)`` with flavor one of ``self`` (the
        instance itself), ``attr`` (``self.x`` → ``Class.x``),
        ``param``, ``global``, ``local`` — or ``None`` when the
        receiver is an arbitrary chain the analysis will not name.
        """
        cls = fn.class_name or "?"
        if isinstance(base, ast.Name):
            if base.id == "self":
                return ("self", cls)
            if base.id in param_types or base.id in _arg_names(fn.node):
                return ("param", base.id)
            if base.id in self.module_globals.get(fn.module_name, ()):
                return ("global", "%s.%s" % (fn.module_name, base.id))
            return ("local", base.id)
        if isinstance(base, ast.Subscript):
            # x[k].append(...) mutates the container x holds.
            return self._receiver_path(fn, base.value, param_types)
        if isinstance(base, ast.Attribute) \
                and isinstance(base.value, ast.Name):
            owner = base.value.id
            if owner == "self":
                return ("attr", "%s.%s" % (cls, base.attr))
            if owner in param_types or owner in _arg_names(fn.node):
                return ("param", "%s.%s" % (owner, base.attr))
            if owner in self.module_globals.get(fn.module_name, ()):
                return ("global", "%s.%s.%s" % (fn.module_name, owner,
                                                base.attr))
            return ("local", "%s.%s" % (owner, base.attr))
        return None

    # -- raises ---------------------------------------------------------
    @staticmethod
    def _raise_effects(node: ast.Raise, out: _LocalSummary) -> None:
        exc = node.exc
        if exc is None:
            return  # bare re-raise: the original Raise is charged
        if isinstance(exc, ast.Call):
            exc = exc.func
        name = None
        if isinstance(exc, ast.Name):
            name = exc.id
        elif isinstance(exc, ast.Attribute):
            name = exc.attr
        if name:
            out.effects.add(Effect(RAISES, name))

    # -- calls ----------------------------------------------------------
    def _call_effects(self, fn: FunctionInfo, call: ast.Call,
                      out: _LocalSummary, local_types,
                      param_types) -> None:
        res = self.index.resolve_call(fn, call, local_types,
                                      param_types)
        method = res.method_name or "<dynamic>"

        # Syntactic classification first for calls the resolver could
        # not type exactly (no targets, or name-fallback candidates):
        # a mutator/RNG/file-ish method name on a classifiable
        # receiver beats guessing among unrelated same-named methods.
        if not res.targets or res.ambiguous:
            if isinstance(call.func, ast.Attribute):
                path = self._receiver_path(fn, call.func.value,
                                           param_types)
                if method in _RNG_METHODS:
                    if path is not None and path[0] != "local":
                        out.effects.add(Effect(RNG_WRITE, path[1]))
                    return  # locally-built streams are frame-local
                if method in _MUTATOR_METHODS:
                    if path is not None:
                        flavor, root = path
                        if flavor in ("self", "attr"):
                            out.effects.add(Effect(ATTR_WRITE, root))
                        elif flavor == "param":
                            out.effects.add(Effect(ARG_WRITE, root))
                        elif flavor == "global":
                            out.effects.add(Effect(GLOBAL_WRITE, root))
                    return  # local containers: the caller's frame
                if method in _IO_METHODS:
                    out.effects.add(Effect(IO_WRITE, method))
                    return
            if method in _FRAME_LOCAL_METHODS:
                return

        # Intrinsics: partition resolved targets into effect buckets.
        plain = []
        for target in res.targets:
            if target.class_name == "ResilienceManager" \
                    and method in _DISPATCH_METHODS:
                out.effects.add(Effect(
                    BACKEND_DISPATCH, res.const_arg0 or "<any>"))
            elif target.relpath.startswith("obs/"):
                out.effects.add(Effect(OBS, "trace"))
            elif target.relpath == "metering.py":
                out.effects.add(Effect(METER, "work"))
            elif target.relpath == "caching.py":
                out.effects.add(Effect(
                    CACHE, self._cache_key(fn, call, param_types)))
            else:
                plain.append(target)
        if res.targets and not plain:
            return
        if plain and not res.ambiguous:
            out.callees.update(t.qualname for t in plain)
            return

        if plain:
            # Name-fallback candidates on an untyped receiver: the
            # intrinsic buckets above already classified any obs /
            # meter / cache / dispatch hits, but traversing the plain
            # candidates would smear unrelated classes' state into
            # this closure. Record the blind spot honestly instead.
            out.effects.add(Effect(OPAQUE, method))
            return

        if res.dotted is not None:
            dotted = res.dotted
            if dotted.startswith(_PURE_EXTERNAL):
                return
            if dotted.startswith(_IO_EXTERNAL):
                out.effects.add(Effect(IO_WRITE, dotted))
                return
            out.effects.add(Effect(OPAQUE, dotted))
            return

        name = res.opaque_name
        if name is None:
            return
        if name in _PURE_BUILTINS:
            return
        if name in self._nested:
            return  # nested helper, walked inline above
        if name == "cls" and fn.class_name:
            # classmethod constructor: charge the own-class __init__.
            cls = self.index.resolve_class_name(fn.class_name)
            ctor = (self.index.method_on(cls, "__init__")
                    if cls is not None else None)
            if ctor is not None:
                out.callees.add(ctor.qualname)
            return
        if name in ("open", "input"):
            out.effects.add(Effect(IO_WRITE, name))
            return
        if name == "print":
            out.effects.add(Effect(IO_WRITE, "stdout"))
            return
        # self._provider() on a typed provider attribute: the closure
        # just hands back the current engine instance.
        if res.receiver[:1] == ("self",) and fn.class_name:
            cls = self.index.resolve_class_name(fn.class_name)
            if cls is not None:
                seeded = cls.attr_types.get(name)
                if seeded is not None and seeded[0] == TYPE_PROVIDER:
                    return
        out.effects.add(Effect(OPAQUE, name))

    def _cache_key(self, fn: FunctionInfo, call: ast.Call,
                   param_types) -> str:
        """Name the cache tier a resolved caching call operates on."""
        func = call.func
        if isinstance(func, ast.Attribute):
            path = self._receiver_path(fn, func.value, param_types)
            if path is not None:
                return path[1]
        return "tier"


def _arg_names(node) -> Set[str]:
    args = node.args
    names = {a.arg for a in args.args}
    names.update(a.arg for a in args.kwonlyargs)
    names.update(a.arg for a in getattr(args, "posonlyargs", []))
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    return names
