"""Command-line entry point: ``python -m repro.lint [paths...]``.

Exit codes: 0 = clean, 1 = findings reported, 2 = usage error
(e.g. an unknown rule id passed to ``--select``/``--ignore``).
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional

from .baseline import apply_baseline, load_baseline
from .core import LintEngine, all_rules, rule_ids
from .report import render_github, render_json, render_text


def _default_root() -> pathlib.Path:
    # The package we ship is the default lint target.
    return pathlib.Path(__file__).resolve().parent.parent


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for the lint CLI."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Static analysis for the repro codebase.",
    )
    parser.add_argument(
        "paths", nargs="*", type=pathlib.Path,
        help="package roots to lint (default: the repro package)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "github"), default="text",
        help="report format (default: text); 'github' emits workflow "
             "::error annotations",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", type=pathlib.Path,
        help="committed findings file (--format json output): "
             "suppress findings recorded there, fail only on new ones",
    )
    parser.add_argument(
        "--select", metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore", metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _pick_rules(select: Optional[str], ignore: Optional[str]):
    selected = set(select.split(",")) if select else set(rule_ids())
    ignored = set(ignore.split(",")) if ignore else set()
    unknown = (selected | ignored) - set(rule_ids())
    if unknown:
        raise ValueError("unknown rule id(s): %s"
                         % ", ".join(sorted(unknown)))
    return [rule for rule in all_rules()
            if rule.id in selected and rule.id not in ignored]


def main(argv: Optional[List[str]] = None) -> int:
    """Run the linter; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print("%-20s %s" % (rule.id, rule.summary))
        return 0

    try:
        rules = _pick_rules(args.select, args.ignore)
    except ValueError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2

    roots = args.paths or [_default_root()]
    engine = LintEngine(rules)
    findings = []
    for root in roots:
        if not root.exists():
            print("error: no such path: %s" % root, file=sys.stderr)
            return 2
        if root.is_file():
            findings.extend(engine.lint_source(
                root.read_text(encoding="utf-8"), root.name))
        else:
            findings.extend(engine.lint_tree(root))

    if args.baseline is not None:
        if not args.baseline.exists():
            print("error: no such baseline: %s" % args.baseline,
                  file=sys.stderr)
            return 2
        try:
            findings = apply_baseline(findings,
                                      load_baseline(args.baseline))
        except ValueError as exc:
            print("error: %s" % exc, file=sys.stderr)
            return 2

    render = {"json": render_json,
              "github": render_github}.get(args.format, render_text)
    print(render(findings))
    return 1 if findings else 0
