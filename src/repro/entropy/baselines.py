"""Traditional uncertainty baselines semantic entropy is compared to.

E3 contrasts semantic entropy against: predictive (token) entropy, its
length-normalized form, lexical-similarity dispersion, and answer
length — the same baseline family as Kuhn et al.
"""

from __future__ import annotations

from typing import Sequence, Set

from ..errors import EntropyError
from ..slm.generator import Generation
from ..text.stemmer import stem
from ..text.stopwords import STOPWORDS
from ..text.tokenizer import words


def _check_nonempty(generations: Sequence[Generation]) -> None:
    if not generations:
        raise EntropyError("need at least one generation")


def predictive_entropy(generations: Sequence[Generation]) -> float:
    """Mean negative sequence log-probability across samples."""
    _check_nonempty(generations)
    return sum(-g.logprob for g in generations) / len(generations)


def length_normalized_entropy(generations: Sequence[Generation]) -> float:
    """Mean negative *per-token* log-probability across samples."""
    _check_nonempty(generations)
    return sum(-g.mean_logprob for g in generations) / len(generations)


def _token_set(text: str) -> Set[str]:
    return {
        stem(w) for w in words(text) if w not in STOPWORDS
    }


def lexical_dissimilarity(generations: Sequence[Generation]) -> float:
    """1 − mean pairwise Jaccard overlap of answer token sets.

    High when samples share little vocabulary — a cheap, meaning-blind
    proxy for divergence (it cannot tell paraphrases from conflicts).
    """
    _check_nonempty(generations)
    sets = [_token_set(g.text) for g in generations]
    n = len(sets)
    if n == 1:
        return 0.0
    total = 0.0
    pairs = 0
    for i in range(n):
        for j in range(i + 1, n):
            union = sets[i] | sets[j]
            if union:
                total += len(sets[i] & sets[j]) / len(union)
            else:
                total += 1.0
            pairs += 1
    return 1.0 - total / pairs


def mean_answer_length(generations: Sequence[Generation]) -> float:
    """Mean token length of the sampled answers (a null baseline)."""
    _check_nonempty(generations)
    return sum(len(words(g.text)) for g in generations) / len(generations)


BASELINES = {
    "predictive_entropy": predictive_entropy,
    "length_normalized_entropy": length_normalized_entropy,
    "lexical_dissimilarity": lexical_dissimilarity,
    "answer_length": mean_answer_length,
}


def all_baselines(generations: Sequence[Generation]) -> dict:
    """Every baseline score for one sample set."""
    return {
        name: fn(generations) for name, fn in BASELINES.items()
    }
