"""The Small Language Model facade.

:class:`SmallLanguageModel` bundles every SLM capability the paper's
architecture calls on — embedding, lightweight entity tagging, POS
tagging, grounded generation, sequence scoring and entailment — behind
one object with a shared cost meter and a single seed. Subsystems take
the facade, never the parts, so swapping in a real model later means
re-implementing one class.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

import numpy as np

from ..metering import TAGGING_CALLS, CostMeter, GLOBAL_METER
from ..obs import span
from ..text.ner import Entity, EntityRecognizer, Gazetteer
from ..text.pos import TaggedToken, tag as pos_tag
from .embeddings import EmbeddingModel
from .entailment import EntailmentJudge
from .generator import AnswerGenerator, Generation
from .ngram import NgramLanguageModel


@dataclass
class SLMConfig:
    """Construction-time knobs of the simulated SLM.

    embedding_dim:
        Encoder output width (small by design — the paper targets
        sub-billion-parameter models).
    entity_dropout:
        Probability of *missing* a true entity while tagging; simulates
        the reduced recall of a small tagger and is swept in ablations.
    hallucination_bias:
        Extra fabrication probability for the generator (see E3).
    seed:
        Seed for all stochastic behaviour of this model instance.
    """

    embedding_dim: int = 128
    entity_dropout: float = 0.0
    hallucination_bias: float = 0.0
    seed: int = 0

    def __post_init__(self):
        if not 0.0 <= self.entity_dropout < 1.0:
            raise ValueError("entity_dropout must be in [0, 1)")


class SmallLanguageModel:
    """Facade over the simulated SLM's capabilities.

    Parameters
    ----------
    config:
        Optional :class:`SLMConfig`.
    gazetteer:
        Known entity names (usually harvested from the structured side
        of the data lake) used by the tagging head.
    meter:
        Shared :class:`CostMeter`; defaults to the process-global one.
    """

    def __init__(self, config: Optional[SLMConfig] = None,
                 gazetteer: Optional[Gazetteer] = None,
                 meter: Optional[CostMeter] = None):
        self.config = config or SLMConfig()
        self.meter = meter if meter is not None else GLOBAL_METER
        self._rng = random.Random(self.config.seed)
        self.embedder = EmbeddingModel(
            dim=self.config.embedding_dim, meter=self.meter
        )
        self._recognizer = EntityRecognizer(gazetteer)
        self.generator = AnswerGenerator(
            seed=self.config.seed,
            hallucination_bias=self.config.hallucination_bias,
            meter=self.meter,
        )
        self.judge = EntailmentJudge(meter=self.meter)
        self.lm = NgramLanguageModel(order=3)
        self._lm_fitted = False

    # ------------------------------------------------------------------
    # Encoder
    # ------------------------------------------------------------------
    def embed(self, text: str) -> np.ndarray:
        """Embed one text (charges ``embedding_calls``)."""
        with span("slm.embed"):
            return self.embedder.embed(text)

    def embed_batch(self, texts: Sequence[str]) -> np.ndarray:
        """Embed many texts into an (n, dim) matrix."""
        with span("slm.embed_batch", n_texts=len(texts)):
            return self.embedder.embed_batch(texts)

    def similarity(self, a: str, b: str) -> float:
        """Cosine similarity between two texts."""
        return self.embedder.similarity(a, b)

    # ------------------------------------------------------------------
    # Tagging heads
    # ------------------------------------------------------------------
    def add_gazetteer(self, etype: str, names: Iterable[str]) -> None:
        """Teach the tagging head new entity surface forms."""
        self._recognizer.add_gazetteer(etype, names)

    def gazetteer_entries(self) -> dict:
        """type → surface-form list of the tagging head's gazetteer."""
        return {
            etype: list(names)
            for etype, names in self._recognizer.gazetteer.entries.items()
        }

    def tag_entities(self, text: str) -> List[Entity]:
        """Named-entity tag *text*, with configured recall dropout."""
        with span("slm.tag") as sp:
            self.meter.charge(TAGGING_CALLS)
            entities = self._recognizer.recognize(text)
            if self.config.entity_dropout > 0.0:
                entities = [
                    e for e in entities
                    if self._rng.random() >= self.config.entity_dropout
                ]
            sp.set("n_entities", len(entities))
            return entities

    def tag_pos(self, text: str) -> List[TaggedToken]:
        """Part-of-speech tag *text*."""
        self.meter.charge(TAGGING_CALLS)
        return pos_tag(text)

    # ------------------------------------------------------------------
    # Language modeling / generation
    # ------------------------------------------------------------------
    def fit_language_model(self, sentences: Iterable[Sequence[str]]) -> None:
        """Train the internal n-gram LM for scoring/perplexity."""
        self.lm.fit(sentences)
        self._lm_fitted = True

    def perplexity(self, tokens: Sequence[str]) -> float:
        """Perplexity under the internal LM (requires fitting first)."""
        if not self._lm_fitted:
            raise RuntimeError("call fit_language_model() first")
        return self.lm.perplexity(tokens)

    def generate(self, question: str, contexts: Sequence[str],
                 temperature: float = 0.7) -> Generation:
        """One grounded answer sample."""
        with span("slm.generate", n_context=len(contexts)):
            return self.generator.generate(question, contexts, temperature)

    def sample_answers(self, question: str, contexts: Sequence[str],
                       n_samples: int = 8, temperature: float = 0.9,
                       seed: Optional[int] = None) -> List[Generation]:
        """The multi-sample protocol used for semantic entropy."""
        with span("slm.sample", n_samples=n_samples):
            return self.generator.sample_many(
                question, contexts, n_samples, temperature, seed
            )

    # ------------------------------------------------------------------
    # Entailment
    # ------------------------------------------------------------------
    def entails(self, premise: str, hypothesis: str) -> bool:
        """Directional entailment judgement."""
        with span("slm.entail"):
            return self.judge.entails(premise, hypothesis)

    def equivalent(self, a: str, b: str) -> bool:
        """Bidirectional entailment (semantic equivalence)."""
        return self.judge.equivalent(a, b)
