"""Speculative parallel plan execution with deterministic race-and-rescue.

:class:`SpeculativeExecutor` extends the sequential
:class:`~repro.qa.executor.PlanExecutor` with an **arm scheduler**: the
independent arms of a compiled :class:`~repro.qa.plan.FederatedPlan`
(structured ``SynthesizeSpec→ExecuteTable``, text
``RetrieveTopology→ExecuteText``, and the rescue arms) are treated as
concurrent speculative arms racing on the CostMeter work clock. The
schedule is **deterministic by construction**:

* arms run in fixed plan order, one guarded-call sequence per backend,
  so fault-injection replay stays byte-for-byte with the sequential
  executor;
* an arm's *cancellation predicate* is exactly the sequential
  executor's ``_due`` condition — a rescue/race arm is cancelled the
  moment an earlier arm's answer clears the confidence bar (a live,
  non-abstained candidate), which is precisely when the sequential
  executor would have skipped it;
* the join is the plan's own ``SelectBest`` stage with its fixed
  candidate order, keeping answers **byte-identical** to sequential
  execution.

What speculation *adds* is arm-level failure isolation: each arm runs
inside a :meth:`~repro.resilience.ResilienceManager.arm` scope carrying
a **rescue reserve** — a deterministic share of the remaining question
budget, enforced only after the arm witnesses a fault. A faulting arm's
retry/backoff spiral is cut off at the reserve (the "work-budget
charge" that cancels a loser) so a ``TransientError`` /
``CircuitOpenError`` / budget-exhaustion in one arm can no longer
starve the surviving arm, which completes cleanly and rescues the
question instead of degrading it.

**Fail-closed capability gating**: at startup :class:`SpeculationGate`
loads the machine-certified stage-interference table
(``analysis/parallel_safety.json``, written by ``repro analyze
--write``). A plan runs speculatively only when *every* cross-arm stage
pair is verdict ``safe-parallel``; a missing table, a missing pair, an
``unknown`` or ``conflicts`` verdict — or a corrupt entry of any shape
— reverts that plan to the sequential executor, never raises.
Same-engine arms are never overlapped regardless of the table: their
circuit-breaker state and per-backend fault-injection RNG stream are
order-sensitive, which is exactly why the table marks same-key
``backend-dispatch`` pairs as conflicts.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..obs import (
    METRIC_SPECULATION_CANCELLED, METRIC_SPECULATION_CANCELLED_WORK,
    METRIC_SPECULATION_RESCUED, METRIC_SPECULATION_WIN, incr, observe,
    span,
)
from .answer import ANSWER_SYSTEM_HYBRID, ANSWER_SYSTEM_RAG, Answer
from ..tenancy import TenantContext, check_tenancy, tenancy_errors
from .executor import (
    INLINE_KINDS, STAGE_HANDLERS, PlanExecutor, _RunState,
    governance_abstain,
)
from .federation import best_answer
from .plan import (
    ROUTE_HYBRID, STAGE_EXECUTE_TABLE, STAGE_EXECUTE_TEXT,
    STAGE_RETRIEVE_TOPOLOGY, STAGE_SYNTHESIZE_SPEC, WHEN_ALWAYS,
    WHEN_ROUTE, FederatedPlan,
)

#: The one verdict that certifies a stage pair for overlap. Kept as a
#: local literal (not imported from :mod:`repro.analysis`) so the QA
#: layer never depends on the analysis layer: the gate consumes the
#: *committed table file*, not the analyzer.
SAFE_PARALLEL = "safe-parallel"

#: Route decisions graded below this confidence race their rescue arms
#: eagerly as hedges (see ``RouteDecision.confidence``).
RACE_CONFIDENCE_BAR = 0.7

#: Repo-relative location of the committed capability table.
TABLE_RELPATH = "analysis/parallel_safety.json"


def default_table_path() -> pathlib.Path:
    """The committed capability table's default location.

    The table lives at the repository root (``analysis/
    parallel_safety.json``), three levels above this package; falls
    back to a cwd-relative path when the package is installed
    elsewhere. Mirrors the ``repro analyze`` CLI's resolution.
    """
    repo = pathlib.Path(__file__).resolve().parents[3]
    candidate = repo / TABLE_RELPATH
    if candidate.parent.exists():
        return candidate
    return pathlib.Path(TABLE_RELPATH)


@dataclass(frozen=True)
class PlanArm:
    """One independent executable arm of a federated plan.

    ``head_id`` names the execute stage that drives the arm's single
    guarded dispatch (producers run jointly with it); ``kinds`` lists
    the stage kinds the arm covers, in order — the units the capability
    table certifies.
    """

    arm_id: str
    engine: str
    kinds: Tuple[str, ...]
    head_id: str
    when: str


@dataclass(frozen=True)
class GateDecision:
    """The gate's per-plan clearance: speculate, race, or fail closed.

    ``pair_verdicts`` carries every cross-arm stage-pair verdict the
    decision consulted (``--explain-plan`` renders them); ``reasons``
    is non-empty exactly when the plan fails closed to sequential.
    """

    speculative: bool
    raced: bool
    reasons: Tuple[str, ...]
    pair_verdicts: Tuple[Tuple[str, str], ...]
    arms: Tuple["PlanArm", ...]


def extract_arms(plan: FederatedPlan) -> Tuple[PlanArm, ...]:
    """The plan's executable arms, in plan (= scheduling) order.

    Each execute stage anchors one arm together with the producer it
    depends on. Arm ids are derived from the engine: the first arm per
    engine is the primary (``structured``/``text``), later ones are
    rescues (``structured-rescue``) — same-engine arms are serialized
    by the scheduler, never overlapped.
    """
    producer_of = {
        STAGE_EXECUTE_TABLE: STAGE_SYNTHESIZE_SPEC,
        STAGE_EXECUTE_TEXT: STAGE_RETRIEVE_TOPOLOGY,
    }
    by_id = {stage.id: stage for stage in plan.stages}
    used: Dict[str, int] = {}
    arms: List[PlanArm] = []
    for stage in plan.stages:
        wanted = producer_of.get(stage.kind)
        if wanted is None:
            continue
        kinds: List[str] = []
        for dep in stage.depends_on:
            producer = by_id.get(dep)
            if producer is not None and producer.kind == wanted:
                kinds.append(producer.kind)
        kinds.append(stage.kind)
        n_seen = used.get(stage.engine, 0)
        used[stage.engine] = n_seen + 1
        if n_seen == 0:
            arm_id = stage.engine
        elif n_seen == 1:
            arm_id = "%s-rescue" % stage.engine
        else:
            arm_id = "%s-rescue%d" % (stage.engine, n_seen)
        arms.append(PlanArm(
            arm_id=arm_id, engine=stage.engine, kinds=tuple(kinds),
            head_id=stage.id, when=stage.when,
        ))
    return tuple(arms)


class SpeculationGate:
    """Fail-closed clearance against the committed capability table.

    Constructed once at pipeline startup from
    ``analysis/parallel_safety.json``. Any defect — missing file,
    unparsable JSON, missing pair, malformed entry, or a verdict other
    than ``safe-parallel`` — denies speculation for the affected plan
    and the executor falls back to sequential execution. The gate never
    raises.
    """

    def __init__(self, pairs: Optional[Dict[str, object]] = None,
                 reason: Optional[str] = None):
        self._pairs = pairs
        self._reason = reason

    @classmethod
    def disabled(cls, reason: str) -> "SpeculationGate":
        """A gate that denies every plan, carrying *reason*."""
        return cls(None, reason)

    @classmethod
    def load(cls, path: Optional[pathlib.Path] = None) -> "SpeculationGate":
        """Load the capability table; fail closed on any defect."""
        table_path = pathlib.Path(path) if path is not None \
            else default_table_path()
        try:
            raw = table_path.read_text(encoding="utf-8")
        except OSError:
            return cls.disabled(
                "capability table %s is missing" % table_path)
        try:
            data = json.loads(raw)
        except ValueError:
            return cls.disabled(
                "capability table %s is unreadable" % table_path)
        pairs = data.get("pairs") if isinstance(data, dict) else None
        if not isinstance(pairs, dict):
            return cls.disabled(
                "capability table %s has no pair verdicts" % table_path)
        return cls(pairs)

    @property
    def enabled(self) -> bool:
        """Whether a table loaded at all (plans may still fail closed)."""
        return self._pairs is not None

    @property
    def reason(self) -> Optional[str]:
        """Why the gate is globally disabled (None when a table loaded)."""
        return self._reason

    def verdict(self, kind_a: str, kind_b: str) -> str:
        """The committed verdict for an unordered stage-kind pair.

        Returns ``absent`` for a missing pair and ``malformed`` for an
        entry that is not a dict with a string verdict — both of which
        the clearance treats as "not safe", failing closed.
        """
        if self._pairs is None:
            return "absent"
        left, right = sorted((kind_a, kind_b))
        entry = self._pairs.get("%s|%s" % (left, right))
        if entry is None:
            return "absent"
        if not isinstance(entry, dict) or not isinstance(
            entry.get("verdict"), str
        ):
            return "malformed"
        return entry["verdict"]

    def clearance(self, plan: FederatedPlan,
                  arms: Tuple[PlanArm, ...]) -> GateDecision:
        """Decide whether *plan*'s arms may overlap.

        Only arm pairs on **different** engines are candidates for
        overlap (same-engine arms are always serialized); every stage
        kind of one against every stage kind of the other must read
        ``safe-parallel`` in the table.
        """
        if self._reason is not None:
            return GateDecision(False, False, (self._reason,), (),
                                arms)
        overlapping = [
            (a, b)
            for i, a in enumerate(arms) for b in arms[i + 1:]
            if a.engine != b.engine
        ]
        if len(arms) < 2 or not overlapping:
            return GateDecision(
                False, False,
                ("plan has fewer than two independent arms",), (), arms)
        verdicts: Dict[str, str] = {}
        for arm_a, arm_b in overlapping:
            for kind_a in arm_a.kinds:
                for kind_b in arm_b.kinds:
                    left, right = sorted((kind_a, kind_b))
                    key = "%s|%s" % (left, right)
                    if key not in verdicts:
                        verdicts[key] = self.verdict(kind_a, kind_b)
        pair_verdicts = tuple(sorted(verdicts.items()))
        reasons = tuple(
            "stage pair %s is %s" % (key, verdict)
            for key, verdict in pair_verdicts
            if verdict != SAFE_PARALLEL
        )
        speculative = not reasons
        raced = speculative and (
            plan.route == ROUTE_HYBRID
            or _route_confidence(plan) < RACE_CONFIDENCE_BAR
        )
        return GateDecision(speculative, raced, reasons, pair_verdicts,
                            arms)


def _route_confidence(plan: FederatedPlan) -> float:
    """The compiled route confidence (1.0 when absent or malformed)."""
    raw = plan.meta("route_confidence", "1.0")
    try:
        return float(raw)
    except ValueError:
        return 1.0


class SpeculativeExecutor(PlanExecutor):
    """The arm-scheduling executor behind speculative execution.

    Construction mirrors :class:`~repro.qa.executor.PlanExecutor`, plus
    the :class:`SpeculationGate` consulted per plan. Plans the gate
    denies run through the inherited sequential interpreter unchanged —
    the fail-closed path is literally ``super().execute``.
    """

    def __init__(self, router, table_qa, text_qa, resilience, slm,
                 gate: Optional[SpeculationGate] = None):
        super().__init__(router, table_qa, text_qa=text_qa,
                         resilience=resilience, slm=slm)
        self._gate = gate if gate is not None else SpeculationGate.load()

    @property
    def gate(self) -> SpeculationGate:
        """The capability gate this executor consults per plan."""
        return self._gate

    def execute(self, plan: FederatedPlan,
                tenant: Optional[TenantContext] = None) -> Answer:
        """Run *plan* speculatively when the gate clears it.

        The tenant context threads through both paths identically: the
        sequential fallback is ``super().execute(plan, tenant)`` and
        the speculative scheduler runs its own fail-closed
        ``check_tenancy`` gate before any arm dispatches.
        """
        arms = extract_arms(plan)
        decision = self._gate.clearance(plan, arms)
        if not decision.speculative:
            incr("speculation.sequential")
            return super().execute(plan, tenant=tenant)
        incr("speculation.plans")
        return self._execute_speculative(plan, decision, tenant=tenant)

    def explain_speculation(self, plan: FederatedPlan) -> List[str]:
        """Human-readable gate clearance for ``--explain-plan``."""
        arms = extract_arms(plan)
        decision = self._gate.clearance(plan, arms)
        if decision.speculative:
            mode = "race" if decision.raced else "parallel arms"
            lines = ["speculation: on (%s, %d arms)"
                     % (mode, len(arms))]
        else:
            lines = ["speculation: off — fail closed to sequential (%s)"
                     % "; ".join(decision.reasons)]
        for key, verdict in decision.pair_verdicts:
            lines.append("  pair %-40s %s" % (key, verdict))
        for arm in arms:
            if decision.speculative:
                tag = "races" if decision.raced else "speculates"
            else:
                tag = "sequential"
            extra = "" if arm.when in (WHEN_ALWAYS, WHEN_ROUTE) \
                else "  when=%s" % arm.when
            lines.append("  arm %-18s %-44s %s%s" % (
                arm.arm_id, "->".join(arm.kinds), tag, extra))
        return lines

    # ------------------------------------------------------------------
    # The deterministic arm scheduler
    # ------------------------------------------------------------------
    def _execute_speculative(self, plan: FederatedPlan,
                             decision: GateDecision,
                             tenant: Optional[TenantContext] = None
                             ) -> Answer:
        """Interpret *plan* with raced arms and per-arm isolation.

        Arms dispatch in fixed plan order; an arm whose cancellation
        predicate (the sequential ``_due`` condition) is already false
        at its slot is the race's loser and is cancelled without
        dispatching. Join stages (``SelectBest``/``Ground``) run
        exactly as in the sequential interpreter. Governance mirrors
        the sequential path exactly: the same ``check_tenancy`` gate,
        the same tenant-scoped ``plan_key``.
        """
        manager = self._resilience()
        if tenant is not None:
            findings = tenancy_errors(check_tenancy(plan, tenant))
            if findings:
                return governance_abstain(tenant, findings)
        plan_key = plan.signature()
        if tenant is not None:
            plan_key = tenant.cache_key(plan_key)
        state = _RunState(question=plan.question,
                          plan_key=plan_key, tenant=tenant)
        by_head = {arm.head_id: arm for arm in decision.arms}
        pending = list(decision.arms)
        started: Dict[str, int] = {}
        cancelled: List[Tuple[str, int]] = []
        failed_arms: List[str] = []
        final_is_bare = False
        answer: Optional[Answer] = None
        with span("qa.speculate") as sp:
            sp.set("arms", ",".join(a.arm_id for a in decision.arms))
            sp.set("raced", decision.raced)
            for stage in plan.stages:
                if stage.kind in INLINE_KINDS:
                    continue
                arm = by_head.get(stage.id)
                if arm is None:
                    if not self._due(stage, state.candidates,
                                     state.failed_engines):
                        continue
                    handler_name = STAGE_HANDLERS.get(stage.kind)
                    if handler_name is None:
                        continue
                    getattr(self, handler_name)(manager, state)
                    if state.final is not None:
                        answer = state.final
                        final_is_bare = True
                        break
                    continue
                pending.remove(arm)
                if not self._due(stage, state.candidates,
                                 state.failed_engines):
                    # The race already settled: an earlier arm's answer
                    # cleared the confidence bar, so this arm loses and
                    # is cancelled before spending any work.
                    cancelled.append((arm.arm_id, 0))
                    continue
                cap = self._arm_cap(manager, len(pending) + 1)
                with manager.arm(arm.arm_id, cap=cap) as arm_scope:
                    getattr(self, STAGE_HANDLERS[stage.kind])(
                        manager, state)
                started[arm.arm_id] = arm_scope.spent_work
                if arm_scope.fatal:
                    failed_arms.append(arm.arm_id)
                if arm_scope.reserve_cut:
                    # The loser was cancelled mid-flight by its
                    # work-budget charge (the rescue reserve).
                    cancelled.append((arm.arm_id,
                                      arm_scope.spent_work))
            if answer is None:
                answer = state.answer
                if answer is None:
                    if not state.candidates and not state.failed_engines:
                        answer = Answer.abstain(
                            ANSWER_SYSTEM_HYBRID, "no engine available"
                        )
                        final_is_bare = True
                    else:
                        answer = best_answer(state.candidates)
            if not final_is_bare:
                answer.metadata.setdefault("route", plan.route)
                if state.failed_engines:
                    answer.metadata["degraded"] = True
                    winner = ("text"
                              if answer.system == ANSWER_SYSTEM_RAG
                              else "structured")
                    if (not answer.abstained
                            and winner not in state.failed_engines):
                        answer.metadata["fallback_engine"] = winner
            self._record_outcome(sp, answer, started, cancelled,
                                 failed_arms)
        return answer

    def _arm_cap(self, manager, n_pending: int) -> Optional[int]:
        """This arm's rescue reserve: its share of the remaining budget.

        ``None`` (no ceiling) when the question is unbudgeted or this
        is the last arm — the last arm may spend everything left,
        exactly like sequential execution.
        """
        limit = manager.config.budget
        if limit is None or n_pending <= 1:
            return None
        remaining = max(0, limit - manager.spent())
        return remaining // n_pending

    @staticmethod
    def _record_outcome(sp, answer: Answer, started: Dict[str, int],
                        cancelled: List[Tuple[str, int]],
                        failed_arms: List[str]) -> None:
        """Speculation win/loss/rescue metrics + span attributes."""
        for _, spent in cancelled:
            incr(METRIC_SPECULATION_CANCELLED)
            observe(METRIC_SPECULATION_CANCELLED_WORK, spent)
        raced_arms = len(started) + len(cancelled)
        winner = "-"
        if not answer.abstained and raced_arms >= 1:
            incr(METRIC_SPECULATION_WIN)
            winner = ("text" if answer.system == ANSWER_SYSTEM_RAG
                      else "structured")
        if failed_arms and not answer.abstained:
            incr(METRIC_SPECULATION_RESCUED)
        sp.set("winner", winner)
        sp.set("cancelled", len(cancelled))
        sp.set("failed_arms", ",".join(failed_arms) or "-")
        sp.set("cancelled_work", sum(s for _, s in cancelled))
