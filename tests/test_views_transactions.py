"""Tests for SQL views and snapshot transactions."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ExecutionError, PlanError, StorageError
from repro.metering import CostMeter
from repro.storage.relational import Database


@pytest.fixture
def db():
    database = Database(meter=CostMeter())
    database.execute(
        "CREATE TABLE sales (sid INT PRIMARY KEY, region TEXT, "
        "amount FLOAT)"
    )
    database.execute(
        "INSERT INTO sales VALUES (1, 'west', 100.0), "
        "(2, 'east', 200.0), (3, 'west', 50.0)"
    )
    return database


class TestViews:
    def test_create_and_query(self, db):
        db.execute(
            "CREATE VIEW west AS SELECT sid, amount FROM sales "
            "WHERE region = 'west'"
        )
        rs = db.execute("SELECT SUM(amount) FROM west")
        assert rs.scalar() == pytest.approx(150.0)

    def test_view_reflects_base_changes(self, db):
        db.execute(
            "CREATE VIEW west AS SELECT amount FROM sales "
            "WHERE region = 'west'"
        )
        db.execute("INSERT INTO sales VALUES (4, 'west', 25.0)")
        assert db.execute(
            "SELECT COUNT(*) FROM west"
        ).scalar() == 3

    def test_aggregate_view(self, db):
        db.execute(
            "CREATE VIEW totals AS SELECT region, SUM(amount) AS total "
            "FROM sales GROUP BY region"
        )
        rs = db.execute(
            "SELECT region FROM totals WHERE total > 120 ORDER BY region"
        )
        assert rs.column("region") == ["east", "west"]

    def test_view_on_view(self, db):
        db.execute("CREATE VIEW a AS SELECT region, amount FROM sales")
        db.execute(
            "CREATE VIEW b AS SELECT amount FROM a WHERE region = 'east'"
        )
        assert db.execute("SELECT SUM(amount) FROM b").scalar() == 200.0

    def test_view_join_with_table(self, db):
        db.execute("CREATE TABLE regions (region TEXT, manager TEXT)")
        db.execute(
            "INSERT INTO regions VALUES ('west', 'ann'), ('east', 'bo')"
        )
        db.execute(
            "CREATE VIEW totals AS SELECT region, SUM(amount) AS total "
            "FROM sales GROUP BY region"
        )
        rs = db.execute(
            "SELECT r.manager, t.total FROM regions r "
            "JOIN totals t ON r.region = t.region ORDER BY r.manager"
        )
        assert rs.rows == [("ann", 150.0), ("bo", 200.0)]

    def test_name_conflicts(self, db):
        db.execute("CREATE VIEW v AS SELECT sid FROM sales")
        with pytest.raises(StorageError):
            db.execute("CREATE VIEW v AS SELECT sid FROM sales")
        with pytest.raises(StorageError):
            db.execute("CREATE TABLE v (x INT)")
        with pytest.raises(StorageError):
            db.execute("CREATE VIEW sales AS SELECT sid FROM sales")

    def test_invalid_view_rejected_eagerly(self, db):
        with pytest.raises(PlanError):
            db.execute("CREATE VIEW bad AS SELECT nope FROM sales")

    def test_drop_view(self, db):
        db.execute("CREATE VIEW v AS SELECT sid FROM sales")
        db.execute("DROP VIEW v")
        with pytest.raises(ExecutionError):
            db.execute("SELECT * FROM v")
        with pytest.raises(StorageError):
            db.execute("DROP VIEW v")

    def test_view_names(self, db):
        db.execute("CREATE VIEW v AS SELECT sid FROM sales")
        assert db.view_names() == ["v"]


class TestTransactions:
    def test_rollback_restores_rows(self, db):
        db.execute("BEGIN")
        db.execute("DELETE FROM sales")
        assert db.execute("SELECT COUNT(*) FROM sales").scalar() == 0
        db.execute("ROLLBACK")
        assert db.execute("SELECT COUNT(*) FROM sales").scalar() == 3

    def test_commit_keeps_changes(self, db):
        db.execute("BEGIN TRANSACTION")
        db.execute("INSERT INTO sales VALUES (9, 'north', 10.0)")
        db.execute("COMMIT")
        assert db.execute("SELECT COUNT(*) FROM sales").scalar() == 4
        assert not db.in_transaction

    def test_rollback_restores_updates(self, db):
        db.execute("BEGIN")
        db.execute("UPDATE sales SET amount = 0")
        db.execute("ROLLBACK")
        assert db.execute(
            "SELECT SUM(amount) FROM sales"
        ).scalar() == pytest.approx(350.0)

    def test_rollback_restores_indexes(self, db):
        db.execute("BEGIN")
        db.execute("DELETE FROM sales WHERE sid = 1")
        db.execute("ROLLBACK")
        # PK index must know sid=1 again (insert duplicate fails).
        with pytest.raises(StorageError):
            db.execute("INSERT INTO sales VALUES (1, 'x', 1.0)")

    def test_rollback_restores_dropped_table(self, db):
        db.execute("BEGIN")
        db.execute("DROP TABLE sales")
        db.execute("ROLLBACK")
        assert db.has_table("sales")

    def test_rollback_restores_views(self, db):
        db.execute("CREATE VIEW v AS SELECT sid FROM sales")
        db.execute("BEGIN")
        db.execute("DROP VIEW v")
        db.execute("ROLLBACK")
        assert db.view_names() == ["v"]

    def test_nested_begin_rejected(self, db):
        db.execute("BEGIN")
        with pytest.raises(StorageError):
            db.execute("BEGIN")
        db.execute("ROLLBACK")

    def test_stray_commit_rejected(self, db):
        with pytest.raises(StorageError):
            db.execute("COMMIT")
        with pytest.raises(StorageError):
            db.execute("ROLLBACK")

    @given(ops=st.lists(st.sampled_from([
        "INSERT INTO sales VALUES (100, 'z', 1.0)",
        "DELETE FROM sales WHERE region = 'west'",
        "UPDATE sales SET amount = amount + 1",
        "UPDATE sales SET region = 'north' WHERE sid = 2",
    ]), min_size=1, max_size=5, unique=True))
    @settings(max_examples=20, deadline=None)
    def test_rollback_is_always_identity(self, ops):
        database = Database(meter=CostMeter())
        database.execute(
            "CREATE TABLE sales (sid INT PRIMARY KEY, region TEXT, "
            "amount FLOAT)"
        )
        database.execute(
            "INSERT INTO sales VALUES (1, 'west', 100.0), "
            "(2, 'east', 200.0)"
        )
        before = database.table("sales").to_dicts()
        database.execute("BEGIN")
        for op in ops:
            try:
                database.execute(op)
            except StorageError:
                pass
        database.execute("ROLLBACK")
        assert database.table("sales").to_dicts() == before
