"""Deterministic entity-key shard routing.

The router maps an entity-key value to the shard that owns every row,
document or chunk filed under that value. Assignment is a seeded,
byte-stable hash of the value's canonical form — two processes with the
same seed and shard count always agree, so the shard map can be
committed alongside the catalog and replayed in CI.

String keys are canonicalized case-insensitively: synthesized SQL
compares entity names through ``LOWER(column) = 'literal'``, and the
router must send the lowered literal to the same shard as the raw
stored value.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict

from ..errors import ReproError


class ShardRouter:
    """Seeded, byte-stable value → shard assignment."""

    def __init__(self, n_shards: int, seed: int = 0):
        if n_shards < 1:
            raise ReproError("shard count must be >= 1, got %d" % n_shards)
        self.n_shards = n_shards
        self.seed = seed
        self._prefix = ("shard-route:%d:" % seed).encode("utf-8")

    @staticmethod
    def canonical(value: Any) -> bytes:
        """The byte-stable canonical form of one key value.

        Strings fold to lowercase (entity names are matched
        case-insensitively across the repo); every other scalar is
        rendered with its type tag so ``1`` and ``"1"`` stay distinct.
        """
        if isinstance(value, str):
            return ("s:" + value.lower()).encode("utf-8")
        if isinstance(value, bool):
            return b"b:1" if value else b"b:0"
        if isinstance(value, float) and value.is_integer():
            # 2 and 2.0 compare equal in SQL; route them together.
            return ("i:%d" % int(value)).encode("utf-8")
        return ("%s:%r" % (type(value).__name__[0], value)).encode("utf-8")

    def shard_of(self, value: Any) -> int:
        """The shard index owning key *value* (stable across runs)."""
        digest = hashlib.sha256(self._prefix + self.canonical(value))
        return int.from_bytes(digest.digest()[:8], "big") % self.n_shards

    def describe(self) -> Dict[str, Any]:
        """JSON-ready routing parameters (committed beside the catalog)."""
        return {"n_shards": self.n_shards, "seed": self.seed,
                "algorithm": "sha256(seed || canonical(value)) mod n"}
