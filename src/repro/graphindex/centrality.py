"""Centrality measures for topology-enhanced retrieval.

The paper's Section III.B prioritizes nodes by "centrality and
connectivity". Degree centrality and PageRank are computed natively
(power iteration) so the core library has no hard networkx dependency.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional

from ..errors import GraphIndexError
from .hetgraph import HeterogeneousGraph


def degree_centrality(graph: HeterogeneousGraph) -> Dict[str, float]:
    """Degree / (n - 1) per node (0 for a singleton graph)."""
    n = graph.n_nodes
    if n <= 1:
        return {node.node_id: 0.0 for node in graph.nodes()}
    return {
        node.node_id: graph.degree(node.node_id) / (n - 1)
        for node in graph.nodes()
    }


def pagerank(graph: HeterogeneousGraph, damping: float = 0.85,
             max_iterations: int = 60, tolerance: float = 1e-8,
             weight_by_edge: bool = True) -> Dict[str, float]:
    """Weighted PageRank via power iteration.

    Isolated nodes keep the teleport mass. Deterministic given the
    graph (iteration order is id-sorted).
    """
    if not 0.0 < damping < 1.0:
        raise GraphIndexError("damping must be in (0, 1)")
    nodes = [n.node_id for n in graph.nodes()]
    n = len(nodes)
    if n == 0:
        return {}
    rank = {node_id: 1.0 / n for node_id in nodes}
    out_weight: Dict[str, float] = {}
    for node_id in nodes:
        neighbors = graph.neighbors(node_id)
        if weight_by_edge:
            out_weight[node_id] = sum(e.weight for e, _ in neighbors)
        else:
            out_weight[node_id] = float(len(neighbors))
    teleport = (1.0 - damping) / n
    for _ in range(max_iterations):
        new_rank: Dict[str, float] = {node_id: teleport for node_id in nodes}
        dangling_mass = 0.0
        for node_id in nodes:
            total_out = out_weight[node_id]
            if total_out == 0.0:
                dangling_mass += rank[node_id]
                continue
            share = damping * rank[node_id] / total_out
            for edge, neighbor in graph.neighbors(node_id):
                w = edge.weight if weight_by_edge else 1.0
                new_rank[neighbor.node_id] += share * w
        if dangling_mass > 0.0:
            spread = damping * dangling_mass / n
            for node_id in nodes:
                new_rank[node_id] += spread
        delta = sum(abs(new_rank[v] - rank[v]) for v in nodes)
        rank = new_rank
        if delta < tolerance:
            break
    return rank


def harmonic_centrality(graph: HeterogeneousGraph,
                        max_depth: int = 4,
                        nodes: Optional[Iterable[str]] = None) -> Dict[str, float]:
    """Truncated harmonic centrality: sum of 1/d over BFS within depth.

    A cheap connectivity prior — nodes reaching many others in few hops
    score high; computed only for *nodes* when given (retrieval scores
    candidates lazily).
    """
    targets = list(nodes) if nodes is not None else [
        n.node_id for n in graph.nodes()
    ]
    out: Dict[str, float] = {}
    for node_id in targets:
        if not graph.has_node(node_id):
            raise GraphIndexError("no node %r" % node_id)
        depths = graph.bfs([node_id], max_depth=max_depth)
        out[node_id] = sum(
            1.0 / d for d in depths.values() if d > 0
        )
    return out


def normalize_scores(scores: Dict[str, float]) -> Dict[str, float]:
    """Scale a score dict to [0, 1] (constant dicts map to 0)."""
    if not scores:
        return {}
    low = min(scores.values())
    high = max(scores.values())
    if math.isclose(high, low):
        return {k: 0.0 for k in scores}
    return {k: (v - low) / (high - low) for k, v in scores.items()}
