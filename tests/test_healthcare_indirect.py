"""Tests: healthcare indirect retrieval through the drug catalog."""

import pytest

from repro.bench import HealthSpec, generate_healthcare_lake
from repro.graphindex import GraphIndexBuilder
from repro.metering import CostMeter
from repro.retrieval import (
    TopologyRetriever, aggregate_rankings, evaluate_ranking,
)
from repro.slm import SLMConfig, SmallLanguageModel
from repro.storage.relational import Database
from repro.text.chunker import Chunker, ChunkerConfig
from repro.text.ner import Gazetteer


@pytest.fixture(scope="module")
def setting():
    lake = generate_healthcare_lake(HealthSpec(n_drugs=8, seed=55))
    chunks = Chunker(
        ChunkerConfig(max_tokens=48, overlap_sentences=0)
    ).chunk_corpus(lake.note_texts)
    db = Database(meter=CostMeter())
    for statement in lake.sql_statements():
        db.execute(statement)
    meter = CostMeter()
    gazetteer = Gazetteer()
    gazetteer.add("VALUE", lake.drug_names())
    gazetteer.add("VALUE", sorted({d["condition"] for d in lake.drugs}))
    slm = SmallLanguageModel(SLMConfig(seed=0), gazetteer=gazetteer,
                             meter=meter)
    builder = GraphIndexBuilder(slm, meter=meter)
    builder.add_chunks(chunks)
    builder.add_table(db.table("drugs"),
                      entity_columns=["name_key", "condition"])
    retriever = TopologyRetriever(builder.build(), slm, meter=meter)
    retriever.index(chunks)
    return lake, retriever


class TestHealthcareIndirect:
    def test_queries_exist_with_gold(self, setting):
        lake, _ = setting
        queries = lake.indirect_retrieval_queries()
        assert queries
        for query in queries:
            assert query.query_class == "indirect"
            assert query.relevant_docs

    def test_condition_never_in_notes(self, setting):
        lake, _ = setting
        texts = dict(lake.note_texts)
        for query in lake.indirect_retrieval_queries():
            condition = query.query.split(" for ")[1].split(
                " treatments")[0]
            for doc_id in query.relevant_docs:
                assert condition not in texts[doc_id].lower()

    def test_graph_reaches_indirect_evidence(self, setting):
        lake, retriever = setting
        per_query = []
        for query in lake.indirect_retrieval_queries():
            hits = retriever.retrieve(query.query, k=8)
            ranked = []
            for hit in hits:
                if hit.chunk.doc_id not in ranked:
                    ranked.append(hit.chunk.doc_id)
            per_query.append(
                evaluate_ranking(ranked, query.relevant_docs, ks=(5,))
            )
        agg = aggregate_rankings(per_query)
        assert agg["recall@5"] >= 0.3
        assert agg["mrr"] >= 0.5
