"""E2 — Multi-Entity QA: hybrid pipeline vs Text-to-SQL vs RAG.

Paper claims (Sections I, III.C): "Traditional Text-to-SQL engines fail
to parse the unstructured component, while LLM-based QA systems often
hallucinate plausible but ungrounded comparisons"; the hybrid pipeline
(Relational Table Generation + Semantic Operator Synthesis + TableQA)
handles complex Multi-Entity QA end to end.

Reproduced table: accuracy per question class per system, on both the
e-commerce and healthcare lakes. Expected shape: text2sql competitive
only on structured classes (abstaining elsewhere), RAG only on
single-fact unstructured questions, hybrid strong across all four
classes including cross-modal multi-entity.
"""

from __future__ import annotations

import pytest

from repro.bench import (
    HealthSpec, LakeSpec, generate_ecommerce_lake, generate_healthcare_lake,
    render_table, run_all_systems, run_qa_suite,
)
from repro.bench.runner import build_hybrid_system

from _common import emit

RESULTS = []


@pytest.fixture(scope="module")
def ecommerce_lake():
    return generate_ecommerce_lake(LakeSpec(n_products=10, seed=21))


@pytest.fixture(scope="module")
def healthcare_lake():
    return generate_healthcare_lake(HealthSpec(n_drugs=6, seed=21))


def run_domain(lake, domain, per_kind):
    pairs = lake.qa_pairs(per_kind=per_kind)
    for result in run_all_systems(lake, pairs, seed=0,
                                  include_rag_topology=True):
        row = {"domain": domain}
        row.update(result.row())
        row["gen_calls"] = result.cost.get("generation_calls", 0)
        RESULTS.append(row)


def test_e2_ecommerce(benchmark, ecommerce_lake):
    run_domain(ecommerce_lake, "ecommerce", per_kind=6)
    system, _pipeline = build_hybrid_system(ecommerce_lake)
    question = ecommerce_lake.qa_pairs(per_kind=1)[0].question
    benchmark(system.answer, question)


def test_e2_healthcare(benchmark, healthcare_lake):
    run_domain(healthcare_lake, "healthcare", per_kind=5)
    system, _pipeline = build_hybrid_system(healthcare_lake)
    question = healthcare_lake.qa_pairs(per_kind=1)[0].question
    benchmark(system.answer, question)


def test_e2_report(benchmark):
    benchmark(lambda: None)
    assert RESULTS, "E2 domain runs must execute first"
    emit("e2_multientity", render_table(
        RESULTS, title="E2 — Multi-Entity QA accuracy by system"
    ))
    ecom = {r["system"]: r for r in RESULTS if r["domain"] == "ecommerce"}
    hybrid, text2sql, rag = ecom["hybrid"], ecom["text2sql"], ecom["rag"]
    # Text-to-SQL fails the unstructured component (paper's claim).
    assert text2sql["unstructured_fact"] == 0.0
    assert text2sql["cross_modal_multi_entity"] == 0.0
    # RAG cannot do structured aggregation reliably.
    assert rag["structured_agg"] <= 0.4
    # Hybrid dominates overall and on cross-modal questions.
    assert hybrid["overall"] > text2sql["overall"]
    assert hybrid["overall"] > rag["overall"]
    assert hybrid["cross_modal_multi_entity"] >= 0.5
    # Two-entity comparisons (the paper's flagship example) only the
    # decomposing hybrid pipeline can verdict.
    if "comparison_multi_entity" in hybrid:
        assert hybrid["comparison_multi_entity"] >= 0.5
        assert text2sql.get("comparison_multi_entity", 0.0) == 0.0
        assert rag.get("comparison_multi_entity", 0.0) == 0.0
    # Attribution ablation: RAG with the paper's retriever but without
    # table generation still cannot do structured aggregation — the
    # architecture, not the retriever, carries the structured wins.
    rag_topo = ecom.get("rag_topology")
    if rag_topo is not None:
        assert rag_topo["structured_agg"] <= 0.4
        assert hybrid["overall"] > rag_topo["overall"]
