"""CSV import/export for relational tables.

Loads CSV text into typed tables (with header-driven schema inference)
and dumps result sets back out — the structured-file leg of the lake.
"""

from __future__ import annotations

import csv
import io
from typing import Iterable, Optional, Sequence

from ..errors import SchemaError, StorageError
from .relational.executor import ResultSet
from .relational.schema import Column, TableSchema
from .relational.table import Table
from .types import DataType, coerce


def infer_column_type(values: Iterable[str]) -> DataType:
    """Infer the tightest type that fits every non-empty string value."""
    saw_any = False
    could_be = {DataType.INT, DataType.FLOAT, DataType.BOOL, DataType.DATE}
    for raw in values:
        text = (raw or "").strip()
        if not text:
            continue
        saw_any = True
        for dtype in list(could_be):
            if dtype is DataType.BOOL:
                # Only word-like booleans count: "0"/"1" should stay INT.
                if text.lower() not in ("true", "false", "t", "f",
                                        "yes", "no"):
                    could_be.discard(dtype)
                continue
            try:
                coerce(text, dtype)
            except SchemaError:
                could_be.discard(dtype)
        if not could_be:
            return DataType.TEXT
    if not saw_any:
        return DataType.TEXT
    for dtype in (DataType.BOOL, DataType.INT, DataType.DATE, DataType.FLOAT):
        if dtype in could_be:
            return dtype
    return DataType.TEXT


def infer_schema(name: str, header: Sequence[str],
                 rows: Sequence[Sequence[str]]) -> TableSchema:
    """Build a :class:`TableSchema` from a header and sample string rows."""
    if not header:
        raise StorageError("CSV needs a header row")
    columns = []
    for i, col_name in enumerate(header):
        col_values = [row[i] if i < len(row) else "" for row in rows]
        columns.append(
            Column(_sanitize(col_name), infer_column_type(col_values))
        )
    return TableSchema(name, columns)


def _sanitize(name: str) -> str:
    cleaned = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name.strip().lower()
    )
    if not cleaned or cleaned[0].isdigit():
        cleaned = "c_" + cleaned
    return cleaned


def read_csv(name: str, text: str,
             schema: Optional[TableSchema] = None) -> Table:
    """Parse CSV *text* into a :class:`Table`.

    When *schema* is omitted the column types are inferred from the
    data. Empty cells load as NULL.
    """
    reader = csv.reader(io.StringIO(text))
    rows = list(reader)
    if not rows:
        raise StorageError("CSV input is empty")
    header, data = rows[0], rows[1:]
    if schema is None:
        schema = infer_schema(name, header, data)
    table = Table(schema)
    for raw in data:
        if len(raw) != len(header):
            raise StorageError(
                "CSV row has %d cells, header has %d" % (len(raw), len(header))
            )
        values = [cell.strip() if cell.strip() else None for cell in raw]
        table.insert(values, coerce=True)
    return table


def write_csv(result: ResultSet) -> str:
    """Serialize a :class:`ResultSet` to CSV text (NULL → empty cell)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(result.columns)
    for row in result.rows:
        writer.writerow(["" if v is None else v for v in row])
    return buffer.getvalue()


def table_to_csv(table: Table) -> str:
    """Serialize a whole table to CSV text."""
    return write_csv(
        ResultSet(table.schema.column_names(), table.rows())
    )
