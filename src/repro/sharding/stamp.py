"""Shard-aware generation stamps for the serving caches.

The serving layer tags each cache entry with the generation counters of
its dependency set and drops the entry when the tag no longer matches.
Unsharded tags are plain tuples over a fixed kind order; sharded answer
tags instead carry a *named* subset of counters — only the store kinds
and shard counters the answer actually depends on — so a write into one
shard invalidates only the entries that read that shard.

Comparison is intersection-keyed: two stamps agree when every counter
they *both* name has the same value. The cache stores a restricted
stamp (the entry's dependency closure) and compares it against a full
snapshot at lookup time, so the restriction decides sensitivity.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Mapping


class ShardStamp:
    """A named generation-counter snapshot with subset comparison."""

    def __init__(self, counts: Mapping[str, int]):
        self._counts: Dict[str, int] = dict(counts)

    @property
    def counts(self) -> Dict[str, int]:
        """The named counter values (a copy; for stats and tests)."""
        return dict(self._counts)

    def restrict(self, kinds: Iterable[str]) -> "ShardStamp":
        """A stamp naming only *kinds* (missing kinds are skipped)."""
        return ShardStamp({
            kind: self._counts[kind]
            for kind in kinds if kind in self._counts
        })

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, ShardStamp):
            theirs: Mapping[str, int] = other._counts
        elif isinstance(other, dict):
            theirs = other
        else:
            return NotImplemented
        shared = self._counts.keys() & theirs.keys()
        return all(self._counts[kind] == theirs[kind] for kind in shared)

    def __ne__(self, other: Any) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        # Subset equality is not hash-compatible; stamps are tags, not
        # keys. Hash on the kind set so dict use fails loudly in tests
        # rather than silently colliding.
        return hash(frozenset(self._counts))

    def __repr__(self) -> str:
        inner = ", ".join(
            "%s=%d" % (kind, self._counts[kind])
            for kind in sorted(self._counts)
        )
        return "ShardStamp(%s)" % inner
