"""Whole-program effect analysis: lock tests + unit coverage.

Three layers:

* **lock tests** — the committed capability table
  ``analysis/parallel_safety.json`` is byte-identical to what the
  current sources analyze to, regeneration is deterministic, and the
  hybrid route's two arms are certified ``safe-parallel`` (the
  precondition the parallel plan executor depends on);
* **unit tests** — the effect analyzer on small synthetic packages
  (attribute writes, fixpoint propagation, mutators, raises, opaque
  fallback) and ``judge_pair`` on crafted signatures;
* **CLI** — ``repro analyze`` exit codes, ``--write``/``--check``
  drift gating, and ``--baseline``.
"""

import functools
import json
import pathlib
import textwrap

import pytest

from repro.analysis import (
    HYBRID_ARM_PAIRS, VERDICT_CONFLICTS, VERDICT_SAFE, VERDICT_UNKNOWN,
    Effect, EffectAnalyzer, FunctionEffects, build_table, diff_tables,
    pair_key,
)
from repro.analysis.cli import load_project, main as analyze_main
from repro.analysis.interference import judge_pair
from repro.analysis.model import (
    ATTR_WRITE, BACKEND_DISPATCH, GLOBAL_WRITE, OPAQUE, RAISES,
    RNG_WRITE, STORE_READ,
)

REPO = pathlib.Path(__file__).resolve().parent.parent
PACKAGE = REPO / "src" / "repro"
TABLE = REPO / "analysis" / "parallel_safety.json"


@functools.lru_cache(maxsize=None)
def _fresh_table_json():
    """Analyze the shipped package from scratch; canonical JSON."""
    return build_table(load_project(PACKAGE)).render_json()


@functools.lru_cache(maxsize=None)
def _fresh_table():
    return build_table(load_project(PACKAGE))


# ----------------------------------------------------------------------
# Lock tests: the committed capability table
# ----------------------------------------------------------------------

class TestCapabilityTableLock:
    def test_regeneration_is_byte_deterministic(self):
        first = build_table(load_project(PACKAGE)).render_json()
        second = build_table(load_project(PACKAGE)).render_json()
        assert first == second

    def test_committed_table_matches_sources(self):
        # The CI drift gate in test form: if this fails, run
        # `PYTHONPATH=src python -m repro.analysis --write` and commit
        # the regenerated analysis/parallel_safety.json.
        assert TABLE.exists(), "committed capability table is missing"
        committed = TABLE.read_text(encoding="utf-8")
        computed = _fresh_table_json()
        if committed != computed:
            drift = diff_tables(json.loads(committed),
                                json.loads(computed))
            pytest.fail("capability table drifted: %s"
                        % ("; ".join(drift) or "effect signatures "
                           "changed (verdicts unchanged)"))

    def test_all_stage_pairs_present(self):
        table = _fresh_table()
        kinds = sorted(table.stages)
        assert len(kinds) == 8
        expected = {pair_key(a, b) for a in kinds for b in kinds}
        assert set(table.pairs) == expected
        assert len(table.pairs) == 36

    def test_hybrid_arms_certified_safe_parallel(self):
        # THE certification PR 8's parallel executor consumes: the
        # table arm (SynthesizeSpec -> ExecuteTable) and the text arm
        # (RetrieveTopology -> ExecuteText) may overlap.
        table = _fresh_table()
        for a, b in HYBRID_ARM_PAIRS:
            verdict = table.verdict(a, b)
            assert verdict is not None, "missing pair %s|%s" % (a, b)
            assert verdict.verdict == VERDICT_SAFE, (
                "hybrid arm pair %s|%s is %s: %s"
                % (a, b, verdict.verdict,
                   [c.as_dict() for c in verdict.conflicts]))

    def test_same_arm_pairs_conflict(self):
        # Sanity that the analysis is not vacuously permissive: both
        # stages of ONE arm share backend state and must conflict.
        table = _fresh_table()
        for a, b in (("SynthesizeSpec", "ExecuteTable"),
                     ("RetrieveTopology", "ExecuteText"),
                     ("ExecuteTable", "ExecuteTable"),
                     ("ExecuteText", "ExecuteText")):
            verdict = table.verdict(a, b)
            assert verdict.verdict == VERDICT_CONFLICTS, (
                "%s|%s should conflict, got %s"
                % (a, b, verdict.verdict))

    def test_no_unknown_verdicts_in_shipped_tree(self):
        table = _fresh_table()
        unknown = [key for key, pv in table.pairs.items()
                   if pv.verdict == VERDICT_UNKNOWN]
        assert unknown == []

    def test_arm_closures_name_their_backends(self):
        table = _fresh_table()
        assert ("backend-dispatch:structured"
                in table.stages["ExecuteTable"]["effects"])
        assert ("backend-dispatch:text"
                in table.stages["ExecuteText"]["effects"])

    def test_no_stage_closure_is_truncated(self):
        table = _fresh_table()
        for kind, stage in table.stages.items():
            assert not stage["truncated"], kind


# ----------------------------------------------------------------------
# judge_pair on crafted signatures
# ----------------------------------------------------------------------

def _sig(*effects, truncated=False):
    return FunctionEffects(effects=frozenset(effects),
                           truncated=truncated)


class TestJudgePair:
    def test_disjoint_writes_are_safe(self):
        verdict = judge_pair(
            "A", "B",
            _sig(Effect(ATTR_WRITE, "Left.state")),
            _sig(Effect(ATTR_WRITE, "Right.state")))
        assert verdict.verdict == VERDICT_SAFE

    def test_shared_resource_with_writer_conflicts(self):
        verdict = judge_pair(
            "A", "B",
            _sig(Effect(STORE_READ, "Store.rows")),
            _sig(Effect(GLOBAL_WRITE, "Store.rows")))
        assert verdict.verdict == VERDICT_CONFLICTS
        assert verdict.conflicts[0].resource == "Store.rows"

    def test_shared_reads_are_safe(self):
        verdict = judge_pair(
            "A", "B",
            _sig(Effect(STORE_READ, "Store.rows")),
            _sig(Effect(STORE_READ, "Store.rows")))
        assert verdict.verdict == VERDICT_SAFE

    def test_same_backend_key_dispatch_conflicts(self):
        verdict = judge_pair(
            "A", "B",
            _sig(Effect(BACKEND_DISPATCH, "structured")),
            _sig(Effect(BACKEND_DISPATCH, "structured")))
        assert verdict.verdict == VERDICT_CONFLICTS

    def test_distinct_backend_keys_are_safe(self):
        verdict = judge_pair(
            "A", "B",
            _sig(Effect(BACKEND_DISPATCH, "structured")),
            _sig(Effect(BACKEND_DISPATCH, "text")))
        assert verdict.verdict == VERDICT_SAFE

    def test_wildcard_dispatch_conflicts_with_any_key(self):
        verdict = judge_pair(
            "A", "B",
            _sig(Effect(BACKEND_DISPATCH, "<any>")),
            _sig(Effect(BACKEND_DISPATCH, "text")))
        assert verdict.verdict == VERDICT_CONFLICTS

    def test_truncated_closure_is_unknown(self):
        verdict = judge_pair(
            "A", "B", _sig(truncated=True), _sig())
        assert verdict.verdict == VERDICT_UNKNOWN
        assert verdict.unknown == ["closure truncated"]

    def test_shared_opaque_callee_is_unknown(self):
        verdict = judge_pair(
            "A", "B",
            _sig(Effect(OPAQUE, "mystery")),
            _sig(Effect(OPAQUE, "mystery")))
        assert verdict.verdict == VERDICT_UNKNOWN
        assert "mystery" in verdict.unknown[0]

    def test_unshared_opaque_stays_safe(self):
        # A blind spot only poisons pairs where BOTH sides hit it.
        verdict = judge_pair(
            "A", "B",
            _sig(Effect(OPAQUE, "left_only")),
            _sig(Effect(ATTR_WRITE, "Right.state")))
        assert verdict.verdict == VERDICT_SAFE

    def test_conflicts_win_over_shared_opaque(self):
        verdict = judge_pair(
            "A", "B",
            _sig(Effect(OPAQUE, "mystery"),
                 Effect(RNG_WRITE, "Gen.rng")),
            _sig(Effect(OPAQUE, "mystery"),
                 Effect(RNG_WRITE, "Gen.rng")))
        assert verdict.verdict == VERDICT_CONFLICTS

    def test_local_modes_never_conflict(self):
        verdict = judge_pair(
            "A", "B",
            _sig(Effect(RAISES, "ValueError")),
            _sig(Effect(RAISES, "ValueError")))
        assert verdict.verdict == VERDICT_SAFE


# ----------------------------------------------------------------------
# Effect analyzer on synthetic packages
# ----------------------------------------------------------------------

def _analyze_pkg(tmp_path, files):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    for name, body in files.items():
        path = pkg / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(body), encoding="utf-8")
    index = load_project(pkg)
    return EffectAnalyzer(index).analyze()


def _rendered(signatures, qual):
    assert qual in signatures, sorted(signatures)
    return signatures[qual].rendered()


class TestEffectAnalyzer:
    def test_attribute_write_detected(self, tmp_path):
        sigs = _analyze_pkg(tmp_path, {"mod.py": """\
            class Counter:
                def __init__(self):
                    self.n = 0
                def bump(self):
                    self.n += 1
                def read(self):
                    return self.n
        """})
        assert "attr-write:Counter.n" in _rendered(
            sigs, "mod.Counter.bump")
        assert "attr-write:Counter.n" not in _rendered(
            sigs, "mod.Counter.read")

    def test_fixpoint_propagates_through_typed_calls(self, tmp_path):
        sigs = _analyze_pkg(tmp_path, {"mod.py": """\
            class Counter:
                def __init__(self):
                    self.n = 0
                def bump(self):
                    self.n += 1

            def outer(c: "Counter"):
                c.bump()

            def outermost(c: "Counter"):
                outer(c)
        """})
        assert "attr-write:Counter.n" in _rendered(sigs, "mod.outer")
        assert "attr-write:Counter.n" in _rendered(
            sigs, "mod.outermost")

    def test_mutator_on_argument_and_global(self, tmp_path):
        sigs = _analyze_pkg(tmp_path, {"mod.py": """\
            _SEEN = []

            def record(item):
                _SEEN.append(item)

            def fill(bucket):
                bucket.append(1)
        """})
        assert "global-write:mod._SEEN" in _rendered(
            sigs, "mod.record")
        assert "arg-write:bucket" in _rendered(sigs, "mod.fill")

    def test_rng_draw_on_instance_stream(self, tmp_path):
        sigs = _analyze_pkg(tmp_path, {"mod.py": """\
            class Gen:
                def __init__(self, seed):
                    self._rng = object()
                def draw(self):
                    return self._rng.random()
        """})
        assert any(e.startswith("rng-write:")
                   for e in _rendered(sigs, "mod.Gen.draw"))

    def test_raise_records_exception_type(self, tmp_path):
        sigs = _analyze_pkg(tmp_path, {"mod.py": """\
            def guard(n):
                if n < 0:
                    raise ValueError("n must be >= 0")
        """})
        assert "raises:ValueError" in _rendered(sigs, "mod.guard")

    def test_unresolvable_call_is_opaque_not_guessed(self, tmp_path):
        sigs = _analyze_pkg(tmp_path, {"mod.py": """\
            class A:
                def process(self):
                    self.x = 1
            class B:
                def process(self):
                    self.y = 2

            def run(thing):
                thing.process()
        """})
        rendered = _rendered(sigs, "mod.run")
        assert "opaque:process" in rendered
        # Critically: the ambiguity is NOT resolved by guessing, so
        # neither class's attribute write leaks into run's signature.
        assert not any("attr-write" in e for e in rendered)

    def test_frame_local_string_methods_are_pure(self, tmp_path):
        sigs = _analyze_pkg(tmp_path, {"mod.py": """\
            def shout(text):
                return text.upper().strip()
        """})
        assert _rendered(sigs, "mod.shout") == ()


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

class TestAnalyzeCli:
    def test_shipped_tree_is_certified(self, capsys):
        # The acceptance bar: the default target analyzes clean and
        # matches the committed table.
        assert analyze_main(["--check"]) == 0
        out = capsys.readouterr().out
        assert "stage-interference: 8 stages, 36 pairs" in out
        assert "no findings" in out

    def test_write_then_check_roundtrip(self, tmp_path, capsys):
        table = tmp_path / "safety.json"
        assert analyze_main(["--write", "--table", str(table)]) == 0
        assert table.exists()
        assert analyze_main(["--check", "--table", str(table)]) == 0
        capsys.readouterr()

    def test_missing_table_is_drift(self, tmp_path, capsys):
        gone = tmp_path / "gone.json"
        assert analyze_main(["--check", "--table", str(gone)]) == 1
        assert "capability-drift" in capsys.readouterr().out

    def test_stale_table_is_drift(self, tmp_path, capsys):
        stale = tmp_path / "stale.json"
        doc = json.loads(TABLE.read_text(encoding="utf-8"))
        key = "ExecuteTable|ExecuteText"
        doc["pairs"][key]["verdict"] = "conflicts"
        stale.write_text(json.dumps(doc, indent=2, sort_keys=True)
                         + "\n", encoding="utf-8")
        assert analyze_main(["--check", "--table", str(stale)]) == 1
        out = capsys.readouterr().out
        assert "capability-drift" in out
        assert key in out

    def test_uncertified_package_fails_with_findings(self, tmp_path,
                                                     capsys):
        # A root without the executor leaves every handler opaque:
        # the hybrid arms cannot be certified and the CLI must say so.
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "mod.py").write_text('"""Empty."""\n', encoding="utf-8")
        assert analyze_main(["--root", str(pkg)]) == 1
        out = capsys.readouterr().out
        assert "uncertified-parallel-arm" in out

    def test_missing_root_exits_two(self, tmp_path, capsys):
        assert analyze_main(["--root", str(tmp_path / "gone")]) == 2
        assert "no such package root" in capsys.readouterr().err

    def test_baseline_suppresses_recorded_findings(self, tmp_path,
                                                   capsys):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "mod.py").write_text('"""Empty."""\n', encoding="utf-8")
        assert analyze_main(["--root", str(pkg), "--format",
                             "json"]) == 1
        baseline = tmp_path / "baseline.json"
        baseline.write_text(capsys.readouterr().out, encoding="utf-8")
        assert analyze_main(["--root", str(pkg), "--baseline",
                             str(baseline)]) == 0
        assert analyze_main(["--baseline",
                             str(tmp_path / "gone.json")]) == 2

    def test_github_format(self, tmp_path, capsys):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "mod.py").write_text('"""Empty."""\n', encoding="utf-8")
        assert analyze_main(["--root", str(pkg), "--format",
                             "github"]) == 1
        out = capsys.readouterr().out
        assert "::error file=analysis/parallel_safety.json" in out


class TestDiffTables:
    """Drift reports name the drifted stage pair(s), not a digest."""

    OLD = {
        "pairs": {
            "A|B": {"verdict": "safe-parallel"},
            "A|C": {"verdict": "safe-parallel"},
            "B|C": {"verdict": "conflicts",
                    "conflicts": [{"resource": "x"}]},
        },
        "stages": {"A": {"effects": ["store-read:db"]}},
    }

    def test_verdict_drift_named(self):
        new = json.loads(json.dumps(self.OLD))
        new["pairs"]["A|B"]["verdict"] = "conflicts"
        drift = diff_tables(self.OLD, new)
        assert "A|B: safe-parallel -> conflicts" in drift

    def test_detail_only_drift_names_pair_and_kept_verdict(self):
        new = json.loads(json.dumps(self.OLD))
        new["pairs"]["B|C"]["conflicts"] = [{"resource": "y"}]
        drift = diff_tables(self.OLD, new)
        assert any("B|C" in line and "verdict conflicts unchanged" in line
                   for line in drift)

    def test_stage_effect_drift_named(self):
        new = json.loads(json.dumps(self.OLD))
        new["stages"]["A"] = {"effects": ["store-read:db", "rng-write:r"]}
        drift = diff_tables(self.OLD, new)
        assert "stage A: effect signature changed" in drift

    def test_identical_tables_report_nothing(self):
        assert diff_tables(self.OLD,
                           json.loads(json.dumps(self.OLD))) == []
