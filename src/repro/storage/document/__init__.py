"""Semi-structured document storage (JSON-like) with path queries."""

from .jsonpath import flatten, parse_path, select, select_one
from .store import DocumentStore

__all__ = ["DocumentStore", "flatten", "parse_path", "select", "select_one"]
