"""E7 — Ablations of the graph index and traversal scoring.

DESIGN.md §4 calls out the design choices behind Sections III.A/III.B:
entity nodes, relational-cue edges (including structured records
projected into the graph), co-occurrence edges, and the centrality
prior. Each is switched off in turn; the table reports retrieval
quality by query class — single-entity, multi-entity, and *indirect*
(manufacturer-level questions whose gold reviews never mention the
manufacturer, reachable only through catalog records) — plus traversal
work.

Expected shape: indirect queries collapse without entity/record
structure (the lexical fallback has no signal); multi-entity queries
suffer most from removing co-occurrence/relation edges; dropping the
centrality prior costs a little quality at equal traversal work.
"""

from __future__ import annotations

import pytest

from repro.bench import LakeSpec, generate_ecommerce_lake, render_table
from repro.graphindex import BuilderConfig, GraphIndexBuilder
from repro.metering import CostMeter, EDGES_TRAVERSED
from repro.retrieval import (
    TopologyConfig, TopologyRetriever, aggregate_rankings, evaluate_ranking,
)
from repro.slm import SLMConfig, SmallLanguageModel
from repro.storage.relational import Database
from repro.text.chunker import Chunker, ChunkerConfig
from repro.text.ner import Gazetteer

from _common import emit

ABLATIONS = (
    ("full", BuilderConfig(), TopologyConfig()),
    ("no_entity_nodes", BuilderConfig(entity_nodes=False),
     TopologyConfig()),
    ("no_relation_edges", BuilderConfig(relation_edges=False),
     TopologyConfig()),
    ("no_cooccurrence", BuilderConfig(cooccurrence_edges=False),
     TopologyConfig()),
    ("no_centrality", BuilderConfig(),
     TopologyConfig(use_centrality=False)),
)
RESULTS = []


@pytest.fixture(scope="module")
def corpus():
    lake = generate_ecommerce_lake(
        LakeSpec(n_products=16, seed=71, n_filler_docs=8)
    )
    chunker = Chunker(ChunkerConfig(max_tokens=48, overlap_sentences=0))
    chunks = chunker.chunk_corpus(lake.review_texts)
    queries = lake.retrieval_queries(n=20) \
        + lake.indirect_retrieval_queries()
    db = Database(meter=CostMeter())
    for statement in lake.sql_statements():
        db.execute(statement)
    return lake, db, chunks, queries


def run_ablation(name, builder_config, topo_config, lake, db, chunks,
                 queries):
    meter = CostMeter()
    gazetteer = Gazetteer()
    gazetteer.add("VALUE", lake.product_names())
    gazetteer.add("VALUE", sorted({
        p["manufacturer"] for p in lake.products
    }))
    slm = SmallLanguageModel(SLMConfig(seed=0), gazetteer=gazetteer,
                             meter=meter)
    builder = GraphIndexBuilder(slm, config=builder_config, meter=meter)
    builder.add_chunks(chunks)
    builder.add_table(db.table("products"),
                      entity_columns=["name_key", "manufacturer"])
    retriever = TopologyRetriever(builder.build(), slm,
                                  config=topo_config, meter=meter)
    retriever.index(chunks)

    buckets = {"single": [], "multi": [], "indirect": []}
    with meter.measure() as query_cost:
        for query in queries:
            hits = retriever.retrieve(query.query, k=8)
            ranked = []
            for hit in hits:
                if hit.chunk.doc_id not in ranked:
                    ranked.append(hit.chunk.doc_id)
            metrics = evaluate_ranking(ranked, query.relevant_docs, ks=(5,))
            if query.query_class == "indirect":
                buckets["indirect"].append(metrics)
            elif query.n_entities > 1:
                buckets["multi"].append(metrics)
            else:
                buckets["single"].append(metrics)
    aggregated = {
        key: aggregate_rankings(value) for key, value in buckets.items()
    }
    return {
        "ablation": name,
        "recall@5_single": round(
            aggregated["single"].get("recall@5", 0.0), 3),
        "recall@5_multi": round(
            aggregated["multi"].get("recall@5", 0.0), 3),
        "recall@5_indirect": round(
            aggregated["indirect"].get("recall@5", 0.0), 3),
        "edges_per_q": round(
            query_cost.get(EDGES_TRAVERSED, 0) / len(queries), 1
        ),
    }, retriever


@pytest.mark.parametrize("name,builder_config,topo_config", ABLATIONS,
                         ids=[a[0] for a in ABLATIONS])
def test_e7_ablation(benchmark, corpus, name, builder_config, topo_config):
    lake, db, chunks, queries = corpus
    row, retriever = run_ablation(
        name, builder_config, topo_config, lake, db, chunks, queries
    )
    RESULTS.append(row)
    indirect = [q for q in queries if q.query_class == "indirect"]
    benchmark(retriever.retrieve, indirect[0].query, 8)


def test_e7_report(benchmark):
    benchmark(lambda: None)
    assert RESULTS, "ablation runs first"
    emit("e7_ablation", render_table(
        RESULTS, title="E7 — Graph index / traversal ablations"
    ))
    by_name = {r["ablation"]: r for r in RESULTS}
    full = by_name["full"]
    # Indirect (relational-hop) retrieval needs the graph: without
    # entity/record nodes the lexical fallback has nothing to match.
    assert full["recall@5_indirect"] >= 0.5
    assert by_name["no_entity_nodes"]["recall@5_indirect"] <= 0.2
    # Multi-entity quality does not meaningfully improve when structure
    # is removed (small inversions are sampling noise on this corpus;
    # the load-bearing structural result is the indirect column above).
    tolerance = 0.05
    assert full["recall@5_multi"] + tolerance >= \
        by_name["no_cooccurrence"]["recall@5_multi"]
    assert full["recall@5_multi"] + tolerance >= \
        by_name["no_relation_edges"]["recall@5_multi"]
