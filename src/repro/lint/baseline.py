"""Baseline files: adopt strict rules without paying off old debt.

A baseline is the JSON document :func:`repro.lint.report.render_json`
emits (``{"findings": [...]}``), committed to the repository. Runs
invoked with ``--baseline <file>`` suppress every finding already
recorded there and fail only on *new* ones — so a rule can be turned
on today and its backlog burned down incrementally.

Findings are keyed by ``(path, rule, message)``, deliberately not by
line number: unrelated edits move lines constantly, and a baseline
that invalidates on every reflow trains people to regenerate it
blindly, which defeats the point. The trade-off is that a second,
genuinely new finding with an identical message in the same file is
masked until the first is fixed — acceptable for a suppression file.
"""

from __future__ import annotations

import json
import pathlib
from typing import Iterable, List, Set, Tuple

from .core import Finding

BaselineKey = Tuple[str, str, str]


def finding_key(finding: Finding) -> BaselineKey:
    """The line-independent identity of one finding."""
    return (finding.path, finding.rule, finding.message)


def load_baseline(path: pathlib.Path) -> Set[BaselineKey]:
    """Parse a committed baseline file into a suppression key set.

    Raises ``ValueError`` on malformed documents so the CLI can exit
    with a usage error (2) instead of silently suppressing nothing.
    """
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError("baseline %s is not valid JSON: %s"
                         % (path, exc))
    findings = payload.get("findings") if isinstance(payload, dict) \
        else None
    if not isinstance(findings, list):
        raise ValueError("baseline %s has no 'findings' list" % path)
    keys: Set[BaselineKey] = set()
    for entry in findings:
        if not isinstance(entry, dict):
            raise ValueError("baseline %s has a non-object finding"
                             % path)
        keys.add((str(entry.get("path", "")),
                  str(entry.get("rule", "")),
                  str(entry.get("message", ""))))
    return keys


def apply_baseline(findings: Iterable[Finding],
                   baseline: Set[BaselineKey]) -> List[Finding]:
    """Findings not present in *baseline* (the ones that still fail)."""
    return [f for f in findings if finding_key(f) not in baseline]
