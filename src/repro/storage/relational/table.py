"""In-memory heap table with index maintenance.

Rows are immutable tuples stored in a dict keyed by row id, so deletes
do not shift ids and indexes stay valid. The table enforces its schema
and primary-key uniqueness on every write.
"""

from __future__ import annotations

from typing import (
    Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple,
)

from ...errors import StorageError
from ...metering import ROWS_SCANNED, CostMeter, GLOBAL_METER
from .index import HashIndex, make_index
from .schema import TableSchema


class Table:
    """A heap of schema-validated rows with optional secondary indexes."""

    def __init__(self, schema: TableSchema,
                 meter: Optional[CostMeter] = None):
        self.schema = schema
        self._rows: Dict[int, Tuple[Any, ...]] = {}
        self._next_id = 0
        self._indexes: Dict[str, Any] = {}
        self._meter = meter if meter is not None else GLOBAL_METER
        if schema.primary_key is not None:
            self.create_index(schema.primary_key, kind="hash")

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def insert(self, row: Sequence[Any], coerce: bool = False) -> int:
        """Insert one row; returns its row id.

        Raises :class:`SchemaError` on type mismatch and
        :class:`StorageError` on primary-key violation.
        """
        if coerce:
            validated = self.schema.coerce_row(row)
        else:
            validated = self.schema.validate_row(row)
        pk = self.schema.primary_key
        if pk is not None:
            pk_value = validated[self.schema.index_of(pk)]
            if pk_value is None:
                raise StorageError("primary key %r cannot be NULL" % pk)
            if self._indexes[pk].lookup(pk_value):
                raise StorageError(
                    "duplicate primary key %r in table %r"
                    % (pk_value, self.schema.name)
                )
        row_id = self._next_id
        self._next_id += 1
        self._rows[row_id] = validated
        for column, index in self._indexes.items():
            index.insert(validated[self.schema.index_of(column)], row_id)
        return row_id

    def insert_dict(self, record: Dict[str, Any], coerce: bool = False) -> int:
        """Insert from a column→value mapping (missing columns NULL)."""
        return self.insert(
            self.schema.row_from_dict(record, coerce_values=coerce)
        )

    def insert_many(self, rows: Iterable[Sequence[Any]],
                    coerce: bool = False) -> List[int]:
        """Insert many rows; returns their ids."""
        return [self.insert(row, coerce=coerce) for row in rows]

    def update(self, row_id: int, row: Sequence[Any],
               coerce: bool = False) -> None:
        """Replace the row at *row_id* in place, maintaining indexes.

        Primary-key changes are validated against uniqueness (the row's
        own old value does not conflict with itself).
        """
        old = self._rows.get(row_id)
        if old is None:
            raise StorageError("no row %d in %r" % (row_id, self.schema.name))
        if coerce:
            validated = self.schema.coerce_row(row)
        else:
            validated = self.schema.validate_row(row)
        pk = self.schema.primary_key
        if pk is not None:
            pk_pos = self.schema.index_of(pk)
            new_pk = validated[pk_pos]
            if new_pk is None:
                raise StorageError("primary key %r cannot be NULL" % pk)
            if new_pk != old[pk_pos] and self._indexes[pk].lookup(new_pk):
                raise StorageError(
                    "duplicate primary key %r in table %r"
                    % (new_pk, self.schema.name)
                )
        for column, index in self._indexes.items():
            pos = self.schema.index_of(column)
            index.remove(old[pos], row_id)
            index.insert(validated[pos], row_id)
        self._rows[row_id] = validated

    def delete(self, row_id: int) -> None:
        """Delete the row with *row_id* (StorageError if absent)."""
        row = self._rows.pop(row_id, None)
        if row is None:
            raise StorageError("no row %d in %r" % (row_id, self.schema.name))
        for column, index in self._indexes.items():
            index.remove(row[self.schema.index_of(column)], row_id)

    # ------------------------------------------------------------------
    # Indexes
    # ------------------------------------------------------------------
    def create_index(self, column: str, kind: str = "hash") -> None:
        """Build an index over *column*, backfilling existing rows."""
        column = column.lower()
        self.schema.index_of(column)  # raises if unknown
        if column in self._indexes and kind == "hash" and isinstance(
            self._indexes[column], HashIndex
        ):
            return
        index = make_index(kind, column)
        pos = self.schema.index_of(column)
        for row_id, row in self._rows.items():
            index.insert(row[pos], row_id)
        self._indexes[column] = index

    def index_on(self, column: str):
        """The index object for *column*, or None."""
        return self._indexes.get(column.lower())

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get(self, row_id: int) -> Tuple[Any, ...]:
        """Fetch one row by id."""
        try:
            return self._rows[row_id]
        except KeyError:
            raise StorageError(
                "no row %d in %r" % (row_id, self.schema.name)
            ) from None

    def scan(self) -> Iterator[Tuple[int, Tuple[Any, ...]]]:
        """Yield (row_id, row) in id order, charging ``rows_scanned``."""
        for row_id in sorted(self._rows):
            self._meter.charge(ROWS_SCANNED)
            yield row_id, self._rows[row_id]

    def scan_matching(
        self, test: Callable[[Tuple[Any, ...]], bool],
        equals: Optional[Iterable[Tuple[str, Any]]] = None,
    ) -> Iterator[Tuple[int, Tuple[Any, ...]]]:
        """Filtered scan: (row_id, row) pairs where ``test(row)`` holds.

        *equals* is a pushdown hint — (column, value) equality conjuncts
        known to hold for every matching row. The heap table ignores it
        (same rows, order and charges as scan-then-filter); partitioned
        facades use it to prune which shards to scan.
        """
        for row_id, row in self.scan():
            if test(row):
                yield row_id, row

    def rows(self) -> List[Tuple[Any, ...]]:
        """All rows in id order (charges ``rows_scanned``)."""
        return [row for _, row in self.scan()]

    def lookup(self, column: str, value: Any) -> List[Tuple[Any, ...]]:
        """Equality lookup, via index when available, else a scan."""
        column = column.lower()
        index = self._indexes.get(column)
        if isinstance(index, HashIndex):
            return [self._rows[rid] for rid in index.lookup(value)]
        pos = self.schema.index_of(column)
        return [row for _, row in self.scan() if row[pos] == value]

    def column_values(self, column: str) -> List[Any]:
        """Every value of *column* in row-id order."""
        pos = self.schema.index_of(column)
        return [row[pos] for _, row in self.scan()]

    def __len__(self) -> int:
        return len(self._rows)

    def __repr__(self) -> str:
        return "Table(%s, %d rows)" % (self.schema.name, len(self))

    def clone(self) -> "Table":
        """Deep-copy this table (rows and indexes) for snapshots."""
        from .index import HashIndex as _Hash
        from .index import make_index

        twin = Table.__new__(Table)
        twin.schema = self.schema
        twin._rows = dict(self._rows)
        twin._next_id = self._next_id
        twin._meter = self._meter
        twin._indexes = {}
        for column, index in self._indexes.items():
            kind = "hash" if isinstance(index, _Hash) else "sorted"
            new_index = make_index(kind, column)
            pos = self.schema.index_of(column)
            for row_id, row in twin._rows.items():
                new_index.insert(row[pos], row_id)
            twin._indexes[column] = new_index
        return twin

    def to_dicts(self) -> List[Dict[str, Any]]:
        """Rows as column→value dicts (handy for tests and JSON)."""
        names = self.schema.column_names()
        return [dict(zip(names, row)) for _, row in self.scan()]
