"""RLS equivalence: governed answers match a pre-filtered data slice.

The semantic contract of compile-time RLS injection: answering under a
tenant whose RLS predicate pins ``sales.quarter = 'Q1'`` over the FULL
lake must be byte-identical to answering under the same context over a
lake whose sales table was physically pre-filtered to Q1 — rows outside
the predicate are not merely excluded from results, they are
indistinguishable from rows that never existed. Verified uncached and
under an injected-fault plan, on both benchmark domains.

Under chaos the degradation audit's ``work_spent`` counter is
normalized away before comparing: the full lake legitimately scans
more rows (physical cost), but everything observable — text, value,
confidence, provenance, degradation events — must still match.
"""

import dataclasses

import pytest

from repro.bench import (
    HealthSpec, LakeSpec, generate_ecommerce_lake, generate_healthcare_lake,
)
from repro.bench.runner import build_hybrid_system
from repro.resilience import FaultPlan, ResilienceConfig
from repro.tenancy import TenantRegistry

SEED = 11

ECOM_REGISTRY = TenantRegistry.from_dict({"tenants": [
    {"id": "q1",
     "rls": [{"table": "sales", "column": "quarter", "op": "=",
              "value": "Q1"}]},
]})

HEALTH_REGISTRY = TenantRegistry.from_dict({"tenants": [
    {"id": "q1",
     "rls": [{"table": "trials", "column": "quarter", "op": "=",
              "value": "Q1"}]},
]})


def build_ecommerce():
    lake = generate_ecommerce_lake(LakeSpec(n_products=4, seed=SEED))
    sliced = dataclasses.replace(
        lake, sales=[r for r in lake.sales if r["quarter"] == "Q1"])
    return lake, sliced, ECOM_REGISTRY.context("q1")


def build_healthcare():
    lake = generate_healthcare_lake(HealthSpec(seed=SEED))
    sliced = dataclasses.replace(
        lake, trials=[r for r in lake.trials if r["quarter"] == "Q1"])
    return lake, sliced, HEALTH_REGISTRY.context("q1")


DOMAINS = {"ecommerce": build_ecommerce, "healthcare": build_healthcare}


def make_pipeline(lake, chaos=False):
    _system, pipeline = build_hybrid_system(lake, seed=SEED)
    if chaos:
        # Faults only on backends whose call sequence is independent of
        # table cardinality, so the full lake and its slice see the
        # very same injected-fault schedule.
        pipeline.enable_resilience(ResilienceConfig(
            fault_plan=FaultPlan.uniform(("retriever", "slm"), 0.15,
                                         seed=5),
            budget=500_000,
        ))
    return pipeline


def fingerprint(answer, exact_work=True):
    metadata = dict(answer.metadata)
    degradation = metadata.get("degradation")
    if not exact_work and isinstance(degradation, dict):
        degradation = dict(degradation)
        degradation.pop("work_spent", None)
        metadata["degradation"] = degradation
    return (answer.text, answer.value, answer.confidence,
            answer.grounded, answer.system, tuple(answer.provenance),
            tuple(sorted((k, repr(v)) for k, v in metadata.items())))


@pytest.mark.parametrize("domain", sorted(DOMAINS))
class TestRLSEquivalence:
    def test_uncached_byte_identical(self, domain):
        lake, sliced, context = DOMAINS[domain]()
        full = make_pipeline(lake)
        slim = make_pipeline(sliced)
        for pair in lake.qa_pairs(per_kind=1):
            governed = full.answer(pair.question, tenant=context)
            reference = slim.answer(pair.question, tenant=context)
            assert fingerprint(governed) == fingerprint(reference), \
                pair.question

    def test_chaos_byte_identical_modulo_work_audit(self, domain):
        lake, sliced, context = DOMAINS[domain]()
        full = make_pipeline(lake, chaos=True)
        slim = make_pipeline(sliced, chaos=True)
        degraded = 0
        for pair in lake.qa_pairs(per_kind=1):
            governed = full.answer(pair.question, tenant=context)
            reference = slim.answer(pair.question, tenant=context)
            degraded += bool(governed.metadata.get("degraded"))
            assert (fingerprint(governed, exact_work=False)
                    == fingerprint(reference, exact_work=False)), \
                pair.question
        assert degraded, "fault plan never fired; chaos leg is vacuous"

    def test_rls_actually_bites(self, domain):
        """Governance must change at least one answer vs ungoverned."""
        lake, _sliced, context = DOMAINS[domain]()
        governed = make_pipeline(lake)
        plain = make_pipeline(lake)
        changed = 0
        for pair in lake.qa_pairs(per_kind=1):
            a = governed.answer(pair.question, tenant=context)
            b = plain.answer(pair.question)
            changed += fingerprint(a) != fingerprint(b)
        assert changed >= 1
