"""E10 (extension) — Hallucination detection via grounding verification.

The paper warns that "LLM-based QA systems often hallucinate plausible
but ungrounded comparisons". The TextQA engine's entailment verifier
checks every generated answer against its cited evidence; this bench
measures detection quality as the simulated SLM's hallucination bias
rises.

Reported per bias level: answer accuracy, the verifier's
error-detection precision/recall (flag = answer wrong), and accuracy
after refusing flagged answers — the deployable win.

Expected shape: as the model hallucinates more, raw accuracy falls;
verifier recall on wrong answers stays high (fabrications cite
nothing or cite evidence that does not entail them), so
accuracy-after-filtering degrades far more slowly.
"""

from __future__ import annotations

import pytest

from repro.bench import LakeSpec, generate_ecommerce_lake, render_table
from repro.metering import CostMeter
from repro.qa import TextQAEngine
from repro.retrieval import BM25Retriever
from repro.slm import SLMConfig, SmallLanguageModel
from repro.text.chunker import Chunker, ChunkerConfig
from repro.text.ner import Gazetteer

from _common import emit

BIASES = (0.0, 0.3, 0.6)
RESULTS = []


@pytest.fixture(scope="module")
def workload():
    lake = generate_ecommerce_lake(LakeSpec(n_products=12, seed=101))
    chunks = Chunker(
        ChunkerConfig(max_tokens=48, overlap_sentences=0)
    ).chunk_corpus(lake.review_texts)
    pairs = [
        p for p in lake.qa_pairs(per_kind=12)
        if p.kind == "unstructured_fact"
    ]
    return lake, chunks, pairs


def run_bias(lake, chunks, pairs, bias):
    gazetteer = Gazetteer()
    gazetteer.add("VALUE", lake.product_names())
    slm = SmallLanguageModel(
        SLMConfig(seed=1, hallucination_bias=bias),
        gazetteer=gazetteer, meter=CostMeter(),
    )
    retriever = BM25Retriever(meter=CostMeter())
    retriever.index(chunks)
    engine = TextQAEngine(retriever, slm, k=3, temperature=0.3)
    flagged_wrong = flagged_right = 0
    unflagged_wrong = unflagged_right = 0
    for pair in pairs:
        answer = engine.answer(pair.question)
        correct = pair.is_correct(answer)
        flagged = not answer.metadata.get("verified", True)
        if flagged and not correct:
            flagged_wrong += 1
        elif flagged:
            flagged_right += 1
        elif correct:
            unflagged_right += 1
        else:
            unflagged_wrong += 1
    n = len(pairs)
    wrong = flagged_wrong + unflagged_wrong
    served = unflagged_right + unflagged_wrong
    return {
        "bias": bias,
        "accuracy_raw": round((flagged_right + unflagged_right) / n, 3),
        "flag_precision": round(
            flagged_wrong / (flagged_wrong + flagged_right), 3
        ) if (flagged_wrong + flagged_right) else None,
        "flag_recall": round(flagged_wrong / wrong, 3) if wrong else None,
        "accuracy_served": round(unflagged_right / served, 3)
        if served else None,
        "served_fraction": round(served / n, 3),
    }


@pytest.mark.parametrize("bias", BIASES)
def test_e10_bias(benchmark, workload, bias):
    lake, chunks, pairs = workload
    RESULTS.append(run_bias(lake, chunks, pairs, bias))
    gazetteer = Gazetteer()
    gazetteer.add("VALUE", lake.product_names())
    slm = SmallLanguageModel(SLMConfig(seed=1, hallucination_bias=bias),
                             gazetteer=gazetteer, meter=CostMeter())
    retriever = BM25Retriever(meter=CostMeter())
    retriever.index(chunks)
    engine = TextQAEngine(retriever, slm, k=3, temperature=0.3)
    benchmark(engine.answer, pairs[0].question)


def test_e10_report(benchmark):
    benchmark(lambda: None)
    assert RESULTS, "bias runs first"
    rows = sorted(RESULTS, key=lambda r: r["bias"])
    emit("e10_grounding", render_table(
        rows, title="E10 (extension) — Grounding verification vs "
        "hallucination bias"
    ))
    # Raw accuracy decays with bias; served accuracy holds much better.
    assert rows[0]["accuracy_raw"] >= rows[-1]["accuracy_raw"]
    high_bias = rows[-1]
    if high_bias["accuracy_served"] is not None:
        assert high_bias["accuracy_served"] >= \
            high_bias["accuracy_raw"]
    # Flags genuinely catch wrong answers at high bias.
    if high_bias["flag_recall"] is not None:
        assert high_bias["flag_recall"] >= 0.5