"""The hybrid Multi-Entity QA pipeline (paper Section III.C).

End-to-end orchestration over one heterogeneous data lake:

* **ingest** — curated relational tables, JSON documents and free text
  enter their respective stores; unstructured documents additionally
  pass through Relational Table Generation, so their facts become
  queryable rows;
* **index** — the graph index is built over chunks + tables + documents
  and a topology retriever is stood up on it;
* **answer** — questions are routed (structured / unstructured /
  hybrid); structured ones run through Semantic Operator Synthesis over
  curated *and generated* tables, textual ones through topology-RAG,
  hybrid ones through both with the best-grounded answer winning.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..entropy.semantic_entropy import (
    EntropyEstimate, SemanticEntropyEstimator,
)
from ..errors import ExtractionError, ReproError
from ..extraction.table_gen import TableGenerator
from ..graphindex.builder import BuilderConfig, GraphIndexBuilder
from ..graphindex.hetgraph import HeterogeneousGraph
from ..metering import CostMeter, GLOBAL_METER
from ..obs import (
    METRIC_ANSWER_LATENCY, METRIC_ANSWER_WORK, incr, observe, span,
)
from ..resilience import (
    CONFIDENCE_PENALTY, QuestionScope, ResilienceConfig,
    ResilienceManager, summarize, work_now,
)
from ..retrieval.topology import TopologyConfig, TopologyRetriever
from ..semql.catalog import SchemaCatalog
from ..sharding import (
    ShardSet, ShardedDocumentStore, ShardedTable, ShardedTextStore,
)
from ..slm.model import SmallLanguageModel
from ..storage.document.store import DocumentStore
from ..storage.relational.database import Database
from ..storage.textstore import TextStore
from .answer import ANSWER_SYSTEM_HYBRID, Answer
from ..tenancy import TenantContext
from .executor import PlanExecutor, cross_check
from .federation import FederatedRouter
from .plan import FederatedPlan, render_plan
from .speculative import SpeculationGate, SpeculativeExecutor
from .tableqa import TableQAEngine
from .textqa import TextQAEngine

# Column synonyms auto-registered for generated tables, mirroring the
# attribute vocabulary of repro.extraction.attributes.
_GENERATED_SYNONYMS = (
    ("increase", "change_percent"),
    ("decrease", "change_percent"),
    ("change", "change_percent"),
    ("growth", "change_percent"),
    ("product", "subject"),
    ("drug", "subject"),
    ("amount", "amount"),
    ("revenue", "amount"),
)


class HybridQAPipeline:
    """One object from raw lake to answered question."""

    def __init__(self, slm: SmallLanguageModel,
                 meter: Optional[CostMeter] = None,
                 builder_config: Optional[BuilderConfig] = None,
                 topology_config: Optional[TopologyConfig] = None,
                 min_column_support: int = 1,
                 resolve_entity_aliases: bool = False,
                 resilience: Optional[ResilienceConfig] = None,
                 speculative: bool = True,
                 capability_table: Optional[Any] = None,
                 n_shards: int = 1,
                 shard_seed: int = 0):
        self._slm = slm
        self._meter = meter if meter is not None else GLOBAL_METER
        self._resilience = ResilienceManager(self._meter, resilience)
        self._shard_set: Optional[ShardSet] = None
        if n_shards > 1:
            # Provider, not a bound reference: enable_resilience() swaps
            # self._resilience and the shard guards must follow it.
            shard_set = ShardSet(n_shards, seed=shard_seed,
                                 manager=lambda: self._resilience)
            self._shard_set = shard_set
            self.db = Database(
                meter=self._meter,
                table_factory=lambda schema: ShardedTable(
                    schema, shard_set, meter=self._meter,
                ),
            )
            self.text_store = ShardedTextStore(shard_set, meter=self._meter)
            self.doc_store = ShardedDocumentStore(shard_set, meter=self._meter)
        else:
            self.db = Database(meter=self._meter)
            self.text_store = TextStore(meter=self._meter)
            self.doc_store = DocumentStore(meter=self._meter)
        self._builder_config = builder_config
        self._topology_config = topology_config
        self._table_generator = TableGenerator(
            slm, min_column_support=min_column_support
        )
        self._resolve_aliases = resolve_entity_aliases
        self._generated_tables: List[str] = []
        self._table_entity_columns: Dict[str, List[str]] = {}
        self._pending_synonyms: List[Tuple[str, str, str]] = []
        self._pending_joins: List[Tuple[str, str, str, str]] = []
        self._pending_display: List[Tuple[str, str]] = []
        self._builder: Optional[GraphIndexBuilder] = None
        self._graph: Optional[HeterogeneousGraph] = None
        self._retriever: Optional[TopologyRetriever] = None
        self._text_qa: Optional[TextQAEngine] = None
        self._table_qa: Optional[TableQAEngine] = None
        self._router: Optional[FederatedRouter] = None
        self._executor: Optional[PlanExecutor] = None
        self._speculative = speculative
        self._capability_table = capability_table
        self._speculation_gate: Optional[SpeculationGate] = None
        self._plan_cache: Optional[Any] = None
        self._retriever_wrapper: Optional[Any] = None
        self._rebuild_listeners: List[Any] = []

    # ------------------------------------------------------------------
    # Serving hooks
    # ------------------------------------------------------------------
    def set_plan_cache(self, cache: Optional[Any]) -> None:
        """Install a plan cache on the TableQA engine, surviving rebuilds.

        Engines are recreated on ``build()``/``ingest_incremental()``/
        ``enable_resilience()``; storing the cache here re-injects it
        into every future :class:`TableQAEngine` this pipeline builds.
        """
        self._plan_cache = cache
        if self._table_qa is not None:
            self._table_qa.set_plan_cache(cache)

    def set_retriever_wrapper(self, wrapper: Optional[Any]) -> None:
        """Install ``wrapper(retriever) -> retriever`` over the retriever.

        The serving layer's retrieval-cache hook. Applied now (when a
        retriever exists) and re-applied each time the retriever is
        rebuilt, always over the freshly indexed instance.
        """
        self._retriever_wrapper = wrapper
        if self._retriever is not None and wrapper is not None:
            self._retriever = wrapper(self._retriever)
            self._text_qa = TextQAEngine(self._retriever, self._slm)

    def add_rebuild_listener(self, listener: Any) -> None:
        """Subscribe ``listener()`` to index/engine rebuilds.

        Fires after ``build()`` and ``ingest_incremental()`` complete —
        the moment every serving-layer cache keyed on corpus state must
        treat its entries as stale.
        """
        self._rebuild_listeners.append(listener)

    def _notify_rebuild(self) -> None:
        for listener in self._rebuild_listeners:
            listener()

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def add_sql(self, statements: Iterable[str]) -> None:
        """Run CREATE/INSERT statements to load curated tables."""
        for statement in statements:
            self.db.execute(statement)

    def declare_entity_columns(self, table: str,
                               columns: Sequence[str]) -> None:
        """Mark which columns of a curated table name graph entities."""
        for column in columns:
            self.db.table(table).schema.index_of(column)
        self._table_entity_columns[table] = list(columns)
        if self._shard_set is not None and columns:
            target = self.db.table(table)
            if isinstance(target, ShardedTable):
                # The first declared entity column is the shard key:
                # equality predicates on it prune to the owning shard.
                target.set_shard_key(columns[0])
        names = set()
        for column in columns:
            for value in self.db.table(table).column_values(column):
                if isinstance(value, str):
                    names.add(value)
        if names:
            self._slm.add_gazetteer("VALUE", sorted(names))

    def register_synonym(self, term: str, table: str, column: str) -> None:
        """Declare an NL term → column mapping (applied at build time)."""
        self._pending_synonyms.append((term, table, column))

    def register_join(self, table_a: str, column_a: str,
                      table_b: str, column_b: str) -> None:
        """Declare a joinable key pair (applied at build time)."""
        self._pending_joins.append((table_a, column_a, table_b, column_b))

    def register_display_column(self, table: str, column: str) -> None:
        """Column used to verbalize "list <table>" answers."""
        self._pending_display.append((table, column))

    def add_documents(self, docs: Iterable[Tuple[str, Any]]) -> None:
        """Load semi-structured documents."""
        self.doc_store.put_many(docs)

    def add_csv(self, table_name: str, csv_text: str,
                entity_columns: Optional[Sequence[str]] = None) -> int:
        """Load a CSV file as a curated table (schema inferred).

        Returns the row count; *entity_columns* are declared for graph
        projection when given.
        """
        from ..storage.csvio import read_csv

        table = read_csv(table_name, csv_text)
        self.db.create_table(table.schema)
        target = self.db.table(table_name)
        for row in table.rows():
            target.insert(row)
        if entity_columns:
            self.declare_entity_columns(table_name, entity_columns)
        return len(target)

    def add_texts(self, docs: Iterable[Tuple[str, str]]) -> None:
        """Load unstructured text documents (chunked on ingest)."""
        self.text_store.add_many(docs)

    def generate_table(self, name: str,
                       doc_ids: Optional[Sequence[str]] = None) -> int:
        """Run Relational Table Generation over stored texts.

        Returns the generated row count (0 when nothing extractable —
        the pipeline still works, via the RAG path).
        """
        ids = list(doc_ids) if doc_ids is not None \
            else self.text_store.doc_ids()
        documents = [(i, self.text_store.document(i)) for i in ids]
        try:
            generated = self._table_generator.generate_into(
                self.db, name, documents
            )
        except ExtractionError:
            return 0
        self._generated_tables.append(name)
        if self._shard_set is not None:
            target = self.db.table(name)
            if (isinstance(target, ShardedTable)
                    and target.schema.has_column("subject")):
                target.set_shard_key("subject")
        return len(generated.table)

    # ------------------------------------------------------------------
    # Index construction
    # ------------------------------------------------------------------
    def build(self) -> None:
        """Build the graph index, retriever and QA engines."""
        chunks = self.text_store.chunks()
        builder = GraphIndexBuilder(
            self._slm, config=self._builder_config, meter=self._meter
        )
        if chunks:
            builder.add_chunks(chunks)
        for table, columns in self._table_entity_columns.items():
            builder.add_table(self.db.table(table), entity_columns=columns)
        if len(self.doc_store):
            entity_paths = self._document_entity_paths()
            if entity_paths:
                builder.add_documents(self.doc_store, entity_paths)
        self._builder = builder
        self._graph = builder.build()
        if self._resolve_aliases:
            from ..graphindex.resolution import resolve_aliases

            resolve_aliases(self._graph, embedder=self._slm.embedder)
        self._index_retriever()
        self._build_engines()
        self._notify_rebuild()

    def _index_retriever(self) -> None:
        chunks = self.text_store.chunks()
        if not chunks:
            return
        retriever = TopologyRetriever(
            self._graph, self._slm, config=self._topology_config,
            meter=self._meter,
        )
        retriever.index(chunks)
        self._retriever = retriever
        if self._retriever_wrapper is not None:
            self._retriever = self._retriever_wrapper(retriever)
        self._text_qa = TextQAEngine(self._retriever, self._slm)

    def _build_engines(self) -> None:
        catalog = SchemaCatalog(self.db)
        for name in self._generated_tables:
            schema = self.db.table(name).schema
            for term, column in _GENERATED_SYNONYMS:
                if schema.has_column(column):
                    catalog.register_synonym(term, name, column)
        for term, table, column in self._pending_synonyms:
            catalog.register_synonym(term, table, column)
        for table_a, column_a, table_b, column_b in self._pending_joins:
            catalog.register_join(table_a, column_a, table_b, column_b)
        for table, column in self._pending_display:
            catalog.register_display_column(table, column)
        catalog.build_value_index()
        self._table_qa = TableQAEngine(
            self.db, catalog, system_name=ANSWER_SYSTEM_HYBRID
        )
        if self._plan_cache is not None:
            self._table_qa.set_plan_cache(self._plan_cache)
        self._router = FederatedRouter(catalog)
        # Providers, not bound references: enable_resilience() and
        # set_retriever_wrapper() swap these attributes in place.
        if self._speculative:
            if self._speculation_gate is None:
                # Loaded once at startup; a missing/corrupt table makes
                # a gate that denies every plan (fail closed), so the
                # speculative executor degenerates to sequential.
                self._speculation_gate = SpeculationGate.load(
                    self._capability_table)
            self._executor = SpeculativeExecutor(
                self._router, self._table_qa,
                text_qa=lambda: self._text_qa,
                resilience=lambda: self._resilience,
                slm=lambda: self._slm,
                gate=self._speculation_gate,
            )
        else:
            self._executor = PlanExecutor(
                self._router, self._table_qa,
                text_qa=lambda: self._text_qa,
                resilience=lambda: self._resilience,
                slm=lambda: self._slm,
            )

    def _document_entity_paths(self) -> List[str]:
        # Use shallow scalar keys that appear in most documents.
        from collections import Counter

        key_counts: Counter = Counter()
        n_docs = 0
        for _, document in self.doc_store.scan():
            n_docs += 1
            if isinstance(document, dict):
                for key, value in document.items():
                    if isinstance(value, str):
                        key_counts[key] += 1
        return [
            key for key, count in key_counts.items()
            if count >= max(1, n_docs // 2)
        ]

    # ------------------------------------------------------------------
    # Answering
    # ------------------------------------------------------------------
    def _check_built(self) -> None:
        if self._table_qa is None or self._router is None:
            raise ReproError("pipeline.build() must run before answer()")

    @property
    def graph(self) -> HeterogeneousGraph:
        """The built graph index."""
        self._check_built()
        return self._graph

    @property
    def table_qa(self) -> TableQAEngine:
        """The TableQA engine over curated + generated tables."""
        self._check_built()
        return self._table_qa

    @property
    def text_qa(self) -> Optional[TextQAEngine]:
        """The topology-RAG engine (None when the lake has no text)."""
        return self._text_qa

    def route(self, question: str):
        """The router's decision for *question* (for inspection)."""
        self._check_built()
        return self._router.route(question)

    @property
    def slm(self) -> SmallLanguageModel:
        """The SLM facade (a resilience proxy once chaos is enabled)."""
        return self._slm

    @property
    def meter(self) -> CostMeter:
        """The cost meter every store and engine in this pipeline charges."""
        return self._meter

    @property
    def resilience(self) -> ResilienceManager:
        """The resilience manager guarding this pipeline's backends."""
        return self._resilience

    @property
    def shard_set(self) -> Optional[ShardSet]:
        """The shared shard routing/guard state (None when unsharded)."""
        return self._shard_set

    @property
    def n_shards(self) -> int:
        """How many shards the stores partition over (1 = unsharded)."""
        return 1 if self._shard_set is None else self._shard_set.n_shards

    def set_speculative(self, enabled: bool) -> None:
        """Switch between the speculative and sequential executors.

        Both produce byte-identical answers; the speculative executor
        additionally isolates arm failures under bounded budgets. A
        built pipeline swaps executors immediately; an unbuilt one
        records the choice for ``build()``.
        """
        self._speculative = enabled
        if self._table_qa is not None:
            self._build_engines()

    def set_capability_table(self, path) -> None:
        """Re-point speculation gating at the capability table *path*.

        Drops the cached :class:`SpeculationGate` and reloads it from
        *path* (fail closed when missing or corrupt). A built pipeline
        swaps executors immediately; an unbuilt one records the choice
        for ``build()``.
        """
        self._capability_table = path
        self._speculation_gate = None
        if self._table_qa is not None:
            self._build_engines()

    def enable_resilience(
        self, config: Optional[ResilienceConfig] = None,
    ) -> ResilienceManager:
        """Install a fresh resilience manager (chaos/deadline mode).

        When the config carries a fault plan, every backend the plan
        names (``relational``, ``document``, ``textstore``, ``slm``,
        ``retriever``) is wrapped in a
        :class:`~repro.resilience.ResilientBackend` proxy and the QA
        engines are re-pointed at the proxies. Intended for *built*
        pipelines: faults injected during ``build()``/ingestion are
        not absorbed, only the answer path degrades gracefully.
        """
        manager = ResilienceManager(self._meter, config)
        self._resilience = manager
        plan = manager.config.fault_plan
        backends = plan.backends if plan is not None else {}
        if "relational" in backends:
            self.db = manager.wrap("relational", self.db, ("execute",))
        if "document" in backends:
            self.doc_store = manager.wrap(
                "document", self.doc_store,
                ("get", "scan", "find_equal", "project"),
            )
        if "textstore" in backends:
            self.text_store = manager.wrap(
                "textstore", self.text_store, ("document", "chunks_of"),
            )
        if "slm" in backends:
            self._slm = manager.wrap(
                "slm", self._slm,
                ("generate", "entails", "tag_entities", "sample_answers"),
            )
        if self._retriever is not None and "retriever" in backends:
            self._retriever = manager.wrap(
                "retriever", self._retriever, ("retrieve",),
            )
        if backends and self._table_qa is not None:
            if self._retriever is not None:
                self._text_qa = TextQAEngine(self._retriever, self._slm)
            self._build_engines()
        return manager

    def answer(self, question: str,
               tenant: Optional[TenantContext] = None) -> Answer:
        """Answer through the hybrid route; never raises on backend faults.

        Comparison questions ("Compare X and Y ...") are decomposed
        into per-entity sub-questions first (paper Section III.C's
        Multi-Entity QA), each answered through the full route. The
        route itself is a compiled :class:`~repro.qa.plan.FederatedPlan`
        interpreted by the shared :class:`~repro.qa.executor.
        PlanExecutor`: every backend call runs under the resilience
        manager — faults retry, budgets bound per-question work, and
        exhausted engines degrade to the other modality (or a typed
        abstention) with the coping story recorded in
        ``metadata["degradation"]``.

        *tenant* (a :class:`~repro.tenancy.TenantContext`, optional)
        carries the request's governance explicitly — the pipeline
        holds no tenant state of its own; ``None`` answers exactly as
        a permissive single-tenant pipeline always has.
        """
        self._check_built()
        started = time.perf_counter()
        work_started = work_now(self._meter)
        with span("qa.answer") as sp:
            with self._resilience.question() as scope:
                answer = self._executor.answer(question, tenant=tenant)
                self._attach_degradation(answer, scope)
            sp.set("route", answer.metadata.get("route", "?"))
            sp.set("abstained", answer.abstained)
            sp.set("degraded", bool(scope.events))
        incr("qa.answer.count")
        if scope.events:
            incr("qa.answer.degraded")
        observe(METRIC_ANSWER_LATENCY, time.perf_counter() - started)
        observe(METRIC_ANSWER_WORK, work_now(self._meter) - work_started)
        return answer

    def compile_plan(self, question: str,
                     include_entropy: bool = False,
                     tenant: Optional[TenantContext] = None
                     ) -> FederatedPlan:
        """Compile *question* into its federated plan without executing.

        With a *tenant* context the compiled stages carry governance
        parameters (RLS/scope tokens), so two tenants with different
        mandates get different plan signatures for the same question.
        """
        self._check_built()
        plan = self._executor.compile(question, include_entropy,
                                      tenant=tenant)
        return self._annotate_shards(plan)

    def _annotate_shards(self, plan: FederatedPlan) -> FederatedPlan:
        """Attach the shard fan-out annotation to a compiled plan.

        Metadata is signature-excluded, so sharded and unsharded plans
        keep identical signatures (and plan-cache keys)."""
        if self._shard_set is None:
            return plan
        return dataclasses.replace(
            plan,
            metadata=plan.metadata
            + (("shards", str(self._shard_set.n_shards)),),
        )

    def explain_plan(self, question: str) -> str:
        """Render the compiled plan DAG(s) for *question*.

        Comparison questions show one compiled plan per decomposed
        sub-question; everything else shows a single DAG with its
        signature digest and static-check verdict.
        """
        self._check_built()
        from .compare import decompose, detect_comparison

        frame = detect_comparison(question, self._slm)
        if frame is None:
            return self._render_plan_annotated(question)
        lines = ["comparison of: %s" % ", ".join(frame.entity_names)]
        for entity, sub_question in decompose(frame):
            lines.append("sub[%s]:" % entity)
            rendered = self._render_plan_annotated(sub_question)
            lines.extend("  " + line for line in rendered.splitlines())
        return "\n".join(lines)

    def _render_plan_annotated(self, question: str) -> str:
        """One plan DAG plus the executor's speculation annotation."""
        plan = self._executor.compile(question)
        lines = [render_plan(plan)]
        lines.extend(
            "  " + line
            for line in self._executor.explain_speculation(plan)
        )
        lines.extend("  " + line for line in self._explain_sharding())
        return "\n".join(lines)

    def _explain_sharding(self) -> List[str]:
        """Shard layout + scatter/prune counters for explain output."""
        if self._shard_set is None:
            return []
        shard_set = self._shard_set
        lines = [
            "sharding: %d shards (seed %d)"
            % (shard_set.n_shards, shard_set.router.seed)
        ]
        for name in self.db.table_names():
            table = self.db.table(name)
            if isinstance(table, ShardedTable):
                lines.append(
                    "shard-key %s: %s (rows per shard: %s)"
                    % (name, table.shard_key,
                       "/".join(str(n) for n in table.shard_sizes()))
                )
        stats = shard_set.stats.snapshot()
        lines.append(
            "shard dispatch: pruned=%d fanout=%d shard_calls=%d"
            % (stats["pruned_calls"], stats["fanout_calls"],
               stats["shard_calls"])
        )
        return lines

    @staticmethod
    def _attach_degradation(answer: Answer, scope: QuestionScope) -> None:
        """Record the scope's absorbed faults on the outgoing answer."""
        if not scope.events:
            return
        already_penalized = bool(answer.metadata.get("degradation"))
        summary = summarize(
            scope.events,
            fallback=answer.metadata.get("fallback_engine"),
            abstained=answer.abstained,
        )
        summary["retries"] = scope.retries
        summary["work_spent"] = scope.spent_work
        answer.metadata["degradation"] = summary
        answer.metadata["degraded"] = True
        if not already_penalized and not answer.abstained:
            answer.confidence = round(
                answer.confidence * CONFIDENCE_PENALTY[summary["severity"]],
                6,
            )

    @staticmethod
    def _cross_check(answer: Answer, candidates: List[Answer]) -> None:
        """Cross-modal grounding check (kept for API stability; the
        implementation lives in :func:`repro.qa.executor.cross_check`,
        which the executor's ``Ground`` stage runs)."""
        cross_check(answer, candidates)

    def explain(self, question: str) -> str:
        """Human-readable trace of how *question* would be answered.

        Shows the comparison decomposition (when detected), the routing
        decision, the synthesized plan (structured path) and the
        retrieval explanation (text path) — the observability surface a
        production deployment needs.
        """
        self._check_built()
        with span("qa.explain"):
            lines = ["question: %s" % question]
            from .compare import decompose, detect_comparison

            frame = detect_comparison(question, self._slm)
            if frame is not None:
                lines.append("comparison of: %s"
                             % ", ".join(frame.entity_names))
                for entity, sub_question in decompose(frame):
                    lines.append("  sub[%s]: %s" % (entity, sub_question))
                    lines.extend(
                        "    " + line
                        for line in self._executor.explain_lines(
                            sub_question)
                    )
                return "\n".join(lines)
            lines.extend(self._executor.explain_lines(question))
            return "\n".join(lines)

    def answer_with_uncertainty(
        self, question: str, n_samples: int = 8,
        temperature: float = 0.9, review_threshold: float = 0.6,
        seed: Optional[int] = None,
    ) -> Tuple[Answer, Optional[EntropyEstimate]]:
        """Answer plus a semantic-entropy reliability estimate.

        SQL-grounded answers are deterministic — they come back with no
        entropy estimate (``None``) and are always servable. Text-path
        answers are re-sampled ``n_samples`` times over the same
        retrieved context; the estimate's normalized entropy above
        ``review_threshold`` flags the answer for human review via
        ``answer.metadata['needs_review']``.
        """
        self._check_built()
        with self._resilience.question() as scope:
            answer = self.answer(question)
            deterministic = any(
                p.startswith("sql:") for p in answer.provenance
            )
            if deterministic or self._text_qa is None or answer.abstained:
                answer.metadata["needs_review"] = False
                return answer, None
            estimate = self._resilience.shield(
                "entropy", "estimate",
                lambda: self._estimate_entropy(
                    question, n_samples, temperature, seed
                ),
            )
            if estimate is None:
                # Entropy sampling faulted: the answer stands but its
                # reliability is unverified — flag for human review.
                answer.metadata["needs_review"] = True
                self._attach_degradation(answer, scope)
                return answer, None
        answer.metadata["semantic_entropy"] = estimate.entropy
        answer.metadata["needs_review"] = (
            estimate.normalized > review_threshold
        )
        return answer, estimate

    def _estimate_entropy(self, question: str, n_samples: int,
                          temperature: float,
                          seed: Optional[int]) -> EntropyEstimate:
        with span("qa.entropy", n_samples=n_samples) as sp:
            contexts = self._executor.retrieve_contexts(question)
            samples = self._slm.sample_answers(
                question, contexts, n_samples=n_samples,
                temperature=temperature, seed=seed,
            )
            estimator = SemanticEntropyEstimator(judge=self._slm.judge)
            estimate = estimator.estimate(samples)
            sp.set("entropy", estimate.entropy)
        return estimate

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    def ingest_incremental(self, docs: Sequence[Tuple[str, str]],
                           regenerate_tables: bool = True) -> None:
        """Add new text documents to a *built* pipeline.

        Only the new documents are chunked and tagged into the existing
        graph (the builder is incremental); generated tables are
        refreshed and the retriever/catalog re-pointed. Curated tables
        and previously indexed chunks are not reprocessed.
        """
        self._check_built()
        if self._builder is None:
            # Pipelines restored from disk have a graph but no live
            # builder; rebuild once, then future increments are cheap.
            self.add_texts(docs)
            self.build()
            docs = []
        new_chunks = []
        for doc_id, text in docs:
            new_chunks.extend(self.text_store.add(doc_id, text))
        if new_chunks:
            self._builder.add_chunks(new_chunks)
        self._graph = self._builder.build()
        if regenerate_tables:
            for name in list(self._generated_tables):
                self._generated_tables.remove(name)
                self.generate_table(name)
        self._index_retriever()
        self._build_engines()
        self._notify_rebuild()
