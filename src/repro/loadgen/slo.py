"""Declarative SLO specs and deterministic gate evaluation.

An SLO spec is a small JSON document of named gates over the load
harness's work-clock measurements — percentile latency ceilings,
error/abstention-rate ceilings, a warm cache-hit floor::

    {
      "name": "ecommerce-steady",
      "p50_work_max": 2000,
      "p95_work_max": 9000,
      "error_rate_max": 0.0,
      "abstain_rate_max": 0.15,
      "answer_hit_rate_min": 0.5
    }

Every metric a gate reads is deterministic (CostMeter work units and
exact counts, never wall time), so a gate verdict is a pure function
of (spec, seed) — the property that lets CI *fail the build* when a
future change makes the hot path slower. Percentiles are exact
nearest-rank over the full per-request sample
(:func:`repro.obs.nearest_rank`), not estimates.

Unknown keys and negative thresholds raise
:class:`~repro.errors.LoadGenError` at parse time, mirroring
:func:`repro.serving.workload.parse_workload`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..errors import LoadGenError

#: gate key -> (measurement key, direction, value kind).
#: direction "max" gates pass when actual <= limit, "min" when >=.
#: kind "work" limits are non-negative work units; "rate" limits live
#: in [0, 1].
GATES: Dict[str, Tuple[str, str, str]] = {
    "p50_work_max": ("work_p50", "max", "work"),
    "p95_work_max": ("work_p95", "max", "work"),
    "p99_work_max": ("work_p99", "max", "work"),
    "total_work_max": ("total_work", "max", "work"),
    "error_rate_max": ("error_rate", "max", "rate"),
    "abstain_rate_max": ("abstain_rate", "max", "rate"),
    "shed_rate_max": ("shed_rate", "max", "rate"),
    # The isolation proof gate: a greedy tenant's tier *requires*
    # shedding (its quota provably bit) while the quiet tenant's tier
    # pins shed_rate_max at 0 — both pass, demonstrating containment.
    "shed_rate_min": ("shed_rate", "min", "rate"),
    "answer_hit_rate_min": ("answer_hit_rate", "min", "rate"),
    "plan_hit_rate_min": ("plan_hit_rate", "min", "rate"),
}


def _parse_gates(data: Dict[str, Any],
                 context: str) -> Tuple[Tuple[str, float], ...]:
    """Validate one gate dict (top level or one tenant's tier)."""
    gates: List[Tuple[str, float]] = []
    for key in sorted(GATES):
        if key not in data:
            continue
        value = data[key]
        if not isinstance(value, (int, float)) \
                or isinstance(value, bool):
            raise LoadGenError(
                "%s gate %r must be a number, got %r"
                % (context, key, value)
            )
        value = float(value)
        if value < 0:
            raise LoadGenError(
                "%s gate %r must be non-negative, got %r"
                % (context, key, value)
            )
        if GATES[key][2] == "rate" and value > 1.0:
            raise LoadGenError(
                "%s gate %r is a rate and must be within [0, 1], "
                "got %r" % (context, key, value)
            )
        gates.append((key, value))
    return tuple(gates)


@dataclass(frozen=True)
class SLOSpec:
    """One parsed, validated SLO document: named gate thresholds.

    ``tenant_gates`` holds per-tenant SLO *tiers*: each entry gates the
    harness's ``tenant.<id>.*`` measurements with the same gate
    vocabulary, so one document can simultaneously demand that a
    greedy tenant **was** shed (``shed_rate_min``) and that a quiet
    tenant never was (``shed_rate_max: 0``).
    """

    name: str
    gates: Tuple[Tuple[str, float], ...]
    tenant_gates: Tuple[Tuple[str, Tuple[Tuple[str, float], ...]],
                        ...] = ()

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SLOSpec":
        """Parse and validate an SLO document.

        Raises :class:`~repro.errors.LoadGenError` on unknown gate
        keys, non-numeric or negative thresholds, rates outside
        [0, 1], or a spec with no gates at all.
        """
        if not isinstance(data, dict):
            raise LoadGenError("an SLO spec must be a JSON object")
        unknown = sorted(set(data) - set(GATES) - {"name", "tenants"})
        if unknown:
            raise LoadGenError(
                "unknown SLO key(s) %s; expected 'name', 'tenants' or "
                "gates %s" % (unknown, ", ".join(sorted(GATES)))
            )
        gates = _parse_gates(data, "SLO")
        tenants_raw = data.get("tenants", {})
        if not isinstance(tenants_raw, dict):
            raise LoadGenError(
                "SLO 'tenants' must be an object of id -> gate tiers")
        tenant_gates: List[Tuple[str, Tuple[Tuple[str, float], ...]]] = []
        for tenant_id in sorted(tenants_raw):
            tier = tenants_raw[tenant_id]
            if not isinstance(tier, dict):
                raise LoadGenError(
                    "SLO tenants[%r] must be a gate object" % tenant_id)
            tier_unknown = sorted(set(tier) - set(GATES))
            if tier_unknown:
                raise LoadGenError(
                    "unknown SLO key(s) %s in tenants[%r]; expected "
                    "gates %s" % (tier_unknown, tenant_id,
                                  ", ".join(sorted(GATES)))
                )
            parsed = _parse_gates(tier, "SLO tenants[%r]" % tenant_id)
            if not parsed:
                raise LoadGenError(
                    "SLO tenants[%r] declares no gates" % tenant_id)
            tenant_gates.append((tenant_id, parsed))
        if not gates and not tenant_gates:
            raise LoadGenError(
                "SLO spec declares no gates; add at least one of %s"
                % ", ".join(sorted(GATES))
            )
        return cls(name=str(data.get("name", "slo")),
                   gates=tuple(gates),
                   tenant_gates=tuple(tenant_gates))

    @classmethod
    def from_json(cls, text: str) -> "SLOSpec":
        """Parse an SLO spec from JSON text."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise LoadGenError("SLO spec is not valid JSON: %s"
                               % exc) from exc
        return cls.from_dict(data)

    @classmethod
    def load(cls, path: str) -> "SLOSpec":
        """Read and parse an SLO spec file."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-ready echo (stable across runs)."""
        out: Dict[str, Any] = {"name": self.name}
        out.update({key: value for key, value in self.gates})
        if self.tenant_gates:
            out["tenants"] = {
                tenant_id: {key: value for key, value in tier}
                for tenant_id, tier in self.tenant_gates
            }
        return out


@dataclass(frozen=True)
class GateResult:
    """One evaluated gate: the limit, the measured value, the verdict."""

    gate: str
    metric: str
    direction: str
    limit: float
    actual: float
    passed: bool

    def render(self) -> str:
        """One aligned text line, e.g. for the CLI verdict table."""
        comparator = "<=" if self.direction == "max" else ">="
        return "%-22s %-16s %10g %s %-10g %s" % (
            self.gate, self.metric, self.actual, comparator, self.limit,
            "PASS" if self.passed else "FAIL",
        )


@dataclass(frozen=True)
class SLOReport:
    """Every gate verdict for one load run."""

    slo: SLOSpec
    results: Tuple[GateResult, ...]

    @property
    def passed(self) -> bool:
        """True when every gate passed."""
        return all(result.passed for result in self.results)

    def failures(self) -> List[GateResult]:
        """The gates that failed, in declaration order."""
        return [result for result in self.results if not result.passed]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready verdict (deterministic field order via sort)."""
        return {
            "slo": self.slo.to_dict(),
            "passed": self.passed,
            "gates": [
                {
                    "gate": result.gate,
                    "metric": result.metric,
                    "direction": result.direction,
                    "limit": result.limit,
                    "actual": result.actual,
                    "passed": result.passed,
                }
                for result in self.results
            ],
        }

    def render(self) -> str:
        """The aligned gate table plus the one-line verdict."""
        lines = [result.render() for result in self.results]
        lines.append("slo %r: %s" % (
            self.slo.name, "PASS" if self.passed else
            "FAIL (%d gate(s) breached)" % len(self.failures()),
        ))
        return "\n".join(lines)


def evaluate(measurements: Mapping[str, Any],
             slo: Optional[SLOSpec]) -> Optional[SLOReport]:
    """Evaluate *measurements* against *slo* (None = no gating).

    Raises :class:`~repro.errors.LoadGenError` when a gated metric is
    missing from the measurements — a gate that silently passes
    because nothing was measured would be worse than no gate.
    """
    if slo is None:
        return None
    results: List[GateResult] = []

    def check(gate: str, limit: float, metric: str,
              label: str) -> None:
        _base, direction, _kind = GATES[gate]
        if metric not in measurements:
            raise LoadGenError(
                "SLO gate %r needs metric %r, absent from the "
                "measurements (%s)"
                % (label, metric, ", ".join(sorted(measurements)))
            )
        actual = float(measurements[metric])
        passed = actual <= limit if direction == "max" else actual >= limit
        results.append(GateResult(
            gate=label, metric=metric, direction=direction,
            limit=limit, actual=actual, passed=passed,
        ))

    for gate, limit in slo.gates:
        check(gate, limit, GATES[gate][0], gate)
    for tenant_id, tier in slo.tenant_gates:
        for gate, limit in tier:
            check(gate, limit, "tenant.%s.%s" % (tenant_id, GATES[gate][0]),
                  "tenants.%s.%s" % (tenant_id, gate))
    return SLOReport(slo=slo, results=tuple(results))
