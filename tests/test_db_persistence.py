"""Tests for database/table JSON persistence."""

import datetime as dt

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import StorageError
from repro.metering import CostMeter
from repro.storage.relational import (
    Database, database_from_json, database_to_json, load_database,
    save_database, table_from_dict, table_to_dict,
)


def make_db():
    db = Database(meter=CostMeter())
    db.execute(
        "CREATE TABLE t (id INT PRIMARY KEY, name TEXT, price FLOAT, "
        "active BOOL, created DATE)"
    )
    db.execute(
        "INSERT INTO t VALUES "
        "(1, 'alpha', 1.5, TRUE, '2024-01-02'), "
        "(2, NULL, NULL, FALSE, NULL)"
    )
    db.execute("CREATE TABLE empty (x INT)")
    return db


class TestDatabasePersistence:
    def test_roundtrip_preserves_rows(self):
        db = make_db()
        clone = database_from_json(database_to_json(db),
                                   meter=CostMeter())
        assert clone.table_names() == db.table_names()
        assert clone.table("t").rows() == db.table("t").rows()

    def test_roundtrip_preserves_types(self):
        clone = database_from_json(database_to_json(make_db()),
                                   meter=CostMeter())
        row = clone.table("t").lookup("id", 1)[0]
        assert isinstance(row[2], float)
        assert row[3] is True
        assert row[4] == dt.date(2024, 1, 2)

    def test_roundtrip_preserves_pk(self):
        clone = database_from_json(database_to_json(make_db()),
                                   meter=CostMeter())
        with pytest.raises(StorageError):
            clone.table("t").insert((1, "dup", None, None, None))

    def test_clone_queryable(self):
        clone = database_from_json(database_to_json(make_db()),
                                   meter=CostMeter())
        assert clone.execute(
            "SELECT COUNT(*) FROM t WHERE active = TRUE"
        ).scalar() == 1

    def test_empty_table_roundtrip(self):
        clone = database_from_json(database_to_json(make_db()),
                                   meter=CostMeter())
        assert len(clone.table("empty")) == 0

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "db.json")
        save_database(make_db(), path)
        clone = load_database(path, meter=CostMeter())
        assert clone.execute("SELECT COUNT(*) FROM t").scalar() == 2

    def test_bad_json(self):
        with pytest.raises(StorageError):
            database_from_json("{nope")
        with pytest.raises(StorageError):
            database_from_json('{"version": 42}')

    def test_malformed_table(self):
        with pytest.raises(StorageError):
            table_from_dict({"name": "t", "columns": [
                {"name": "a", "dtype": "no-such-type"}
            ]})


class TestTableDictRoundtrip:
    @given(rows=st.lists(
        st.tuples(
            st.integers(-100, 100),
            st.one_of(st.none(), st.text(max_size=8)),
            st.one_of(st.none(), st.dates()),
        ),
        max_size=20,
    ))
    @settings(max_examples=30, deadline=None)
    def test_property_roundtrip(self, rows):
        db = Database(meter=CostMeter())
        db.execute("CREATE TABLE p (a INT, b TEXT, d DATE)")
        for row in rows:
            db.table("p").insert(row)
        payload = table_to_dict(db.table("p"))
        clone = table_from_dict(payload, meter=CostMeter())
        assert clone.rows() == db.table("p").rows()
