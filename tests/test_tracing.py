"""Tracing & metrics contract tests.

Pins the properties the observability layer promises: spans strictly
nest, durations are non-negative and children sum to at most their
parent, every pipeline stage emits at least one span on an end-to-end
``answer()``, and per-span cost deltas reconcile exactly with the
system's global :class:`~repro.metering.CostMeter`.
"""

import json

import pytest

from repro.bench import LakeSpec, generate_ecommerce_lake
from repro.bench.runner import build_hybrid_system, run_qa_suite
from repro.metering import CostMeter
from repro.obs import (
    MetricsRegistry, Tracer, active_tracer, aggregate_stages, install,
    render_trace, span, trace_to_json,
)
from repro.obs.tracer import _NULL_SPAN


@pytest.fixture(scope="module")
def traced_run():
    """One traced suite: (tracer, global meter diff, n_queries)."""
    lake = generate_ecommerce_lake(LakeSpec(n_products=6, seed=23))
    system, pipeline = build_hybrid_system(lake, seed=23)
    pairs = lake.qa_pairs(per_kind=2)
    tracer = Tracer(meter=pipeline.meter)
    before = pipeline.meter.snapshot()
    with tracer.activate():
        for pair in pairs:
            system.answer(pair.question)
    return tracer, pipeline.meter.diff(before), len(pairs)


class TestSpanMechanics:
    def test_spans_strictly_nest(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
            with tracer.span("d"):
                pass
        (root,) = tracer.roots
        assert root.name == "a"
        assert [c.name for c in root.children] == ["b", "d"]
        assert [c.name for c in root.children[0].children] == ["c"]

    def test_sibling_roots(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [r.name for r in tracer.roots] == ["first", "second"]
        assert tracer.last.name == "second"

    def test_span_closes_on_exception(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        (root,) = tracer.roots
        assert root.ended is not None
        # The stack unwound: a new span becomes a root, not a child.
        with tracer.span("after"):
            pass
        assert [r.name for r in tracer.roots] == ["boom", "after"]

    def test_attrs_via_set_and_kwargs(self):
        tracer = Tracer()
        with tracer.span("s", k=5) as sp:
            sp.set("extra", "v")
        assert tracer.roots[0].attrs == {"k": 5, "extra": "v"}

    def test_meter_cost_attached(self):
        meter = CostMeter()
        tracer = Tracer(meter=meter)
        with tracer.span("outer"):
            meter.charge("widgets", 2)
            with tracer.span("inner"):
                meter.charge("widgets", 3)
        (outer,) = tracer.roots
        assert outer.cost == {"widgets": 5}
        assert outer.children[0].cost == {"widgets": 3}
        assert outer.self_cost == {"widgets": 2}

    def test_activate_restores_previous(self):
        assert active_tracer() is None
        outer, inner = Tracer(), Tracer()
        with outer.activate():
            assert active_tracer() is outer
            with inner.activate():
                assert active_tracer() is inner
            assert active_tracer() is outer
        assert active_tracer() is None

    def test_module_span_is_noop_without_tracer(self):
        assert active_tracer() is None
        handle = span("anything", k=1)
        assert handle is _NULL_SPAN
        with handle as sp:
            sp.set("ignored", True)  # must not raise

    def test_install_and_reset(self):
        tracer = Tracer()
        install(tracer)
        try:
            with span("visible"):
                pass
        finally:
            install(None)
        assert [r.name for r in tracer.roots] == ["visible"]
        tracer.reset()
        assert tracer.roots == [] and tracer.last is None


class TestEndToEndTrace:
    REQUIRED = (
        "qa.answer", "qa.route", "qa.tableqa", "qa.textqa",
        "qa.cross_check", "retrieval.topology", "sql.execute",
        "sql.plan", "sql.exec", "graph.bfs", "slm.tag",
    )

    def test_every_stage_emits_a_span(self, traced_run):
        tracer, _, _ = traced_run
        names = {node.name for node in tracer.spans()}
        missing = [r for r in self.REQUIRED if r not in names]
        assert not missing, "no spans for stages: %s" % missing

    def test_durations_non_negative_and_children_bounded(self, traced_run):
        tracer, _, _ = traced_run
        for node in tracer.spans():
            assert node.ended is not None
            assert node.duration >= 0.0
            child_sum = sum(c.duration for c in node.children)
            assert child_sum <= node.duration + 1e-6
            assert node.self_duration >= -1e-6

    def test_one_qa_answer_root_per_query(self, traced_run):
        tracer, _, n_queries = traced_run
        roots = [r for r in tracer.roots if r.name == "qa.answer"]
        assert len(roots) == n_queries

    def test_costs_reconcile_with_global_meter(self, traced_run):
        tracer, global_cost, _ = traced_run
        total = {}
        for root in tracer.roots:
            for name, amount in root.cost.items():
                total[name] = total.get(name, 0) + amount
        assert total == {k: v for k, v in global_cost.items() if v}

    def test_self_costs_telescope_to_root(self, traced_run):
        tracer, _, _ = traced_run
        for root in tracer.roots:
            summed = {}
            for node in root.walk():
                for name, amount in node.self_cost.items():
                    summed[name] = summed.get(name, 0) + amount
            assert {k: v for k, v in summed.items() if v} == \
                {k: v for k, v in root.cost.items() if v}


class TestExporters:
    def test_trace_to_json_shape(self, traced_run):
        tracer, _, _ = traced_run
        data = json.loads(trace_to_json(tracer))
        assert isinstance(data, list) and data
        node = data[0]
        assert node["name"] == "qa.answer"
        assert node["duration_s"] >= 0.0
        assert isinstance(node.get("children", []), list)

    def test_render_trace_rows(self, traced_run):
        tracer, _, _ = traced_run
        text = render_trace(tracer)
        lines = text.splitlines()
        assert lines[0].startswith("span")
        assert len(lines) == 1 + sum(1 for _ in tracer.spans())
        assert "qa.answer" in text and "ms" in text

    def test_render_trace_empty(self):
        assert render_trace(Tracer()) == "(no spans recorded)"

    def test_aggregate_stages(self, traced_run):
        tracer, global_cost, n_queries = traced_run
        stages = aggregate_stages(tracer)
        assert stages["qa.answer"]["calls"] == n_queries
        total_seconds = sum(s["seconds"] for s in stages.values())
        root_seconds = sum(r.duration for r in tracer.roots)
        assert total_seconds == pytest.approx(root_seconds, rel=1e-6)
        merged = {}
        for entry in stages.values():
            for name, amount in entry["cost"].items():
                merged[name] = merged.get(name, 0) + amount
        assert {k: v for k, v in merged.items() if v} == \
            {k: v for k, v in global_cost.items() if v}


class TestMetrics:
    def test_counter(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.counter("x").inc(4)
        assert registry.snapshot()["counters"]["x"] == 5
        with pytest.raises(ValueError):
            registry.counter("x").inc(-1)

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        for v in [1.0, 2.0, 3.0, 4.0]:
            registry.histogram("lat").observe(v)
        summary = registry.snapshot()["histograms"]["lat"]
        assert summary["count"] == 4
        assert summary["mean"] == pytest.approx(2.5)
        assert summary["min"] == 1.0 and summary["max"] == 4.0
        assert summary["p50"] in (2.0, 3.0)

    def test_quantile_bounds(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        assert hist.quantile(0.5) is None
        hist.observe(7.0)
        assert hist.quantile(0.0) == 7.0 and hist.quantile(1.0) == 7.0
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_render_and_json(self):
        registry = MetricsRegistry()
        registry.counter("a.b").inc(2)
        registry.histogram("c.d").observe(0.5)
        text = registry.render()
        assert "a.b" in text and "c.d" in text
        parsed = json.loads(registry.to_json())
        assert parsed["counters"]["a.b"] == 2
        registry.reset()
        assert registry.snapshot() == {"counters": {}, "histograms": {}}

    def test_pipeline_records_global_metrics(self, traced_run):
        from repro.obs.metrics import REGISTRY

        snapshot = REGISTRY.snapshot()
        assert snapshot["counters"]["qa.answer.count"] > 0
        assert snapshot["counters"]["sql.statements"] > 0
        assert snapshot["histograms"]["qa.answer.latency"]["count"] > 0


class TestBenchRunner:
    def test_run_qa_suite_with_repeats_and_trace(self):
        lake = generate_ecommerce_lake(LakeSpec(n_products=4, seed=29))
        system, _ = build_hybrid_system(lake, seed=29)
        pairs = lake.qa_pairs(per_kind=1)
        result = run_qa_suite(system, pairs, warmup=1, repeats=2,
                              trace=True)
        assert result.total_seconds > 0.0
        assert result.stages, "trace=True must populate stages"
        assert result.stages["qa.answer"]["calls"] == len(pairs)
        plain = run_qa_suite(system, pairs)
        assert plain.stages == {}
        assert plain.per_kind_accuracy == result.per_kind_accuracy

    def test_run_qa_suite_validates_args(self):
        lake = generate_ecommerce_lake(LakeSpec(n_products=4, seed=29))
        system, _ = build_hybrid_system(lake, seed=29)
        pairs = lake.qa_pairs(per_kind=1)
        with pytest.raises(ValueError):
            run_qa_suite(system, pairs, warmup=-1)
        with pytest.raises(ValueError):
            run_qa_suite(system, pairs, repeats=0)
