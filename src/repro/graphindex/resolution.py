"""Entity resolution across sources (alias merging).

Heterogeneous sources name the same entity differently: the catalog
says "Alpha Widget", a review says "the Alpha Widget 2024", a log says
"ALPHA-WIDGET". Unresolved, the graph holds disconnected duplicates and
cross-modal queries silently miss evidence. This module finds and
merges alias entity nodes:

* **token-subset aliases** — one name's content tokens are a subset of
  the other's ("alpha widget" ⊂ "alpha widget 2024");
* **near-duplicate surfaces** — high Jaccard overlap of stemmed tokens
  plus (optionally) embedding cosine agreement.

The shorter/earlier name survives as canonical; merged labels are kept
in the survivor's ``payload["aliases"]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..slm.embeddings import EmbeddingModel
from ..text.stemmer import stem
from ..text.stopwords import STOPWORDS
from ..text.tokenizer import words
from .hetgraph import HeterogeneousGraph
from .nodes import NODE_ENTITY

_GENERIC_STEMS = frozenset(
    stem(w) for w in ("2023", "2024", "2025", "model", "edition", "new",
                      "series", "version", "pro", "plus")
)


def _alias_tokens(label: str) -> Set[str]:
    return {
        stem(w) for w in words(label)
        if w not in STOPWORDS and stem(w) not in _GENERIC_STEMS
    }


@dataclass(frozen=True)
class AliasPair:
    """A proposed merge: drop → keep, with the evidence score."""

    keep: str
    drop: str
    score: float


def find_alias_pairs(graph: HeterogeneousGraph,
                     min_overlap: float = 0.99,
                     embedder: Optional[EmbeddingModel] = None,
                     min_cosine: float = 0.75) -> List[AliasPair]:
    """Propose entity merges, highest-confidence first.

    A pair qualifies when one label's informative tokens are a
    (non-empty) subset of the other's, or their Jaccard overlap reaches
    *min_overlap*. With an *embedder*, candidates must also agree by
    cosine — guarding against "alpha widget" vs "alpha cable" when the
    informative token sets accidentally align.
    """
    entities = graph.nodes(NODE_ENTITY)
    tokens = {n.node_id: _alias_tokens(n.label) for n in entities}
    proposals: List[AliasPair] = []
    for i, a in enumerate(entities):
        ta = tokens[a.node_id]
        if not ta:
            continue
        for b in entities[i + 1:]:
            tb = tokens[b.node_id]
            if not tb or ta == tb and a.label == b.label:
                continue
            union = ta | tb
            inter = ta & tb
            if not inter:
                continue
            jaccard = len(inter) / len(union)
            subset = ta <= tb or tb <= ta
            if not subset and jaccard < min_overlap:
                continue
            if embedder is not None:
                cosine = embedder.similarity(a.label, b.label)
                if cosine < min_cosine:
                    continue
                score = cosine
            else:
                score = jaccard if not subset else max(jaccard, 0.9)
            # Keep the shorter (more canonical) name.
            keep, drop = (a, b) if len(a.label) <= len(b.label) else (b, a)
            proposals.append(AliasPair(keep.node_id, drop.node_id, score))
    proposals.sort(key=lambda p: (-p.score, p.keep, p.drop))
    return proposals


def resolve_aliases(graph: HeterogeneousGraph,
                    min_overlap: float = 0.99,
                    embedder: Optional[EmbeddingModel] = None,
                    min_cosine: float = 0.75) -> int:
    """Merge all proposed alias pairs in place; returns merges applied.

    Pairs are applied best-first; chains resolve transitively (if B
    merged into A already, a later C→B proposal retargets to A).
    """
    proposals = find_alias_pairs(graph, min_overlap, embedder, min_cosine)
    redirect: Dict[str, str] = {}

    def resolve(node_id: str) -> str:
        while node_id in redirect:
            node_id = redirect[node_id]
        return node_id

    merges = 0
    for pair in proposals:
        keep = resolve(pair.keep)
        drop = resolve(pair.drop)
        if keep == drop or not graph.has_node(drop):
            continue
        graph.merge_nodes(keep, drop)
        redirect[drop] = keep
        merges += 1
    return merges
