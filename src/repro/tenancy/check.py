"""``check_tenancy``: the compile-time governance gate.

A ``check_plan``-style static pass over a compiled federated plan: it
re-derives, from the :class:`~repro.tenancy.registry.TenantContext`
alone, exactly which governance parameters every stage must carry, and
rejects any plan that deviates — a table stage missing its mandated
RLS conjunct, a text stage missing its document scope, a stage carrying
*another* tenant's predicates (a cross-tenant replay), or a route that
binds a table outside the tenant's catalog.

The pass is deliberately duck-typed over the plan IR (stages expose
``kind`` and ``params``) so the tenancy layer stays below ``qa`` in
the import DAG; the stage-kind vocabulary is pinned here and asserted
against ``repro.qa.plan`` by the test suite.

Fail-closed contract (same spirit as the PR 8 ``SpeculationGate``):
the executor runs this pass on every governed request and converts any
error diagnostic into a typed abstention — an ungoverned plan never
reaches an engine, and a governance bug degrades availability, never
isolation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from .registry import TenantContext

#: Stage kinds that touch relational tables (must carry RLS).
TABLE_KINDS = ("SynthesizeSpec", "ExecuteTable")

#: Stage kinds that touch the document/text corpus (must carry scope).
TEXT_KINDS = ("RetrieveTopology", "ExecuteText")

#: The routing stage kind (its bound tables face the catalog check).
ROUTE_KIND = "Route"

#: The stage-parameter keys compile_plan injects and this pass demands.
PARAM_RLS = "rls"
PARAM_SCOPE = "scope"

#: Route-stage parameter naming the tables the router bound.
PARAM_BOUND_TABLES = "bound_tables"

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"


@dataclass(frozen=True)
class TenancyDiagnostic:
    """One finding from the governance pass (mirrors PlanDiagnostic)."""

    code: str
    severity: str
    message: str

    def render(self) -> str:
        """Canonical one-line ``[severity] code: message`` form."""
        return "[%s] %s: %s" % (self.severity, self.code, self.message)


def _param(stage, key: str) -> Optional[str]:
    for name, value in stage.params:
        if name == key:
            return value
    return None


def check_tenancy(plan, context: TenantContext) -> List[TenancyDiagnostic]:
    """Every governance violation in *plan* under *context*.

    An empty list means the plan is exactly as governed as the tenant
    mandates — no more (foreign predicates are rejected too) and no
    less. Callers treat any :data:`SEVERITY_ERROR` finding as fatal.
    """
    findings: List[TenancyDiagnostic] = []
    rls_token = context.rls_token()
    scope_token = context.scope_token()
    for stage in plan.stages:
        if stage.kind in TABLE_KINDS:
            _check_token(findings, stage, PARAM_RLS, rls_token,
                         "tenancy-missing-rls", "tenancy-stale-rls",
                         context.tenant_id)
        elif stage.kind in TEXT_KINDS:
            _check_token(findings, stage, PARAM_SCOPE, scope_token,
                         "tenancy-missing-scope", "tenancy-stale-scope",
                         context.tenant_id)
        elif stage.kind == ROUTE_KIND and context.tables:
            bound = _param(stage, PARAM_BOUND_TABLES) or ""
            for table in filter(None, bound.split(",")):
                if not context.table_visible(table):
                    findings.append(TenancyDiagnostic(
                        "tenancy-invisible-table", SEVERITY_ERROR,
                        "route binds table %r outside tenant %r's "
                        "catalog" % (table, context.tenant_id)))
    return findings


def _check_token(findings: List[TenancyDiagnostic], stage, key: str,
                 expected: str, missing_code: str, stale_code: str,
                 tenant_id: str) -> None:
    actual = _param(stage, key)
    if not expected:
        if actual:
            # A governed param under a permissive tenant means the plan
            # was compiled for somebody else — reject the replay.
            findings.append(TenancyDiagnostic(
                stale_code, SEVERITY_ERROR,
                "stage %r carries foreign %s %r under permissive "
                "tenant %r" % (stage.id, key, actual, tenant_id)))
        return
    if actual is None:
        findings.append(TenancyDiagnostic(
            missing_code, SEVERITY_ERROR,
            "stage %r lacks the mandated %s conjunct for tenant %r"
            % (stage.id, key, tenant_id)))
    elif actual != expected:
        findings.append(TenancyDiagnostic(
            stale_code, SEVERITY_ERROR,
            "stage %r carries %s %r but tenant %r mandates %r"
            % (stage.id, key, actual, tenant_id, expected)))


def tenancy_errors(
    findings: Iterable[TenancyDiagnostic],
) -> List[TenancyDiagnostic]:
    """Just the fatal findings (the executor's fail-closed input)."""
    return [f for f in findings if f.severity == SEVERITY_ERROR]
