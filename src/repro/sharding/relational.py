"""Entity-keyed sharded relational table facade.

:class:`ShardedTable` is a drop-in :class:`~repro.storage.relational.table.Table`
that partitions its rows over per-shard child tables by a deterministic
hash of the shard-key column (:class:`~.router.ShardRouter`). The facade
keeps the *global* row-id space and the *global* indexes (primary-key
uniqueness is a cross-shard invariant), while every read or write of
shard-resident data runs under that shard's ``shard:<i>`` resilience
guard via the owning :class:`~.shardset.ShardSet`.

Byte-equivalence contract
-------------------------
Sharded execution must be indistinguishable from unsharded execution on
the answer bytes, which pins three behaviours:

* **Merge order** — scatter reads merge by global row id (the canonical
  row key), never by shard arrival order.
* **Work clock** — the unsharded path charges ``rows_scanned`` for every
  row a scan touches, and degraded answers embed the work clock in their
  metadata. A pruned scan therefore charges the *skipped* shards' row
  counts in one lump: the clock is a semantic contract, not a profiler.
* **Error text** — primary-key and missing-row errors reproduce the base
  table's messages exactly.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import StorageError
from ..metering import ROWS_SCANNED
from ..storage.relational.index import HashIndex, make_index
from ..storage.relational.schema import TableSchema
from ..storage.relational.table import Table
from .shardset import ShardSet

#: The serving-layer store kind this facade reports writes/touches under.
KIND_RELATIONAL = "relational"


class ShardedTable(Table):
    """A :class:`Table` partitioned over per-shard children.

    The facade's own ``_rows`` dict stays empty — rows live in the
    children — but its ``_indexes`` are global, mapping values to global
    row ids exactly like the unsharded table's, so the planner sees the
    same index surface (``index_on``) in both modes.
    """

    def __init__(self, schema: TableSchema, shard_set: ShardSet,
                 meter=None, key_column: Optional[str] = None):
        # Placeholders first: base __init__ builds the PK index through
        # our create_index override, which iterates the children.
        self._children: List[Table] = []
        self._owner: Dict[int, int] = {}
        self._shard_set = shard_set
        super().__init__(schema, meter=meter)
        self._children = [
            Table(schema, meter=self._meter)
            for _ in range(shard_set.n_shards)
        ]
        key = key_column or schema.primary_key or schema.column_names()[0]
        self._key_column = key.lower()
        self._key_pos = schema.index_of(self._key_column)

    # ------------------------------------------------------------------
    # Shard-map surface
    # ------------------------------------------------------------------
    @property
    def shard_key(self) -> str:
        """The column whose value decides a row's shard."""
        return self._key_column

    @property
    def n_shards(self) -> int:
        """How many shards this table partitions over."""
        return len(self._children)

    def shard_sizes(self) -> List[int]:
        """Per-shard row counts (for the committed shard map and tests)."""
        return [len(child._rows) for child in self._children]

    def set_shard_key(self, column: str) -> None:
        """Re-key the table on *column*, rebalancing rows across shards.

        Global row ids are preserved — only ownership moves. Charge-free:
        re-keying is a build-time admin operation with no unsharded
        counterpart, so it must not move the work clock.
        """
        column = column.lower()
        pos = self.schema.index_of(column)
        if column == self._key_column:
            return
        self._key_column = column
        self._key_pos = pos
        rows: Dict[int, Tuple[Any, ...]] = {}
        for child in self._children:
            rows.update(child._rows)
        self._children = [
            Table(self.schema, meter=self._meter)
            for _ in range(self._shard_set.n_shards)
        ]
        self._owner = {}
        router = self._shard_set.router
        for row_id in sorted(rows):
            row = rows[row_id]
            owner = router.shard_of(row[pos])
            child = self._children[owner]
            child._next_id = row_id
            child.insert(row)
            self._owner[row_id] = owner

    def _owner_of_row(self, row: Sequence[Any]) -> int:
        return self._shard_set.router.shard_of(row[self._key_pos])

    # ------------------------------------------------------------------
    # Writes (facade invariants first, then guarded shard placement)
    # ------------------------------------------------------------------
    def insert(self, row: Sequence[Any], coerce: bool = False) -> int:
        if coerce:
            validated = self.schema.coerce_row(row)
        else:
            validated = self.schema.validate_row(row)
        pk = self.schema.primary_key
        if pk is not None:
            pk_value = validated[self.schema.index_of(pk)]
            if pk_value is None:
                raise StorageError("primary key %r cannot be NULL" % pk)
            if self._indexes[pk].lookup(pk_value):
                raise StorageError(
                    "duplicate primary key %r in table %r"
                    % (pk_value, self.schema.name)
                )
        row_id = self._next_id
        owner = self._owner_of_row(validated)
        self._place(owner, row_id, validated)
        # Commit facade state only after the guarded placement succeeds.
        self._next_id = row_id + 1
        for column, index in self._indexes.items():
            index.insert(validated[self.schema.index_of(column)], row_id)
        self._owner[row_id] = owner
        self._shard_set.note_write(KIND_RELATIONAL, owner)
        return row_id

    def _place(self, owner: int, row_id: int,
               validated: Tuple[Any, ...]) -> None:
        child = self._children[owner]

        def put() -> None:
            child._next_id = row_id
            child.insert(validated)

        self._shard_set.guarded(owner, "insert", put)

    def update(self, row_id: int, row: Sequence[Any],
               coerce: bool = False) -> None:
        owner = self._owner.get(row_id)
        if owner is None:
            raise StorageError("no row %d in %r" % (row_id, self.schema.name))
        old = self._children[owner]._rows[row_id]
        if coerce:
            validated = self.schema.coerce_row(row)
        else:
            validated = self.schema.validate_row(row)
        pk = self.schema.primary_key
        if pk is not None:
            pk_pos = self.schema.index_of(pk)
            new_pk = validated[pk_pos]
            if new_pk is None:
                raise StorageError("primary key %r cannot be NULL" % pk)
            if new_pk != old[pk_pos] and self._indexes[pk].lookup(new_pk):
                raise StorageError(
                    "duplicate primary key %r in table %r"
                    % (new_pk, self.schema.name)
                )
        new_owner = self._owner_of_row(validated)
        if new_owner == owner:
            self._shard_set.guarded(
                owner, "update",
                lambda: self._children[owner].update(row_id, validated),
            )
        else:
            # Cross-shard migration: one guarded call on the new owner
            # performs the whole move, so an injected fault leaves both
            # shards untouched rather than duplicating the row.
            def migrate() -> None:
                self._children[owner].delete(row_id)
                child = self._children[new_owner]
                child._next_id = row_id
                child.insert(validated)

            self._shard_set.guarded(new_owner, "update", migrate)
            self._owner[row_id] = new_owner
        for column, index in self._indexes.items():
            pos = self.schema.index_of(column)
            index.remove(old[pos], row_id)
            index.insert(validated[pos], row_id)
        self._shard_set.note_write(KIND_RELATIONAL, owner)
        if new_owner != owner:
            self._shard_set.note_write(KIND_RELATIONAL, new_owner)

    def delete(self, row_id: int) -> None:
        owner = self._owner.get(row_id)
        if owner is None:
            raise StorageError("no row %d in %r" % (row_id, self.schema.name))
        row = self._children[owner]._rows[row_id]
        self._shard_set.guarded(
            owner, "delete", lambda: self._children[owner].delete(row_id)
        )
        for column, index in self._indexes.items():
            index.remove(row[self.schema.index_of(column)], row_id)
        del self._owner[row_id]
        self._shard_set.note_write(KIND_RELATIONAL, owner)

    # ------------------------------------------------------------------
    # Indexes (global: values map to global row ids)
    # ------------------------------------------------------------------
    def create_index(self, column: str, kind: str = "hash") -> None:
        column = column.lower()
        self.schema.index_of(column)  # raises if unknown
        if column in self._indexes and kind == "hash" and isinstance(
            self._indexes[column], HashIndex
        ):
            return
        index = make_index(kind, column)
        pos = self.schema.index_of(column)
        for child in self._children:
            for row_id, row in child._rows.items():
                index.insert(row[pos], row_id)
        self._indexes[column] = index

    # ------------------------------------------------------------------
    # Reads (guarded scatter-gather, deterministic merge by row id)
    # ------------------------------------------------------------------
    def get(self, row_id: int) -> Tuple[Any, ...]:
        owner = self._owner.get(row_id)
        if owner is None:
            self._shard_set.note_touch(KIND_RELATIONAL, None)
            raise StorageError(
                "no row %d in %r" % (row_id, self.schema.name)
            )
        self._shard_set.note_touch(KIND_RELATIONAL, [owner])
        return self._shard_set.guarded(
            owner, "get", lambda: self._children[owner].get(row_id)
        )

    def scan(self) -> Iterator[Tuple[int, Tuple[Any, ...]]]:
        self._shard_set.note_fanout(KIND_RELATIONAL, len(self._children))
        self._shard_set.note_touch(KIND_RELATIONAL, None)
        merged: List[Tuple[int, Tuple[Any, ...]]] = []
        for index, child in enumerate(self._children):
            merged.extend(self._shard_set.guarded(
                index, "scan", lambda c=child: list(c.scan())
            ))
        merged.sort(key=lambda pair: pair[0])
        for pair in merged:
            yield pair

    def scan_matching(
        self, test: Callable[[Tuple[Any, ...]], bool],
        equals: Optional[Iterable[Tuple[str, Any]]] = None,
    ) -> Iterator[Tuple[int, Tuple[Any, ...]]]:
        """Filtered scan with per-shard predicate pushdown.

        When an equality hint binds the shard key, only the owning shard
        is scanned (the prune fast path); the skipped shards' row counts
        are charged in one lump so the work clock matches the unsharded
        scan byte-for-byte.
        """
        owner = self._prune_owner(equals)
        if owner is None:
            self._shard_set.note_fanout(KIND_RELATIONAL, len(self._children))
            self._shard_set.note_touch(KIND_RELATIONAL, None)
            merged: List[Tuple[int, Tuple[Any, ...]]] = []
            for index, child in enumerate(self._children):
                merged.extend(self._shard_set.guarded(
                    index, "scan",
                    lambda c=child: [p for p in c.scan() if test(p[1])],
                ))
            merged.sort(key=lambda pair: pair[0])
            for pair in merged:
                yield pair
            return
        self._shard_set.note_fanout(KIND_RELATIONAL, 1)
        self._shard_set.note_touch(KIND_RELATIONAL, [owner])
        child = self._children[owner]
        matched = self._shard_set.guarded(
            owner, "scan", lambda: [p for p in child.scan() if test(p[1])]
        )
        skipped = len(self._owner) - len(child._rows)
        if skipped:
            self._meter.charge(ROWS_SCANNED, skipped)
        for pair in matched:
            yield pair

    def _prune_owner(
        self, equals: Optional[Iterable[Tuple[str, Any]]],
    ) -> Optional[int]:
        if equals is None:
            return None
        for column, value in equals:
            if column.lower() == self._key_column:
                return self._shard_set.router.shard_of(value)
        return None

    def lookup(self, column: str, value: Any) -> List[Tuple[Any, ...]]:
        column = column.lower()
        index = self._indexes.get(column)
        if isinstance(index, HashIndex):
            rids = index.lookup(value)
            if column == self._key_column:
                # All hits live on the key's owning shard; touch it even
                # on a miss so a later insert of this key invalidates.
                owner = self._shard_set.router.shard_of(value)
                self._shard_set.note_fanout(KIND_RELATIONAL, 1)
                self._shard_set.note_touch(KIND_RELATIONAL, [owner])
                if not rids:
                    return []
                child = self._children[owner]
                return self._shard_set.guarded(
                    owner, "lookup",
                    lambda: [child._rows[rid] for rid in rids],
                )
            # Non-key column: hits span shards, and a future insert into
            # any shard could match — the dependency is all shards.
            self._shard_set.note_touch(KIND_RELATIONAL, None)
            if not rids:
                return []
            owners = sorted({self._owner[rid] for rid in rids})
            self._shard_set.note_fanout(KIND_RELATIONAL, len(owners))
            fetched: Dict[int, Tuple[Any, ...]] = {}
            for owner in owners:
                child = self._children[owner]
                mine = [rid for rid in rids if self._owner[rid] == owner]
                rows = self._shard_set.guarded(
                    owner, "lookup",
                    lambda c=child, m=mine: [c._rows[rid] for rid in m],
                )
                fetched.update(zip(mine, rows))
            return [fetched[rid] for rid in rids]
        pos = self.schema.index_of(column)
        return [row for _, row in self.scan() if row[pos] == value]

    def __len__(self) -> int:
        return len(self._owner)

    def clone(self) -> "Table":
        twin = ShardedTable.__new__(ShardedTable)
        twin.schema = self.schema
        twin._rows = {}
        twin._next_id = self._next_id
        twin._meter = self._meter
        twin._shard_set = self._shard_set
        twin._key_column = self._key_column
        twin._key_pos = self._key_pos
        twin._children = [child.clone() for child in self._children]
        twin._owner = dict(self._owner)
        twin._indexes = {}
        for column, index in self._indexes.items():
            kind = "hash" if isinstance(index, HashIndex) else "sorted"
            new_index = make_index(kind, column)
            pos = self.schema.index_of(column)
            for child in twin._children:
                for row_id, row in child._rows.items():
                    new_index.insert(row[pos], row_id)
            twin._indexes[column] = new_index
        return twin

    def describe_sharding(self) -> Dict[str, Any]:
        """JSON-ready shard map entry (committed beside the catalog)."""
        return {
            "table": self.schema.name,
            "key": self._key_column,
            "shard_sizes": self.shard_sizes(),
            "router": self._shard_set.describe(),
        }
