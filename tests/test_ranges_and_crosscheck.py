"""Tests for range-filter synthesis and cross-engine consistency."""

import pytest

from repro.metering import CostMeter
from repro.qa import HybridQAPipeline
from repro.qa.answer import Answer
from repro.qa.pipeline import HybridQAPipeline as _Pipe
from repro.semql import (
    FilterSpec, OperatorSynthesizer, QueryCompiler, SchemaCatalog, analyze,
)
from repro.slm import SLMConfig, SmallLanguageModel
from repro.storage.relational import Database
from repro.text.ner import TYPE_PRODUCT, Gazetteer


class TestRangeIntents:
    def test_between_parsed_as_two_comparisons(self):
        frame = analyze("sales between 100 and 200")
        ops = sorted((c.op, c.value) for c in frame.comparisons)
        assert ops == [("<=", 200.0), (">=", 100.0)]

    def test_between_percent(self):
        frame = analyze("an increase between 5% and 15%")
        assert all(c.is_percent for c in frame.comparisons)

    def test_between_reversed_bounds_normalized(self):
        frame = analyze("amounts between 200 and 100")
        ops = dict((c.op, c.value) for c in frame.comparisons)
        assert ops[">="] == 100.0 and ops["<="] == 200.0

    def test_range_does_not_double_count(self):
        frame = analyze("sales between 100 and 200")
        assert len(frame.comparisons) == 2

    def test_plain_comparison_still_works(self):
        frame = analyze("sales above 150")
        assert [(c.op, c.value) for c in frame.comparisons] == \
            [(">", 150.0)]


@pytest.fixture
def setting():
    db = Database(meter=CostMeter())
    db.execute("CREATE TABLE sales (sid INT PRIMARY KEY, quarter TEXT, "
               "amount FLOAT)")
    db.execute("INSERT INTO sales VALUES (1, 'q1', 80.0), "
               "(2, 'q1', 150.0), (3, 'q2', 190.0), (4, 'q2', 250.0)")
    catalog = SchemaCatalog(db)
    catalog.register_synonym("sales", "sales", "amount")
    catalog.build_value_index()
    return OperatorSynthesizer(catalog), QueryCompiler(db)


class TestRangeSynthesis:
    def test_count_in_range(self, setting):
        synthesizer, compiler = setting
        spec = synthesizer.synthesize(
            "Count sales with an amount between 100 and 200"
        )
        assert FilterSpec("amount", ">=", 100.0) in spec.filters
        assert FilterSpec("amount", "<=", 200.0) in spec.filters
        assert compiler.execute(spec).scalar() == 2

    def test_sum_in_range(self, setting):
        synthesizer, compiler = setting
        spec = synthesizer.synthesize(
            "Find the total sales between 100 and 260"
        )
        assert compiler.execute(spec).scalar() == pytest.approx(590.0)


def make_pipeline():
    gaz = Gazetteer()
    gaz.add(TYPE_PRODUCT, ["Alpha Widget"])
    slm = SmallLanguageModel(SLMConfig(seed=0), gazetteer=gaz,
                             meter=CostMeter())
    pipe = HybridQAPipeline(slm, meter=CostMeter())
    pipe.add_sql([
        "CREATE TABLE products (pid INT PRIMARY KEY, name TEXT)",
        "INSERT INTO products VALUES (1, 'Alpha Widget')",
    ])
    pipe.declare_entity_columns("products", ["name"])
    pipe.add_texts([
        ("rev1", "Satisfaction with the Alpha Widget increased 12% in "
                 "Q2 2024."),
    ])
    pipe.generate_table("facts")
    pipe.build()
    return pipe


class TestCrossCheck:
    def test_agreement_boosts_confidence(self):
        pipe = make_pipeline()
        # Hybrid-routed question where the generated table and the text
        # path yield the same number.
        answer = pipe.answer(
            "How much did satisfaction with the Alpha Widget change "
            "in Q2 2024?"
        )
        if answer.metadata.get("cross_check") == "agree":
            assert answer.confidence >= 0.9

    def test_cross_check_static_agree(self):
        a = Answer(text="12", value=12.0, confidence=0.8, grounded=True)
        b = Answer(text="It is 12%.", value=12.0, confidence=0.5,
                   grounded=True)
        _Pipe._cross_check(a, [a, b])
        assert a.metadata["cross_check"] == "agree"
        assert a.confidence == pytest.approx(0.88)

    def test_cross_check_static_disagree(self):
        a = Answer(text="12", value=12.0, confidence=0.8, grounded=True)
        b = Answer(text="It is 40%.", value=40.0, confidence=0.5,
                   grounded=True)
        _Pipe._cross_check(a, [a, b])
        assert a.metadata["cross_check"] == "disagree"

    def test_cross_check_skips_non_numeric(self):
        a = Answer(text="alpha", value="alpha", confidence=0.8)
        b = Answer(text="beta", value="beta", confidence=0.5)
        _Pipe._cross_check(a, [a, b])
        assert "cross_check" not in a.metadata

    def test_cross_check_single_candidate_noop(self):
        a = Answer(text="12", value=12.0, confidence=0.8)
        _Pipe._cross_check(a, [a])
        assert "cross_check" not in a.metadata
