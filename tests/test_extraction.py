"""Tests for normalization, attribute extraction and table generation."""

import datetime as dt

import pytest

from repro.errors import ExtractionError
from repro.metering import CostMeter
from repro.extraction import (
    ATTR_CHANGE_PERCENT, ATTR_DATE, ATTR_DIRECTION, ATTR_METRIC,
    ATTR_QUARTER, ATTR_SUBJECT, ATTR_YEAR, AttributeExtractor,
    PROVENANCE_COLUMN, TableGenerator, detect_direction, facts_to_rows,
    infer_fact_schema, infer_value_type, normalize_date, normalize_value,
    score_generated_cells, unify_types,
)
from repro.extraction.attributes import ExtractedFact
from repro.slm import SLMConfig, SmallLanguageModel
from repro.storage.relational import Database
from repro.storage.types import DataType
from repro.text.ner import TYPE_PRODUCT, Gazetteer
from repro.text.patterns import KIND_MONEY, KIND_PERCENT, KIND_QUARTER


def make_slm(**config):
    gaz = Gazetteer()
    gaz.add(TYPE_PRODUCT, ["Alpha Widget", "Beta Gadget"])
    return SmallLanguageModel(SLMConfig(**config), gazetteer=gaz,
                              meter=CostMeter())


class TestNormalize:
    def test_normalize_date_iso(self):
        assert normalize_date("2024-03-15") == dt.date(2024, 3, 15)

    def test_normalize_date_text(self):
        assert normalize_date("March 15, 2024") == dt.date(2024, 3, 15)
        assert normalize_date("Mar 1 2024") == dt.date(2024, 3, 1)

    def test_normalize_date_failure(self):
        assert normalize_date("not a date") is None
        assert normalize_date("February 31, 2024") is None

    def test_normalize_percent_value(self):
        value, dtype = normalize_value(KIND_PERCENT, "20%")
        assert value == 20.0 and dtype is DataType.FLOAT

    def test_normalize_money_value(self):
        value, dtype = normalize_value(KIND_MONEY, "$1.5 million")
        assert value == 1.5e6 and dtype is DataType.FLOAT

    def test_normalize_quarter_value(self):
        value, dtype = normalize_value(KIND_QUARTER, "second quarter of 2024")
        assert value == "Q2 2024" and dtype is DataType.TEXT

    def test_detect_direction(self):
        assert detect_direction("sales rose sharply") == "up"
        assert detect_direction("revenue declined") == "down"
        assert detect_direction("weather was mild") is None


class TestAttributeExtraction:
    def extract_one(self, sentence):
        return AttributeExtractor(make_slm()).extract_sentence(sentence)

    def test_paper_example(self):
        fact = self.extract_one("Q2 sales increased 20%")
        assert fact.get(ATTR_QUARTER) == "Q2"
        assert fact.get(ATTR_METRIC) == "sales"
        assert fact.get(ATTR_CHANGE_PERCENT) == 20.0
        assert fact.get(ATTR_DIRECTION) == "up"

    def test_subject_entity(self):
        fact = self.extract_one(
            "Alpha Widget sales increased 20% in Q2 2024"
        )
        assert fact.get(ATTR_SUBJECT) == "alpha widget"
        assert fact.get(ATTR_YEAR) == 2024

    def test_negative_change_for_decline(self):
        fact = self.extract_one("Beta Gadget sales decreased 15% in Q3")
        assert fact.get(ATTR_CHANGE_PERCENT) == -15.0
        assert fact.get(ATTR_DIRECTION) == "down"

    def test_date_extraction(self):
        fact = self.extract_one(
            "Alpha Widget revenue was reported on 2024-03-15"
        )
        assert fact.get(ATTR_DATE) == dt.date(2024, 3, 15)

    def test_empty_for_unrelated_text(self):
        fact = self.extract_one("The weather was mild this spring")
        assert not fact

    def test_extract_multi_sentence(self):
        facts = AttributeExtractor(make_slm()).extract(
            "Alpha Widget sales rose 10% in Q1. "
            "The weather was mild. "
            "Beta Gadget sales fell 5% in Q2."
        )
        assert len(facts) == 2
        assert facts[0].get(ATTR_SUBJECT) == "alpha widget"
        assert facts[1].get(ATTR_CHANGE_PERCENT) == -5.0

    def test_provenance_sentence_kept(self):
        facts = AttributeExtractor(make_slm()).extract(
            "Alpha Widget sales rose 10% in Q1."
        )
        assert "Alpha Widget" in facts[0].source_sentence


class TestSchemaInference:
    def facts(self):
        return [
            ExtractedFact({"subject": "a", "change_percent": 10.0}),
            ExtractedFact({"subject": "b", "change_percent": -5,
                           "quarter": "Q2"}),
            ExtractedFact({"subject": "c", "year": 2024}),
        ]

    def test_infer_value_type(self):
        assert infer_value_type(True) is DataType.BOOL
        assert infer_value_type(1) is DataType.INT
        assert infer_value_type(1.5) is DataType.FLOAT
        assert infer_value_type(dt.date.today()) is DataType.DATE
        assert infer_value_type("x") is DataType.TEXT

    def test_unify_types(self):
        assert unify_types([DataType.INT, DataType.FLOAT]) is DataType.FLOAT
        assert unify_types([DataType.INT, DataType.TEXT]) is DataType.TEXT
        assert unify_types([DataType.INT]) is DataType.INT
        assert unify_types([]) is DataType.TEXT

    def test_schema_ordered_by_frequency(self):
        schema = infer_fact_schema("t", self.facts())
        assert schema.column_names()[0] == "subject"

    def test_mixed_numeric_widened(self):
        schema = infer_fact_schema("t", self.facts())
        assert schema.column("change_percent").dtype is DataType.FLOAT

    def test_min_support_drops_rare(self):
        schema = infer_fact_schema("t", self.facts(), min_column_support=2)
        assert "year" not in schema.column_names()
        assert "quarter" not in schema.column_names()

    def test_no_facts_rejected(self):
        with pytest.raises(ExtractionError):
            infer_fact_schema("t", [])

    def test_unsupportable_threshold(self):
        with pytest.raises(ExtractionError):
            infer_fact_schema("t", self.facts(), min_column_support=10)

    def test_facts_to_rows_nulls(self):
        schema = infer_fact_schema("t", self.facts())
        rows = facts_to_rows(self.facts(), schema)
        assert len(rows) == 3
        pos = schema.index_of("quarter")
        assert rows[0][pos] is None and rows[1][pos] == "Q2"

    def test_facts_to_rows_int_widening(self):
        schema = infer_fact_schema("t", self.facts())
        rows = facts_to_rows(self.facts(), schema)
        pos = schema.index_of("change_percent")
        assert rows[1][pos] == -5.0 and isinstance(rows[1][pos], float)


REPORTS = [
    ("r1", "Alpha Widget sales increased 20% in Q2 2024."),
    ("r2", "Beta Gadget sales decreased 10% in Q2 2024."),
    ("r3", "Alpha Widget revenue rose 5% in Q3 2024."),
]


class TestTableGenerator:
    def test_generate_basic(self):
        generated = TableGenerator(make_slm()).generate("reports", REPORTS)
        assert len(generated.table) == 3
        names = generated.table.schema.column_names()
        assert "subject" in names and "change_percent" in names
        assert PROVENANCE_COLUMN in names

    def test_generated_rows_queryable(self):
        db = Database(meter=CostMeter())
        TableGenerator(make_slm()).generate_into(db, "reports", REPORTS)
        rs = db.execute(
            "SELECT subject FROM reports WHERE change_percent > 15"
        )
        assert rs.column("subject") == ["alpha widget"]

    def test_generate_into_replaces(self):
        db = Database(meter=CostMeter())
        gen = TableGenerator(make_slm())
        gen.generate_into(db, "reports", REPORTS)
        gen.generate_into(db, "reports", REPORTS[:1])
        assert db.execute("SELECT COUNT(*) FROM reports").scalar() == 1

    def test_no_facts_raises(self):
        with pytest.raises(ExtractionError):
            TableGenerator(make_slm()).generate(
                "t", [("d", "Nothing relevant here at all")]
            )

    def test_without_provenance(self):
        generated = TableGenerator(
            make_slm(), include_provenance=False
        ).generate("t", REPORTS)
        assert PROVENANCE_COLUMN not in generated.table.schema.column_names()

    def test_cell_count(self):
        generated = TableGenerator(make_slm()).generate("t", REPORTS[:1])
        assert generated.cell_count() >= 4

    def test_entity_dropout_reduces_extraction(self):
        full = TableGenerator(make_slm()).generate("t", REPORTS)
        lossy_slm = make_slm(entity_dropout=0.7, seed=5)
        try:
            lossy = TableGenerator(lossy_slm).generate("t", REPORTS)
            lossy_cells = lossy.cell_count()
        except ExtractionError:
            lossy_cells = 0
        assert lossy_cells < full.cell_count()


class TestCellScoring:
    def test_perfect_match(self):
        records = [{"subject": "a", "change_percent": 20.0}]
        scores = score_generated_cells(records, records)
        assert scores == {"precision": 1.0, "recall": 1.0, "f1": 1.0}

    def test_numeric_canonicalization(self):
        gen = [{"x": 20.0}]
        gold = [{"x": 20}]
        assert score_generated_cells(gen, gold)["f1"] == 1.0

    def test_case_insensitive_text(self):
        gen = [{"s": "Alpha Widget"}]
        gold = [{"s": "alpha widget"}]
        assert score_generated_cells(gen, gold)["f1"] == 1.0

    def test_partial_match(self):
        gen = [{"a": 1, "b": 2}]
        gold = [{"a": 1, "b": 3}]
        scores = score_generated_cells(gen, gold)
        assert scores["precision"] == 0.5 and scores["recall"] == 0.5

    def test_missing_record_hurts_recall(self):
        gen = [{"a": 1}]
        gold = [{"a": 1}, {"a": 2}]
        scores = score_generated_cells(gen, gold)
        assert scores["recall"] == 0.5 and scores["precision"] == 1.0

    def test_provenance_ignored(self):
        gen = [{"a": 1, PROVENANCE_COLUMN: "d9"}]
        gold = [{"a": 1}]
        assert score_generated_cells(gen, gold)["f1"] == 1.0

    def test_empty_inputs(self):
        assert score_generated_cells([], [])["f1"] == 0.0
