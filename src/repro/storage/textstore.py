"""Unstructured text store: raw documents plus their chunks.

The unstructured leg of the heterogeneous lake (clinical notes,
customer reviews, sales reports). Documents are chunked on ingest; the
chunks are what the graph index and retrievers consume.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..errors import StorageError
from ..metering import CHUNKS_READ, CostMeter, GLOBAL_METER
from ..text.chunker import Chunk, Chunker


class TextStore:
    """Store raw text documents and serve their chunks."""

    def __init__(self, chunker: Optional[Chunker] = None,
                 meter: Optional[CostMeter] = None):
        self._chunker = chunker or Chunker()
        self._meter = meter if meter is not None else GLOBAL_METER
        self._docs: Dict[str, str] = {}
        self._chunks: Dict[str, Chunk] = {}
        self._doc_chunks: Dict[str, List[str]] = {}
        self._mutation_listeners: List[Callable[[str], None]] = []

    # ------------------------------------------------------------------
    def add_mutation_listener(self, listener: Callable[[str], None]) -> None:
        """Subscribe ``listener(op)`` to every write on this store.

        The serving layer's write-through cache invalidation hook;
        listeners must not write back into the store.
        """
        self._mutation_listeners.append(listener)

    def _notify_mutation(self, op: str) -> None:
        for listener in self._mutation_listeners:
            listener(op)

    def add(self, doc_id: str, text: str) -> List[Chunk]:
        """Add (or replace) a document; returns its chunks."""
        if not doc_id:
            raise StorageError("document id cannot be empty")
        if doc_id in self._docs:
            self.remove(doc_id)
        chunks = self._chunker.chunk_document(doc_id, text)
        self._docs[doc_id] = text
        self._doc_chunks[doc_id] = [c.chunk_id for c in chunks]
        for chunk in chunks:
            self._chunks[chunk.chunk_id] = chunk
        self._notify_mutation("add")
        return chunks

    def add_many(self, docs: Iterable[Tuple[str, str]]) -> int:
        """Add many (id, text) documents; returns chunk count."""
        total = 0
        for doc_id, text in docs:
            total += len(self.add(doc_id, text))
        return total

    def remove(self, doc_id: str) -> None:
        """Delete a document and its chunks."""
        if doc_id not in self._docs:
            raise StorageError("no text document %r" % doc_id)
        del self._docs[doc_id]
        for chunk_id in self._doc_chunks.pop(doc_id, []):
            self._chunks.pop(chunk_id, None)
        self._notify_mutation("remove")

    # ------------------------------------------------------------------
    def document(self, doc_id: str) -> str:
        """The raw text of *doc_id*."""
        try:
            return self._docs[doc_id]
        except KeyError:
            raise StorageError("no text document %r" % doc_id) from None

    def chunk(self, chunk_id: str) -> Chunk:
        """Fetch one chunk by id (charges ``chunks_read``)."""
        try:
            self._meter.charge(CHUNKS_READ)
            return self._chunks[chunk_id]
        except KeyError:
            raise StorageError("no chunk %r" % chunk_id) from None

    def chunks(self) -> List[Chunk]:
        """Every chunk, ordered by (doc, position)."""
        ordered: List[Chunk] = []
        for doc_id in sorted(self._doc_chunks):
            for chunk_id in self._doc_chunks[doc_id]:
                self._meter.charge(CHUNKS_READ)
                ordered.append(self._chunks[chunk_id])
        return ordered

    def chunks_of(self, doc_id: str) -> List[Chunk]:
        """Chunks of one document in position order."""
        if doc_id not in self._doc_chunks:
            raise StorageError("no text document %r" % doc_id)
        return [self._chunks[cid] for cid in self._doc_chunks[doc_id]]

    def doc_ids(self) -> List[str]:
        """All document ids, sorted."""
        return sorted(self._docs)

    def __len__(self) -> int:
        return len(self._docs)

    @property
    def n_chunks(self) -> int:
        """Total number of chunks across all documents."""
        return len(self._chunks)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def dump_json(self) -> str:
        """Serialize raw documents to JSON (chunks rebuild on load)."""
        import json

        return json.dumps(self._docs, sort_keys=True)

    @classmethod
    def load_json(cls, text: str, chunker: Optional[Chunker] = None,
                  meter: Optional[CostMeter] = None) -> "TextStore":
        """Rebuild a store from :meth:`dump_json` output."""
        import json

        try:
            docs = json.loads(text)
        except json.JSONDecodeError as exc:
            raise StorageError("invalid text-store JSON: %s" % exc) from exc
        if not isinstance(docs, dict):
            raise StorageError("expected a JSON object of id → text")
        store = cls(chunker=chunker, meter=meter)
        for doc_id in sorted(docs):
            store.add(doc_id, docs[doc_id])
        return store
