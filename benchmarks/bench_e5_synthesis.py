"""E5 — Semantic Operator Synthesis accuracy by query complexity.

Paper claim (Section III.C task 2): the SLM "maps [NL queries] to
SQL-like operations such as aggregations ... and filtering operations",
and "operations like SQL joins can also be synthesized".

Reproduced table: for each complexity class (filter / aggregate /
aggregate+entity-join / join+group-by / comparison-filter), the
fraction of questions whose synthesized plan exactly matches the gold
:class:`QuerySpec` signature (plan accuracy) and whose execution result
matches gold execution (execution accuracy).

Expected shape: accuracy decreasing with plan complexity; joins the
hardest; execution accuracy ≥ plan accuracy (different plans can
produce the same answer).
"""

from __future__ import annotations

import pytest

from repro.bench import LakeSpec, generate_ecommerce_lake, render_table
from repro.errors import SynthesisError
from repro.metering import CostMeter
from repro.semql import (
    AggregateSpec, FilterSpec, JoinSpec, OperatorSynthesizer, QueryCompiler,
    QuerySpec, SchemaCatalog,
)
from repro.storage.relational import Database

from _common import emit

RESULTS = []


@pytest.fixture(scope="module")
def workload():
    lake = generate_ecommerce_lake(LakeSpec(n_products=10, seed=51))
    db = Database(meter=CostMeter())
    for statement in lake.sql_statements():
        db.execute(statement)
    # A change table (as Relational Table Generation would produce it)
    # so comparison-filter queries have a percent column to bind.
    db.execute(
        "CREATE TABLE changes (cid INT PRIMARY KEY, subject TEXT, "
        "quarter TEXT, change_percent FLOAT)"
    )
    for i, fact in enumerate(f for f in lake.satisfaction_facts
                             if not f.noisy):
        db.execute(
            "INSERT INTO changes VALUES (%d, '%s', '%s', %.1f)" % (
                i, fact.product.lower(), fact.quarter,
                fact.change_percent,
            )
        )
    catalog = SchemaCatalog(db)
    catalog.register_synonym("sales", "sales", "amount")
    catalog.register_synonym("increase", "changes", "change_percent")
    catalog.register_synonym("change", "changes", "change_percent")
    catalog.register_join("sales", "pid", "products", "pid")
    catalog.register_join("changes", "subject", "products", "name_key")
    catalog.register_display_column("products", "name")
    catalog.build_value_index()
    return lake, db, OperatorSynthesizer(catalog), QueryCompiler(db)


def gold_cases(lake):
    """(complexity, question, gold QuerySpec) triples."""
    cases = []
    manufacturers = sorted({p["manufacturer"] for p in lake.products})
    for manufacturer in manufacturers[:4]:
        cases.append((
            "1_filter",
            "List products from %s" % manufacturer,
            QuerySpec(
                table="products",
                filters=(FilterSpec("manufacturer", "=",
                                    manufacturer.lower()),),
                projection=("name",),
            ),
        ))
    for quarter in ("Q1", "Q2", "Q3", "Q4"):
        cases.append((
            "2_aggregate",
            "Find the total sales of all products in %s." % quarter,
            QuerySpec(
                table="sales",
                filters=(FilterSpec("quarter", "=", quarter.lower()),),
                aggregates=(AggregateSpec("sum", "amount"),),
            ),
        ))
    for product in lake.products[:4]:
        cases.append((
            "3_agg_entity_join",
            "What is the total sales of the %s?" % product["name"],
            QuerySpec(
                table="sales",
                joins=(JoinSpec("products", "pid", "pid"),),
                filters=(FilterSpec("name", "=",
                                    product["name"].lower()),),
                aggregates=(AggregateSpec("sum", "amount"),),
            ),
        ))
    cases.append((
        "4_join_group_by",
        "Find the total sales per manufacturer",
        QuerySpec(
            table="sales",
            joins=(JoinSpec("products", "pid", "pid"),),
            group_by=("manufacturer",),
            aggregates=(AggregateSpec("sum", "amount"),),
            projection=("manufacturer",),
        ),
    ))
    cases.append((
        "4_join_group_by",
        "Find the average sales per manufacturer",
        QuerySpec(
            table="sales",
            joins=(JoinSpec("products", "pid", "pid"),),
            group_by=("manufacturer",),
            aggregates=(AggregateSpec("avg", "amount"),),
            projection=("manufacturer",),
        ),
    ))
    for threshold in (10, 15, 20):
        cases.append((
            "5_comparison",
            "Count changes with an increase of more than %d%%" % threshold,
            QuerySpec(
                table="changes",
                filters=(FilterSpec("change_percent", ">",
                                    float(threshold)),),
                aggregates=(AggregateSpec("count", "*"),),
            ),
        ))
    for manufacturer in sorted({p["manufacturer"]
                                for p in lake.products})[:2]:
        cases.append((
            "5b_superlative",
            "Which product from %s has the highest price?" % manufacturer,
            QuerySpec(
                table="products",
                filters=(FilterSpec("manufacturer", "=",
                                    manufacturer.lower()),),
                projection=("name",),
                order_by="price",
                descending=True,
                limit=1,
            ),
        ))
    cases.append((
        "5b_superlative",
        "Which product is the cheapest?",
        QuerySpec(
            table="products",
            projection=("name",),
            order_by="price",
            descending=False,
            limit=1,
        ),
    ))
    for threshold in (400, 800):
        cases.append((
            "5c_group_having",
            "List manufacturers with total sales above %d" % threshold,
            QuerySpec(
                table="sales",
                joins=(JoinSpec("products", "pid", "pid"),),
                group_by=("manufacturer",),
                aggregates=(AggregateSpec("sum", "amount"),),
                having=((AggregateSpec("sum", "amount"), ">",
                         float(threshold)),),
                projection=("manufacturer",),
            ),
        ))
    # Hard paraphrases: vocabulary outside the registered synonyms,
    # implicit distinctness, superlatives — where a template-free NL
    # layer starts to break (the realistic accuracy ceiling).
    product = lake.products[0]["name"]
    cases.extend([
        (
            "6_hard_paraphrase",
            "What did the sales add up to across each maker?",
            QuerySpec(
                table="sales",
                joins=(JoinSpec("products", "pid", "pid"),),
                group_by=("manufacturer",),
                aggregates=(AggregateSpec("sum", "amount"),),
                projection=("manufacturer",),
            ),
        ),
        (
            "6_hard_paraphrase",
            "How many different manufacturers are there?",
            QuerySpec(
                table="products",
                aggregates=(AggregateSpec("count", "manufacturer",
                                          distinct=True),),
            ),
        ),
        (
            "6_hard_paraphrase",
            "Which quarter moved the most units of the %s?" % product,
            QuerySpec(
                table="sales",
                joins=(JoinSpec("products", "pid", "pid"),),
                filters=(FilterSpec("name", "=", product.lower()),),
                projection=("quarter",),
                order_by="amount",
                descending=True,
                limit=1,
            ),
        ),
        (
            "6_hard_paraphrase",
            "Total revenue please for Q2",
            QuerySpec(
                table="sales",
                filters=(FilterSpec("quarter", "=", "q2"),),
                aggregates=(AggregateSpec("sum", "amount"),),
            ),
        ),
    ])
    return cases


def _rows_match(a, b) -> bool:
    def canon(rs):
        return sorted(
            tuple(
                round(v, 6) if isinstance(v, float) else v for v in row
            )
            for row in rs.rows
        )
    return canon(a) == canon(b)


def test_e5_synthesis(benchmark, workload):
    lake, db, synthesizer, compiler = workload
    per_class = {}
    for complexity, question, gold in gold_cases(lake):
        stats = per_class.setdefault(
            complexity, {"n": 0, "plan": 0, "exec": 0, "abstain": 0}
        )
        stats["n"] += 1
        try:
            predicted = synthesizer.synthesize(question)
        except SynthesisError:
            stats["abstain"] += 1
            continue
        if predicted.matches(gold):
            stats["plan"] += 1
        try:
            if _rows_match(compiler.execute(predicted),
                           compiler.execute(gold)):
                stats["exec"] += 1
        except SynthesisError:
            pass
    for complexity in sorted(per_class):
        stats = per_class[complexity]
        RESULTS.append({
            "complexity": complexity,
            "n": stats["n"],
            "plan_accuracy": round(stats["plan"] / stats["n"], 3),
            "exec_accuracy": round(stats["exec"] / stats["n"], 3),
            "abstain": round(stats["abstain"] / stats["n"], 3),
        })
    benchmark(
        synthesizer.synthesize,
        "Find the total sales of all products in Q2.",
    )


def test_e5_report(benchmark, workload):
    benchmark(lambda: None)
    assert RESULTS, "E5 synthesis runs first"
    emit("e5_synthesis", render_table(
        RESULTS, title="E5 — Operator synthesis accuracy by complexity"
    ))
    by_class = {r["complexity"]: r for r in RESULTS}
    # Simple classes are (near-)solved.
    assert by_class["1_filter"]["exec_accuracy"] >= 0.75
    assert by_class["2_aggregate"]["exec_accuracy"] >= 0.75
    # Execution accuracy never below plan accuracy.
    for row in RESULTS:
        assert row["exec_accuracy"] >= row["plan_accuracy"]
    # Template classes are at least half-solved end to end; the hard
    # paraphrase class sits strictly below the simple classes — the
    # complexity-degradation shape.
    for row in RESULTS:
        if row["complexity"] != "6_hard_paraphrase":
            assert row["exec_accuracy"] >= 0.5
    assert (by_class["6_hard_paraphrase"]["exec_accuracy"]
            < by_class["1_filter"]["exec_accuracy"])
