"""Tests for the query-serving subsystem (repro.serving).

The load-bearing properties: batched+cached answering is byte-for-byte
identical to sequential uncached answering; every store write
invalidates exactly the tiers that depend on it; admission control
sheds with typed abstentions instead of raising; the workload format
rejects malformed input with :class:`~repro.errors.ServingError`.
"""

import pytest

from repro.bench import LakeSpec, generate_ecommerce_lake
from repro.bench.runner import build_hybrid_system
from repro.errors import ServingError
from repro.resilience import FaultPlan, ResilienceConfig, work_now
from repro.serving import (
    AdmissionPolicy, CachePolicy, QueryServer, ServeRequest,
    normalize_question, parse_workload, repeated_questions,
)

SEED = 11


@pytest.fixture(scope="module")
def lake():
    return generate_ecommerce_lake(LakeSpec(n_products=4, seed=SEED))


@pytest.fixture(scope="module")
def questions(lake):
    return [pair.question for pair in lake.qa_pairs(per_kind=1)][:4]


def make_server(lake, policy=None, admission=None, batch_size=4,
                chaos_rate=0.0):
    _system, pipeline = build_hybrid_system(lake, seed=SEED)
    if chaos_rate > 0.0:
        pipeline.enable_resilience(ResilienceConfig(
            fault_plan=FaultPlan.uniform(
                ("relational", "retriever", "slm"), chaos_rate, seed=5,
            ),
            budget=500_000,
        ))
    return QueryServer(pipeline, policy=policy or CachePolicy(),
                       admission=admission, batch_size=batch_size)


def ask(question, session="default"):
    return ServeRequest(op="ask", payload={"question": question},
                        session=session)


def fingerprints(results):
    return [
        (r.answer.text, r.answer.value, r.answer.confidence,
         r.answer.grounded, r.answer.system,
         tuple(r.answer.provenance),
         tuple(sorted(r.answer.metadata.items())))
        for r in results if r.op == "ask"
    ]


# ----------------------------------------------------------------------
# Equality: caching and batching must be invisible in the answers
# ----------------------------------------------------------------------

class TestEquality:
    def test_cached_batched_equals_sequential_uncached(self, lake,
                                                       questions):
        workload = (
            [ask(q) for q in questions]
            + [ask(questions[0]), ask(questions[0])]
            + [ServeRequest(op="sql", payload={"statement":
                "INSERT INTO sales VALUES (99001, 1, 'Q1', 2024, 50.0)"})]
            + [ask(q) for q in questions]
        )
        cached = make_server(lake, CachePolicy(), batch_size=4)
        sequential = make_server(lake, CachePolicy.none(), batch_size=1)
        assert fingerprints(cached.serve(workload)) == fingerprints(
            sequential.serve(workload))

    def test_single_flight_dedup(self, lake, questions):
        server = make_server(lake, batch_size=8)
        results = server.serve([ask(questions[0])] * 3)
        fps = fingerprints(results)
        assert fps[0] == fps[1] == fps[2]
        assert server.stats()["scheduler"]["deduped"] == 2
        assert [r.deduped for r in results] == [False, True, True]

    def test_warm_pass_at_least_three_times_cheaper(self, lake,
                                                    questions):
        server = make_server(lake, batch_size=4)
        meter = server.pipeline.meter
        workload = repeated_questions(questions, repeats=1)
        before = work_now(meter)
        cold = fingerprints(server.serve(workload))
        cold_work = work_now(meter) - before
        before = work_now(meter)
        warm = fingerprints(server.serve(workload))
        warm_work = work_now(meter) - before
        assert cold == warm
        assert warm_work * 3 <= cold_work


# ----------------------------------------------------------------------
# Invalidation: each store kind flushes its dependent tiers
# ----------------------------------------------------------------------

TOTAL_QUESTION = "Find the total sales of all products in Q1."


def invalidation_workload(write):
    return [ask(TOTAL_QUESTION), ask(TOTAL_QUESTION), write,
            ask(TOTAL_QUESTION)]


class TestInvalidation:
    def check_write(self, lake, write, kind):
        cached = make_server(lake, CachePolicy(), batch_size=4)
        control = make_server(lake, CachePolicy.none(), batch_size=1)
        workload = invalidation_workload(write)
        got = fingerprints(cached.serve(workload))
        want = fingerprints(control.serve(workload))
        assert got == want
        assert got[0] == got[1]  # pre-write repeat served consistently
        stats = cached.stats()["cache"]
        assert stats["generations"][kind] > 0
        return got, stats

    def test_relational_write_invalidates_and_changes_answer(self, lake):
        write = ServeRequest(op="sql", payload={"statement":
            "INSERT INTO sales VALUES (99002, 1, 'Q1', 2024, 777.0)"})
        got, stats = self.check_write(lake, write, "relational")
        assert got[2] != got[0]  # the new row changed the total
        dropped = (stats["answer"]["invalidations"]
                   + stats["plan"]["invalidations"])
        assert dropped > 0

    def test_document_write_invalidates_answer_tier(self, lake):
        write = ServeRequest(op="add_doc", payload={
            "doc_id": "t-doc",
            "document": {"name": "TestWidget", "status": "new"},
        })
        _got, stats = self.check_write(lake, write, "document")
        assert stats["answer"]["invalidations"] > 0
        # Plans depend on the relational store only: still valid.
        assert stats["plan"]["invalidations"] == 0

    def test_text_write_invalidates_answer_tier(self, lake):
        write = ServeRequest(op="add_text", payload={
            "doc_id": "t-note",
            "text": "The TestWidget launch was delayed to Q3.",
        })
        _got, stats = self.check_write(lake, write, "text")
        assert stats["answer"]["invalidations"] > 0


# ----------------------------------------------------------------------
# Admission control: shedding is a typed abstention, never an exception
# ----------------------------------------------------------------------

class TestAdmission:
    def test_session_budget_sheds_after_spend(self, lake, questions):
        server = make_server(
            lake, admission=AdmissionPolicy(session_budget=1),
            batch_size=1,
        )
        results = server.serve([ask(questions[0]), ask(questions[0])])
        first, second = results
        assert not first.shed
        assert second.shed
        answer = second.answer
        assert answer.abstained
        assert answer.metadata["shed"] is True
        assert answer.metadata["degraded"] is True
        assert "degradation" in answer.metadata
        assert server.admission.spent("default") > 0

    def test_budget_is_per_session(self, lake, questions):
        server = make_server(
            lake, admission=AdmissionPolicy(session_budget=1),
            batch_size=1,
        )
        results = server.serve([
            ask(questions[0], session="alice"),
            ask(questions[0], session="alice"),
            ask(questions[0], session="bob"),
        ])
        assert [r.shed for r in results] == [False, True, False]

    def test_queue_depth_sheds_excess_arrivals(self, lake, questions):
        server = make_server(
            lake, admission=AdmissionPolicy(max_queue_depth=2),
            batch_size=8,
        )
        results = server.serve([ask(q) for q in questions])
        assert [r.shed for r in results] == [False, False, True, True]
        assert server.stats()["scheduler"]["shed"] == 2

    def test_write_barrier_resets_queue_depth(self, lake, questions):
        server = make_server(
            lake, admission=AdmissionPolicy(max_queue_depth=2),
            batch_size=8,
        )
        write = ServeRequest(op="add_doc", payload={
            "doc_id": "d1", "document": {"name": "X"}})
        results = server.serve([
            ask(questions[0]), ask(questions[1]), write,
            ask(questions[2]), ask(questions[3]),
        ])
        assert not any(r.shed for r in results)

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(session_budget=0)
        with pytest.raises(ValueError):
            AdmissionPolicy(max_queue_depth=-1)


# ----------------------------------------------------------------------
# Chaos safety: faulted results are served but never cached
# ----------------------------------------------------------------------

class TestChaosSafety:
    def test_no_degraded_answer_is_cached(self, lake, questions):
        server = make_server(lake, chaos_rate=0.4)
        workload = repeated_questions(questions[:3], repeats=2)
        server.serve(workload)  # contract: never raises
        injector = server.pipeline.resilience.injector
        assert injector is not None and injector.log
        for _key, answer in server.cache.answers.lru.items():
            assert not answer.metadata.get("degraded")


# ----------------------------------------------------------------------
# Workload format and policy parsing
# ----------------------------------------------------------------------

class TestWorkloadParsing:
    def test_parses_ops_and_skips_comments(self):
        text = "\n".join([
            '{"op": "ask", "question": "Q1?"}',
            "# a comment",
            "",
            '{"op": "sql", "statement": "SELECT 1"}',
            '{"op": "add_doc", "doc_id": "d", "document": {"a": 1}}',
            '{"op": "add_text", "doc_id": "t", "text": "hello"}',
        ])
        requests = parse_workload(text)
        assert [r.op for r in requests] == [
            "ask", "sql", "add_doc", "add_text"]
        assert requests[0].payload["question"] == "Q1?"

    def test_bad_json_raises(self):
        with pytest.raises(ServingError):
            parse_workload("{not json}")

    def test_unknown_op_raises(self):
        with pytest.raises(ServingError):
            parse_workload('{"op": "drop_tables"}')

    def test_missing_field_raises(self):
        with pytest.raises(ServingError):
            parse_workload('{"op": "ask"}')

    def test_repeated_questions_shape(self):
        requests = repeated_questions(["a", "b"], repeats=2)
        assert [r.payload["question"] for r in requests] == [
            "a", "b", "a", "b"]

    def test_normalize_question(self):
        assert normalize_question("  what \n is\tthis ") == "what is this"
        # Case is significant: the answer path hashes the exact string.
        assert normalize_question("What") != normalize_question("what")

    def test_cache_policy_from_string(self):
        assert CachePolicy.from_string("full").describe() == "full"
        assert CachePolicy.from_string("none").describe() == "none"
        partial = CachePolicy.from_string("plan,retrieval")
        assert (partial.plan, partial.retrieval) == (True, True)
        assert (partial.answer, partial.embedding) == (False, False)
        with pytest.raises(ValueError):
            CachePolicy.from_string("answer,bogus")


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------

class TestServeCli:
    def test_serve_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        workload = tmp_path / "workload.jsonl"
        workload.write_text("\n".join([
            '{"op": "ask", "question": "How many products are there?"}',
            '{"op": "ask", "question": "How many products are there?"}',
            '{"op": "sql", "statement": "SELECT COUNT(*) FROM products"}',
        ]), encoding="utf-8")
        code = main([
            "serve", "--workload", str(workload), "--seed", str(SEED),
            "--batch-size", "2", "--cache-policy", "full",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("[ask]") == 2
        assert "[sql]" in out
        assert "scheduler:" in out
        assert "cache.answer" in out

    def test_serve_rejects_unknown_policy(self, tmp_path):
        from repro.cli import main

        workload = tmp_path / "w.jsonl"
        workload.write_text('{"op": "ask", "question": "q"}',
                            encoding="utf-8")
        with pytest.raises(SystemExit):
            main(["serve", "--workload", str(workload),
                  "--cache-policy", "bogus"])
