"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch one base class at API
boundaries while still distinguishing subsystem-specific failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A table schema is malformed or a row does not match its schema."""


class SQLSyntaxError(ReproError):
    """The SQL text could not be tokenized or parsed.

    ``position`` is the 0-based character offset of the offending token
    in the original SQL text, or -1 when no token is available (e.g.
    rendering failures).
    """

    def __init__(self, message: str, position: int = -1):
        super().__init__(message)
        self.position = position

    def __str__(self) -> str:
        base = super().__str__()
        if self.position >= 0:
            return "%s (at position %d)" % (base, self.position)
        return base


class PlanError(ReproError):
    """A logical plan is invalid (unknown table/column, bad operator)."""


class ExecutionError(ReproError):
    """A physical operator failed while executing a valid plan."""


class StorageError(ReproError):
    """A storage backend (document store, text store, CSV) failed."""


class GraphIndexError(ReproError):
    """The heterogeneous graph index was used inconsistently."""


class RetrievalError(ReproError):
    """A retriever was queried before indexing or with bad parameters."""


class ExtractionError(ReproError):
    """Structured data extraction failed on the given text."""


class SynthesisError(ReproError):
    """Natural-language query could not be mapped to a logical plan."""


class EntropyError(ReproError):
    """Semantic-entropy estimation got invalid samples or parameters."""


class BenchmarkError(ReproError):
    """A benchmark workload or harness was misconfigured."""


class ServingError(ReproError):
    """A serving workload or server configuration was invalid."""


class TenancyError(ReproError):
    """A tenant spec was invalid or an unknown tenant was referenced.

    Raised by the registry's fail-closed paths (parsing a malformed
    spec, resolving an unregistered tenant id). Governance violations
    on the request path never raise this — they surface as typed
    abstentions, matching the admission layer's shedding contract.
    """


class LoadGenError(ReproError):
    """A load-generation spec or SLO spec was invalid.

    Specs are config: unknown keys, negative thresholds or impossible
    schedules fail loudly at parse time, before any request runs —
    the same contract :func:`repro.serving.workload.parse_workload`
    enforces for workload files.
    """


class ResilienceError(ReproError):
    """Base class for the resilience layer's control-flow signals.

    These errors are raised *by* :mod:`repro.resilience` (budget and
    breaker enforcement, injected faults) and absorbed by the same
    layer at the engine boundary; they should never escape
    ``HybridQAPipeline.answer``.
    """


class TransientError(ResilienceError):
    """A backend call failed in a way that may succeed if retried.

    ``backend`` and ``op`` name the guarded call site; retry policies
    treat only this class as retryable.
    """

    def __init__(self, message: str, backend: str = "?", op: str = "?"):
        super().__init__(message)
        self.backend = backend
        self.op = op


class BudgetExceeded(ResilienceError):
    """The per-question work budget is exhausted.

    Budgets are measured in :class:`~repro.metering.CostMeter` work
    units (deterministic, machine-independent), never in wall-clock
    seconds. ``spent``/``limit`` carry the work accounting at the
    moment of rejection.
    """

    def __init__(self, message: str, spent: int = 0, limit: int = 0):
        super().__init__(message)
        self.spent = spent
        self.limit = limit


class CircuitOpenError(ResilienceError):
    """A call was rejected because the backend's circuit breaker is open.

    ``backend`` names the breaker; the call was never attempted, so the
    failing backend gets a work-clock cooldown to recover.
    """

    def __init__(self, message: str, backend: str = "?"):
        super().__init__(message)
        self.backend = backend
