"""LOTUS-style semantic operators over result sets.

Extend the relational model with natural-language-criterion operators
(paper Section II.B): filtering, joining, ranking and classifying rows
by *meaning*, scored with the SLM's embeddings rather than exact
matches. Every operator takes and returns a :class:`ResultSet`, so
semantic and classical operators compose freely.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from ..errors import SynthesisError
from ..slm.model import SmallLanguageModel
from ..storage.relational.executor import ResultSet


def _row_text(columns: Sequence[str], row: Sequence[Any],
              use_columns: Optional[Sequence[str]] = None) -> str:
    parts = []
    for name, value in zip(columns, row):
        if use_columns is not None and name not in use_columns:
            continue
        if value is None:
            continue
        parts.append("%s: %s" % (name, value))
    return "; ".join(parts)


class SemanticOperators:
    """Semantic operator suite bound to one SLM."""

    def __init__(self, slm: SmallLanguageModel,
                 similarity_threshold: float = 0.18):
        if not -1.0 <= similarity_threshold <= 1.0:
            raise SynthesisError("threshold must be a cosine in [-1, 1]")
        self._slm = slm
        self._threshold = similarity_threshold

    # ------------------------------------------------------------------
    def sem_filter(self, result: ResultSet, criterion: str,
                   columns: Optional[Sequence[str]] = None,
                   threshold: Optional[float] = None) -> ResultSet:
        """Keep rows semantically matching *criterion*.

        >>> # rows whose review text talks about battery problems
        >>> # ops.sem_filter(rs, "complains about battery life")
        """
        limit = self._threshold if threshold is None else threshold
        criterion_vec = self._slm.embed(criterion)
        kept = []
        for row in result.rows:
            text = _row_text(result.columns, row, columns)
            if not text:
                continue
            sim = self._slm.embedder.cosine(
                criterion_vec, self._slm.embed(text)
            )
            if sim >= limit:
                kept.append(row)
        return ResultSet(result.columns, kept)

    def sem_topk(self, result: ResultSet, criterion: str, k: int,
                 columns: Optional[Sequence[str]] = None) -> ResultSet:
        """The *k* rows most semantically similar to *criterion*."""
        if k < 1:
            raise SynthesisError("k must be >= 1")
        criterion_vec = self._slm.embed(criterion)
        scored: List[Tuple[float, int]] = []
        for i, row in enumerate(result.rows):
            text = _row_text(result.columns, row, columns)
            sim = self._slm.embedder.cosine(
                criterion_vec, self._slm.embed(text)
            )
            scored.append((sim, i))
        scored.sort(key=lambda pair: (-pair[0], pair[1]))
        rows = [result.rows[i] for _, i in scored[:k]]
        return ResultSet(result.columns, rows)

    def sem_join(self, left: ResultSet, right: ResultSet,
                 left_column: str, right_column: str,
                 threshold: Optional[float] = None) -> ResultSet:
        """Join rows whose key *texts* are semantically equivalent.

        Unlike an equi-join, "Alpha Widget" matches "the alpha widget
        (2024 model)" — the fuzzy cross-modal linking the hybrid
        pipeline needs when generated tables meet curated ones.
        """
        limit = self._threshold if threshold is None else threshold
        li = left.columns.index(left_column) if left_column in left.columns \
            else -1
        ri = right.columns.index(right_column) if right_column in \
            right.columns else -1
        if li < 0 or ri < 0:
            raise SynthesisError(
                "join columns %r/%r not present" % (left_column, right_column)
            )
        right_vecs = [
            (row, self._slm.embed(str(row[ri] or "")))
            for row in right.rows
        ]
        out_columns = list(left.columns) + [
            "right_%s" % c if c in left.columns else c
            for c in right.columns
        ]
        joined = []
        for lrow in left.rows:
            lvec = self._slm.embed(str(lrow[li] or ""))
            best_row, best_sim = None, limit
            for rrow, rvec in right_vecs:
                sim = self._slm.embedder.cosine(lvec, rvec)
                if sim > best_sim:
                    best_row, best_sim = rrow, sim
            if best_row is not None:
                joined.append(tuple(lrow) + tuple(best_row))
        return ResultSet(out_columns, joined)

    def sem_classify(self, result: ResultSet, labels: Sequence[str],
                     columns: Optional[Sequence[str]] = None,
                     output_column: str = "label") -> ResultSet:
        """Append the nearest NL label to each row (zero-shot classify)."""
        if not labels:
            raise SynthesisError("need at least one label")
        label_vecs = [(label, self._slm.embed(label)) for label in labels]
        out_rows = []
        for row in result.rows:
            text = _row_text(result.columns, row, columns)
            vec = self._slm.embed(text)
            best = max(
                label_vecs,
                key=lambda lv: self._slm.embedder.cosine(vec, lv[1]),
            )
            out_rows.append(tuple(row) + (best[0],))
        return ResultSet(list(result.columns) + [output_column], out_rows)

    def sem_dedup(self, result: ResultSet,
                  columns: Optional[Sequence[str]] = None,
                  threshold: Optional[float] = None) -> ResultSet:
        """Drop rows that are semantic near-duplicates of earlier rows.

        Classic data-cleaning operator for extracted tables: "Alpha
        Widget sales rose" and "sales of the alpha widget rose" collapse
        to one row. Keeps the first representative of each group.
        """
        limit = self._threshold if threshold is None else threshold
        kept_rows = []
        kept_vecs = []
        for row in result.rows:
            text = _row_text(result.columns, row, columns)
            vec = self._slm.embed(text)
            duplicate = any(
                self._slm.embedder.cosine(vec, seen) >= limit
                for seen in kept_vecs
            )
            if not duplicate:
                kept_rows.append(row)
                kept_vecs.append(vec)
        return ResultSet(result.columns, kept_rows)

    def sem_agg(self, result: ResultSet, instruction: str,
                columns: Optional[Sequence[str]] = None) -> str:
        """Summarize rows: the most instruction-relevant rows verbalized.

        An extractive stand-in for generative aggregation — returns a
        short text combining the two most relevant rows plus the count.
        """
        if not result.rows:
            return "No rows matched."
        top = self.sem_topk(result, instruction, min(2, len(result.rows)),
                            columns)
        bullets = [
            _row_text(top.columns, row, columns) for row in top.rows
        ]
        return "%d rows; most relevant: %s" % (
            len(result.rows), " | ".join(bullets)
        )
