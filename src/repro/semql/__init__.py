"""Semantic Operator Synthesis and semantic operators (paper III.C)."""

from .catalog import ColumnBinding, SchemaCatalog, ValueHit
from .compiler import QueryCompiler
from .intents import Comparison, IntentFrame, analyze
from .logical import (
    AGG_FUNCS, FILTER_OPS, AggregateSpec, FilterSpec, JoinSpec, QuerySpec,
)
from .operators import SemanticOperators
from .synthesizer import OperatorSynthesizer

__all__ = [
    "ColumnBinding", "SchemaCatalog", "ValueHit",
    "QueryCompiler",
    "Comparison", "IntentFrame", "analyze",
    "AGG_FUNCS", "FILTER_OPS", "AggregateSpec", "FilterSpec", "JoinSpec",
    "QuerySpec",
    "SemanticOperators",
    "OperatorSynthesizer",
]
