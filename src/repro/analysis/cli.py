"""Command-line entry point: ``repro analyze`` /
``python -m repro.analysis``.

Modes (combinable):

* default — run the analysis, report findings (``text``/``json``/
  ``github`` formats, same reporters as ``repro.lint``);
* ``--write`` — regenerate the committed capability table at
  ``--table`` (canonical bytes, so reruns are no-ops);
* ``--check`` — the CI drift gate: fail with a ``capability-drift``
  finding when the committed table does not match what the current
  sources analyze to.

Findings:

* ``unknown-interference`` — a stage pair's verdict is ``unknown``
  (truncated closure or shared opaque callee);
* ``uncertified-parallel-arm`` — one of the hybrid cross-arm pairs is
  not ``safe-parallel`` (the precondition for the parallel executor);
* ``capability-drift`` — ``--check`` mismatch against the committed
  table.

Exit codes match ``repro.lint``: 0 = clean, 1 = findings,
2 = usage error.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import List, Optional

from ..lint.baseline import apply_baseline, load_baseline
from ..lint.core import Finding, load_module
from ..lint.report import render_github, render_json, render_text
from .callgraph import ProjectIndex
from .interference import (
    HYBRID_ARM_PAIRS, VERDICT_SAFE, CapabilityTable, build_table,
    diff_tables,
)

_TABLE_RELPATH = "analysis/parallel_safety.json"


def _default_root() -> pathlib.Path:
    # The shipped package is the analysis target, like repro.lint.
    return pathlib.Path(__file__).resolve().parent.parent


def _default_table() -> pathlib.Path:
    # The committed table lives at the repository root, two levels
    # above the package (src/repro -> repo). Falls back to a
    # cwd-relative path when the package is installed elsewhere.
    repo = pathlib.Path(__file__).resolve().parents[3]
    candidate = repo / _TABLE_RELPATH
    if candidate.parent.exists():
        return candidate
    return pathlib.Path(_TABLE_RELPATH)


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for the analyze CLI."""
    parser = argparse.ArgumentParser(
        prog="repro analyze",
        description="Whole-program effect analysis: certify which "
                    "plan stages are parallel-safe.",
    )
    parser.add_argument(
        "--root", type=pathlib.Path, default=None,
        help="package root to analyze (default: the repro package)",
    )
    parser.add_argument(
        "--table", type=pathlib.Path, default=None,
        help="capability table path (default: %s at the repo root)"
             % _TABLE_RELPATH,
    )
    parser.add_argument(
        "--write", action="store_true",
        help="regenerate the capability table at --table",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="fail when the committed table drifts from the sources",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "github"), default="text",
        help="report format (default: text); 'github' emits workflow "
             "::error annotations",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", type=pathlib.Path,
        help="committed findings file: suppress findings recorded "
             "there, fail only on new ones",
    )
    return parser


def load_project(root: pathlib.Path) -> ProjectIndex:
    """Parse every module under *root* into a :class:`ProjectIndex`."""
    modules = []
    for path in sorted(root.rglob("*.py")):
        try:
            modules.append(load_module(path, root))
        except SyntaxError:
            continue  # the linter owns parse errors; skip here
    return ProjectIndex(modules)


def table_findings(table: CapabilityTable) -> List[Finding]:
    """The verdict-level findings the analyze CLI reports."""
    findings: List[Finding] = []
    for key, pv in sorted(table.pairs.items()):
        if pv.verdict == "unknown":
            findings.append(Finding(
                _TABLE_RELPATH, 1, "unknown-interference",
                "stage pair %s is unknown: %s"
                % (key, "; ".join(pv.unknown) or "unclassified")))
    for a, b in HYBRID_ARM_PAIRS:
        pv = table.verdict(a, b)
        if pv is None or pv.verdict != VERDICT_SAFE:
            detail = "absent from table" if pv is None else pv.verdict
            findings.append(Finding(
                _TABLE_RELPATH, 1, "uncertified-parallel-arm",
                "hybrid arm pair %s|%s must be safe-parallel, got %s"
                % (a, b, detail)))
    findings.sort(key=Finding.sort_key)
    return findings


def _check_drift(table: CapabilityTable,
                 table_path: pathlib.Path) -> List[Finding]:
    if not table_path.exists():
        return [Finding(
            _TABLE_RELPATH, 1, "capability-drift",
            "committed table %s is missing; run "
            "'repro analyze --write'" % table_path)]
    committed_text = table_path.read_text(encoding="utf-8")
    computed_text = table.render_json()
    if committed_text == computed_text:
        return []
    try:
        committed = json.loads(committed_text)
    except json.JSONDecodeError:
        committed = {}
    drift = diff_tables(committed, table.as_dict())
    detail = ("; ".join(drift) if drift
              else "table header changed (stages and verdicts unchanged)")
    return [Finding(
        _TABLE_RELPATH, 1, "capability-drift",
        "committed table is stale (%s); run "
        "'repro analyze --write' and commit the result" % detail)]


def main(argv: Optional[List[str]] = None) -> int:
    """Run the analyzer; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    root = args.root or _default_root()
    if not root.is_dir():
        print("error: no such package root: %s" % root,
              file=sys.stderr)
        return 2
    table_path = args.table or _default_table()

    index = load_project(root)
    table = build_table(index)

    findings = table_findings(table)
    if args.write:
        table_path.parent.mkdir(parents=True, exist_ok=True)
        table_path.write_text(table.render_json(), encoding="utf-8")
        print("wrote %s" % table_path, file=sys.stderr)
    elif args.check:
        findings.extend(_check_drift(table, table_path))
        findings.sort(key=Finding.sort_key)

    if args.baseline is not None:
        if not args.baseline.exists():
            print("error: no such baseline: %s" % args.baseline,
                  file=sys.stderr)
            return 2
        try:
            findings = apply_baseline(findings,
                                      load_baseline(args.baseline))
        except ValueError as exc:
            print("error: %s" % exc, file=sys.stderr)
            return 2

    if args.format == "text":
        counts = {"safe-parallel": 0, "conflicts": 0, "unknown": 0}
        for pv in table.pairs.values():
            counts[pv.verdict] = counts.get(pv.verdict, 0) + 1
        print("stage-interference: %d stages, %d pairs "
              "(safe-parallel %d, conflicts %d, unknown %d)"
              % (len(table.stages), len(table.pairs),
                 counts["safe-parallel"], counts["conflicts"],
                 counts["unknown"]))
    if args.format == "json":
        print(render_json(findings))
    elif args.format == "github":
        # Analyze findings anchor at repo-root paths already.
        print(render_github(findings, prefix=""))
    else:
        print(render_text(findings))
    return 1 if findings else 0
