"""Load-spec parsing and deterministic workload generation.

A load spec is a JSON document describing a many-session workload as
*distributions*, not as a literal request list: how many asks, how the
question popularity is skewed (Zipf), how many sessions issue them,
how often writers interleave (each write is a batch barrier), and how
request bursts arrive on the work clock. :func:`generate_workload`
expands a spec against a domain's question pool into concrete
:class:`~repro.serving.scheduler.ServeRequest` streams — seeded, so
the same spec always yields the byte-identical workload.

Spec format (every key except ``name``/``domain``/``asks`` optional)::

    {
      "name": "ecommerce-steady",
      "domain": "ecommerce",
      "seed": 17,
      "asks": 96,
      "sessions": 4,
      "questions_per_kind": 2,
      "skew": 1.1,
      "burst": 8,
      "arrival": "fixed",          // or "poisson"
      "think_work": 5,             // work units between bursts
      "write_every": 24,
      "writes": [{"op": "sql", "statement": "INSERT ..."}],
      "warmup_passes": 1,
      "cache_policy": "full",
      "batch_size": 8,
      "session_budget": null,
      "max_queue_depth": null,
      "faults": null,              // resilience config document
      "speculation": true,         // false = sequential plan executor
      "shards": 1,                 // entity-keyed store shards (>= 1)
      "tenants": {"acme": 3, "globex": 1},   // weighted tenant mix
      "tenant_registry": {"tenants": [...]}  // repro tenants format
    }

Unknown keys and out-of-range values raise
:class:`~repro.errors.LoadGenError` at parse time, mirroring
:func:`repro.serving.workload.parse_workload`.
"""

from __future__ import annotations

import json
import math
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import LoadGenError, ServingError
from ..serving import ServeRequest, request_from_record

#: Legal top-level spec keys (anything else fails loudly).
SPEC_KEYS = (
    "name", "domain", "seed", "asks", "sessions", "questions_per_kind",
    "skew", "burst", "arrival", "think_work", "write_every", "writes",
    "warmup_passes", "cache_policy", "batch_size", "session_budget",
    "max_queue_depth", "faults", "speculation", "shards",
    "tenants", "tenant_registry",
)

_DOMAINS = ("ecommerce", "healthcare")
_ARRIVALS = ("fixed", "poisson")


def _require_int(data: Dict[str, Any], key: str, default: int,
                 minimum: int) -> int:
    """Fetch an integer spec field, enforcing its floor."""
    value = data.get(key, default)
    if not isinstance(value, int) or isinstance(value, bool):
        raise LoadGenError("spec key %r must be an integer, got %r"
                           % (key, value))
    if value < minimum:
        raise LoadGenError("spec key %r must be >= %d, got %d"
                           % (key, minimum, value))
    return value


def _parse_tenant_mix(raw: Any) -> Tuple[Tuple[str, float], ...]:
    """Validate the ``tenants`` weight map into a sorted tuple."""
    if raw is None:
        return ()
    if not isinstance(raw, dict) or not raw:
        raise LoadGenError(
            "spec tenants must be a non-empty object of id -> weight")
    mix: List[Tuple[str, float]] = []
    for tenant_id, weight in raw.items():
        if not tenant_id or not isinstance(tenant_id, str):
            raise LoadGenError(
                "spec tenants keys must be non-empty tenant ids")
        if not isinstance(weight, (int, float)) \
                or isinstance(weight, bool) or weight <= 0:
            raise LoadGenError(
                "spec tenants[%r] weight must be a number > 0, got %r"
                % (tenant_id, weight))
        mix.append((tenant_id, float(weight)))
    return tuple(sorted(mix))


@dataclass(frozen=True)
class LoadSpec:
    """One parsed, validated load-generation spec."""

    name: str
    domain: str
    asks: int
    seed: int = 17
    sessions: int = 4
    questions_per_kind: int = 2
    skew: float = 0.0
    burst: int = 8
    arrival: str = "fixed"
    think_work: int = 0
    write_every: int = 0
    writes: Tuple[Dict[str, Any], ...] = ()
    warmup_passes: int = 1
    cache_policy: str = "full"
    batch_size: int = 8
    session_budget: Optional[int] = None
    max_queue_depth: Optional[int] = None
    faults: Optional[Dict[str, Any]] = None
    speculation: bool = True
    shards: int = 1
    #: Weighted tenant mix: ((tenant_id, weight), ...) sorted by id;
    #: empty = untenanted (every ask runs as the permissive default).
    tenant_mix: Tuple[Tuple[str, float], ...] = ()
    #: Embedded tenant registry document (the ``repro tenants`` format)
    #: so a multi-tenant benchmark spec is fully self-describing.
    tenant_registry: Optional[Dict[str, Any]] = None

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "LoadSpec":
        """Parse and validate a spec document.

        Raises :class:`~repro.errors.LoadGenError` on unknown keys,
        missing required fields, or out-of-range values.
        """
        if not isinstance(data, dict):
            raise LoadGenError("a load spec must be a JSON object")
        unknown = sorted(set(data) - set(SPEC_KEYS))
        if unknown:
            raise LoadGenError(
                "unknown spec key(s) %s; expected a subset of %s"
                % (unknown, ", ".join(SPEC_KEYS))
            )
        for key in ("name", "domain", "asks"):
            if key not in data:
                raise LoadGenError("spec is missing required key %r" % key)
        domain = str(data["domain"])
        if domain not in _DOMAINS:
            raise LoadGenError(
                "spec domain %r unknown (expected one of %s)"
                % (domain, ", ".join(_DOMAINS))
            )
        arrival = str(data.get("arrival", "fixed"))
        if arrival not in _ARRIVALS:
            raise LoadGenError(
                "spec arrival %r unknown (expected one of %s)"
                % (arrival, ", ".join(_ARRIVALS))
            )
        skew = data.get("skew", 0.0)
        if not isinstance(skew, (int, float)) or isinstance(skew, bool) \
                or skew < 0:
            raise LoadGenError("spec skew must be a number >= 0, got %r"
                               % (skew,))
        write_every = _require_int(data, "write_every", 0, 0)
        writes_raw = data.get("writes", [])
        if not isinstance(writes_raw, list):
            raise LoadGenError("spec writes must be a list of records")
        writes: List[Dict[str, Any]] = []
        for position, record in enumerate(writes_raw, start=1):
            if not isinstance(record, dict):
                raise LoadGenError(
                    "spec write %d must be a JSON object, got %r"
                    % (position, record)
                )
            # Validate through the single serving vocabulary path; ask
            # records are not writes and would defeat the barrier role.
            try:
                request = request_from_record(
                    record, context="spec write %d" % position)
            except ServingError as exc:
                raise LoadGenError(str(exc)) from exc
            if request.op == "ask":
                raise LoadGenError(
                    "spec write %d is an 'ask'; writes must mutate a "
                    "store (sql / add_doc / add_text)" % position
                )
            writes.append(dict(record))
        if write_every > 0 and not writes:
            raise LoadGenError(
                "spec sets write_every=%d but provides no writes"
                % write_every
            )
        budget = data.get("session_budget")
        if budget is not None:
            budget = _require_int(data, "session_budget", 0, 1)
        depth = data.get("max_queue_depth")
        if depth is not None:
            depth = _require_int(data, "max_queue_depth", 0, 1)
        faults = data.get("faults")
        if faults is not None and not isinstance(faults, dict):
            raise LoadGenError(
                "spec faults must be a resilience config object"
            )
        speculation = data.get("speculation", True)
        if not isinstance(speculation, bool):
            raise LoadGenError(
                "spec speculation must be a boolean"
            )
        tenant_mix = _parse_tenant_mix(data.get("tenants"))
        registry_doc = data.get("tenant_registry")
        if registry_doc is not None:
            from ..tenancy import validate_registry_data

            findings = validate_registry_data(registry_doc)
            if findings:
                raise LoadGenError(
                    "spec tenant_registry is invalid: %s"
                    % "; ".join(findings)
                )
            registered = {
                str(record.get("id"))
                for record in registry_doc.get("tenants", [])
            } | {"default"}
            unknown_tenants = sorted(
                tenant_id for tenant_id, _weight in tenant_mix
                if tenant_id not in registered
            )
            if unknown_tenants:
                raise LoadGenError(
                    "spec tenants mix names unregistered tenant(s) %s"
                    % ", ".join(unknown_tenants)
                )
        elif tenant_mix and any(t != "default" for t, _ in tenant_mix):
            raise LoadGenError(
                "spec declares a tenants mix but no tenant_registry; "
                "embed the registry document so the run fails closed "
                "on unknown tenants"
            )
        return cls(
            name=str(data["name"]),
            domain=domain,
            asks=_require_int(data, "asks", 0, 1),
            seed=_require_int(data, "seed", 17, 0),
            sessions=_require_int(data, "sessions", 4, 1),
            questions_per_kind=_require_int(
                data, "questions_per_kind", 2, 1
            ),
            skew=float(skew),
            burst=_require_int(data, "burst", 8, 1),
            arrival=arrival,
            think_work=_require_int(data, "think_work", 0, 0),
            write_every=write_every,
            writes=tuple(writes),
            warmup_passes=_require_int(data, "warmup_passes", 1, 0),
            cache_policy=str(data.get("cache_policy", "full")),
            batch_size=_require_int(data, "batch_size", 8, 1),
            session_budget=budget,
            max_queue_depth=depth,
            faults=dict(faults) if faults is not None else None,
            speculation=speculation,
            shards=_require_int(data, "shards", 1, 1),
            tenant_mix=tenant_mix,
            tenant_registry=(dict(registry_doc)
                             if registry_doc is not None else None),
        )

    @classmethod
    def from_json(cls, text: str) -> "LoadSpec":
        """Parse a spec from JSON text."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise LoadGenError("load spec is not valid JSON: %s"
                               % exc) from exc
        return cls.from_dict(data)

    @classmethod
    def load(cls, path: str) -> "LoadSpec":
        """Read and parse a spec file."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-ready echo (stable across runs)."""
        return {
            "name": self.name,
            "domain": self.domain,
            "seed": self.seed,
            "asks": self.asks,
            "sessions": self.sessions,
            "questions_per_kind": self.questions_per_kind,
            "skew": self.skew,
            "burst": self.burst,
            "arrival": self.arrival,
            "think_work": self.think_work,
            "write_every": self.write_every,
            "writes": [dict(record) for record in self.writes],
            "warmup_passes": self.warmup_passes,
            "cache_policy": self.cache_policy,
            "batch_size": self.batch_size,
            "session_budget": self.session_budget,
            "max_queue_depth": self.max_queue_depth,
            "faults": dict(self.faults) if self.faults else None,
            "shards": self.shards,
            "tenants": ({tenant_id: weight
                         for tenant_id, weight in self.tenant_mix}
                        if self.tenant_mix else None),
            "tenant_registry": (dict(self.tenant_registry)
                                if self.tenant_registry else None),
        }


@dataclass(frozen=True)
class Burst:
    """One arrival group: a work-clock gap, then its requests.

    ``gap`` is charged to the pipeline's CostMeter *before* the burst
    is served — think time modelled on the work clock, so arrival
    schedules replay byte-for-byte on any machine.
    """

    gap: int
    requests: Tuple[ServeRequest, ...] = field(default_factory=tuple)


def zipf_weights(n: int, skew: float) -> List[float]:
    """Unnormalized Zipf weights for ranks 1..n (skew 0 = uniform)."""
    if n < 1:
        raise LoadGenError("zipf_weights needs at least one rank")
    return [1.0 / (rank ** skew) for rank in range(1, n + 1)]


def _draw(rng: random.Random, cumulative: Sequence[float]) -> int:
    """Inverse-CDF draw: index of the first cumulative weight >= u."""
    u = rng.random() * cumulative[-1]
    lo, hi = 0, len(cumulative) - 1
    while lo < hi:
        mid = (lo + hi) // 2
        if cumulative[mid] < u:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _poisson(rng: random.Random, mean: int) -> int:
    """Seeded Poisson draw (Knuth), for arrival think-time gaps."""
    if mean <= 0:
        return 0
    threshold = math.exp(-float(mean))
    count, product = 0, 1.0
    while True:
        product *= rng.random()
        if product <= threshold:
            return count
        count += 1


def generate_workload(spec: LoadSpec,
                      questions: Sequence[str]) -> List[Burst]:
    """Expand *spec* against a question pool into arrival bursts.

    Questions are drawn by Zipf rank over the pool's given order (rank
    1 = hottest), sessions uniformly; with a ``tenants`` mix each ask
    additionally draws its tenant by weight (same seeded stream, so
    the interleaving is reproducible). After every ``write_every``
    asks the next write template (cycled) is appended, acting as a
    batch barrier when served. Entirely driven by one
    ``random.Random(spec.seed)`` stream — the same spec and pool
    always produce the identical burst list.
    """
    if not questions:
        raise LoadGenError("cannot generate a workload from an empty "
                           "question pool")
    rng = random.Random(spec.seed)
    weights = zipf_weights(len(questions), spec.skew)
    cumulative: List[float] = []
    running = 0.0
    for weight in weights:
        running += weight
        cumulative.append(running)
    tenant_ids: List[str] = []
    tenant_cumulative: List[float] = []
    running = 0.0
    for tenant_id, weight in spec.tenant_mix:
        tenant_ids.append(tenant_id)
        running += weight
        tenant_cumulative.append(running)
    session_names = ["s%02d" % i for i in range(spec.sessions)]
    requests: List[ServeRequest] = []
    write_index = 0
    for ask_index in range(spec.asks):
        question = questions[_draw(rng, cumulative)]
        session = session_names[rng.randrange(spec.sessions)]
        tenant = (tenant_ids[_draw(rng, tenant_cumulative)]
                  if tenant_ids else "default")
        requests.append(ServeRequest(
            op="ask", payload={"question": question}, session=session,
            tenant=tenant,
        ))
        if spec.write_every and (ask_index + 1) % spec.write_every == 0:
            record = spec.writes[write_index % len(spec.writes)]
            write_index += 1
            requests.append(request_from_record(
                dict(record), context="spec write %d" % write_index,
            ))
    bursts: List[Burst] = []
    for start in range(0, len(requests), spec.burst):
        chunk = tuple(requests[start:start + spec.burst])
        if spec.arrival == "poisson":
            gap = _poisson(rng, spec.think_work)
        else:
            gap = spec.think_work
        bursts.append(Burst(gap=gap, requests=chunk))
    return bursts
