"""Secondary indexes: hash (equality) and sorted (range).

Indexes map column values to row ids within one table. The executor
consults them for point and range predicates; maintenance happens on
insert/delete through the owning :class:`~.table.Table`.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, List, Optional, Tuple

from ...errors import StorageError
from ..types import sort_key


class HashIndex:
    """Equality index: value → set of row ids."""

    def __init__(self, column: str):
        self.column = column
        self._buckets: Dict[Any, set] = {}

    def insert(self, value: Any, row_id: int) -> None:
        """Register *row_id* under *value*."""
        self._buckets.setdefault(value, set()).add(row_id)

    def remove(self, value: Any, row_id: int) -> None:
        """Unregister *row_id*; silently ignores unknown pairs."""
        bucket = self._buckets.get(value)
        if bucket is not None:
            bucket.discard(row_id)
            if not bucket:
                del self._buckets[value]

    def lookup(self, value: Any) -> List[int]:
        """Row ids whose column equals *value* (sorted for determinism)."""
        return sorted(self._buckets.get(value, ()))

    def __len__(self) -> int:
        return sum(len(b) for b in self._buckets.values())

    def distinct_values(self) -> int:
        """Number of distinct indexed values (for planner statistics)."""
        return len(self._buckets)


class SortedIndex:
    """Order-preserving index supporting range scans.

    Keeps parallel sorted lists of (sort_key(value), value, row_id).
    NULL values are excluded — SQL range predicates never match NULL.
    """

    def __init__(self, column: str):
        self.column = column
        self._keys: List[tuple] = []
        self._entries: List[Tuple[Any, int]] = []

    def insert(self, value: Any, row_id: int) -> None:
        """Insert one (value, row_id) pair, keeping sort order."""
        if value is None:
            return
        key = (sort_key(value), row_id)
        pos = bisect.bisect_left(self._keys, key)
        self._keys.insert(pos, key)
        self._entries.insert(pos, (value, row_id))

    def remove(self, value: Any, row_id: int) -> None:
        """Remove one pair; ignores pairs never inserted."""
        if value is None:
            return
        key = (sort_key(value), row_id)
        pos = bisect.bisect_left(self._keys, key)
        if pos < len(self._keys) and self._keys[pos] == key:
            del self._keys[pos]
            del self._entries[pos]

    def range(self, low: Any = None, high: Any = None,
              include_low: bool = True,
              include_high: bool = True) -> List[int]:
        """Row ids with low ≤ value ≤ high (bounds optional).

        Either bound may be ``None`` for an open interval.
        """
        if low is None:
            lo_pos = 0
        else:
            lo_key = (sort_key(low), -1 if include_low else float("inf"))
            if include_low:
                lo_pos = bisect.bisect_left(self._keys, (sort_key(low),))
            else:
                lo_pos = bisect.bisect_right(
                    self._keys, (sort_key(low), float("inf"))
                )
        if high is None:
            hi_pos = len(self._keys)
        else:
            if include_high:
                hi_pos = bisect.bisect_right(
                    self._keys, (sort_key(high), float("inf"))
                )
            else:
                hi_pos = bisect.bisect_left(self._keys, (sort_key(high),))
        return [row_id for _, row_id in self._entries[lo_pos:hi_pos]]

    def min_value(self) -> Optional[Any]:
        """Smallest indexed value (None when empty)."""
        return self._entries[0][0] if self._entries else None

    def max_value(self) -> Optional[Any]:
        """Largest indexed value (None when empty)."""
        return self._entries[-1][0] if self._entries else None

    def __len__(self) -> int:
        return len(self._entries)


INDEX_KINDS = {"hash": HashIndex, "sorted": SortedIndex}


def make_index(kind: str, column: str):
    """Factory for index objects by kind name ('hash' or 'sorted')."""
    try:
        return INDEX_KINDS[kind](column)
    except KeyError:
        raise StorageError("unknown index kind %r" % kind) from None
