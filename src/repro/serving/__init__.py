"""Query serving: multi-tier caching, batching, admission control.

Production-shaped serving over one
:class:`~repro.qa.pipeline.HybridQAPipeline`:

* :mod:`.cache` — generation-stamped answer/plan/retrieval tiers over
  the shared :class:`~repro.caching.CostAwareLRU` primitive, sized in
  CostMeter work units, invalidated write-through by store mutation
  and rebuild listeners;
* :mod:`.scheduler` — deterministic micro-batches with single-flight
  deduplication and write barriers, byte-for-byte equal to sequential
  execution;
* :mod:`.admission` — per-session work budgets and queue-depth load
  shedding through the resilience layer's typed-abstention vocabulary
  (shedding never raises);
* :mod:`.server` — the :class:`~.server.QueryServer` composition root;
* :mod:`.workload` — the JSONL workload format the CLI's ``serve``
  subcommand consumes.

Smoke-test the whole stack with ``python -m repro.serving.smoke``;
see ``docs/serving.md``.
"""

from .admission import (
    ANSWER_SYSTEM_SERVING, SHED_BUDGET, SHED_QUEUE, SHED_TENANT_QUOTA,
    SHED_TENANT_UNKNOWN, AdmissionController, AdmissionPolicy,
    shed_answer,
)
from .cache import (
    ANSWER_DEPS, KIND_DOCUMENT, KIND_GRAPH, KIND_RELATIONAL, KIND_TEXT,
    PLAN_DEPS, RETRIEVAL_DEPS, STORE_KINDS, AnswerCache, CachePolicy,
    Generations, MultiTierCache, PlanCache,
)
from .retrieval import CachingRetriever
from .scheduler import (
    BatchScheduler, METRIC_REQUEST_WORK, ServeRequest, ServeResult,
    normalize_question,
)
from .server import QueryServer, tenant_kind
from .workload import (
    OPS, load_workload, parse_workload, render_jsonl,
    repeated_questions, request_from_record,
)

__all__ = [
    "ANSWER_SYSTEM_SERVING", "SHED_BUDGET", "SHED_QUEUE",
    "SHED_TENANT_QUOTA", "SHED_TENANT_UNKNOWN", "AdmissionController",
    "AdmissionPolicy", "shed_answer",
    "ANSWER_DEPS", "KIND_DOCUMENT", "KIND_GRAPH", "KIND_RELATIONAL",
    "KIND_TEXT", "PLAN_DEPS", "RETRIEVAL_DEPS", "STORE_KINDS",
    "AnswerCache", "CachePolicy", "Generations", "MultiTierCache",
    "PlanCache",
    "CachingRetriever",
    "BatchScheduler", "METRIC_REQUEST_WORK", "ServeRequest",
    "ServeResult", "normalize_question",
    "QueryServer", "tenant_kind",
    "OPS", "load_workload", "parse_workload", "render_jsonl",
    "repeated_questions", "request_from_record",
]
