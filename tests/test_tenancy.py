"""Tests for the multi-tenant governance layer (repro.tenancy).

The load-bearing properties: tenant registries parse declaratively and
fail closed on anything unknown; contexts are immutable; the
``check_tenancy`` static pass rejects every ungoverned or
foreign-governed plan; work-clock quota buckets are deterministic; a
tenant exhausting its quota receives typed abstentions — never an
exception — while other tenants keep being served.
"""

import dataclasses
import json

import pytest

from repro.bench import LakeSpec, generate_ecommerce_lake
from repro.bench.runner import build_hybrid_system
from repro.cli import main
from repro.errors import TenancyError
from repro.serving import QueryServer, ServeRequest
from repro.tenancy import (
    DEFAULT_TENANT, PERMISSIVE_DEFAULT, RLSRule, TenantContext,
    TenantRegistry, WorkClockBucket, check_tenancy, tenancy_errors,
    validate_registry_data,
)

SEED = 11

REGISTRY_DOC = {
    "tenants": [
        {
            "id": "acme",
            "description": "EU storefront",
            "tables": ["products", "sales", "review_facts"],
            "rls": [
                {"table": "sales", "column": "quarter", "op": "=",
                 "value": "Q1"},
            ],
            "documents": ["review-"],
            "quota": {"capacity": 600, "refill": 0.5},
            "tier": "standard",
        },
        {"id": "globex", "description": "permissive analytics"},
    ]
}


@pytest.fixture(scope="module")
def registry():
    return TenantRegistry.from_dict(REGISTRY_DOC)


@pytest.fixture(scope="module")
def lake():
    return generate_ecommerce_lake(LakeSpec(n_products=4, seed=SEED))


@pytest.fixture(scope="module")
def pipeline(lake):
    _system, pipeline = build_hybrid_system(lake, seed=SEED)
    return pipeline


# ----------------------------------------------------------------------
# Registry parsing and fail-closed resolution
# ----------------------------------------------------------------------

class TestRegistry:
    def test_parses_declarative_doc(self, registry):
        acme = registry.context("acme")
        assert acme.tables == ("products", "sales", "review_facts")
        assert acme.rls[0] == RLSRule("sales", "quarter", "=", "Q1")
        assert acme.doc_scopes == ("review-",)
        assert acme.quota_capacity == 600
        assert acme.quota_refill == 0.5
        assert not acme.is_permissive

    def test_default_tenant_always_resolves(self, registry):
        context = registry.context(DEFAULT_TENANT)
        assert context.is_permissive
        assert context == PERMISSIVE_DEFAULT

    def test_unknown_tenant_fails_closed(self, registry):
        with pytest.raises(TenancyError):
            registry.context("stranger")

    def test_context_is_immutable(self, registry):
        acme = registry.context("acme")
        with pytest.raises(dataclasses.FrozenInstanceError):
            acme.tables = ()

    def test_validate_collects_findings_without_raising(self):
        findings = validate_registry_data({
            "tenants": [
                {"id": "a"},
                {"id": "a"},
                {"id": "b", "rls": [{"table": "t"}]},
                {"nope": True},
            ],
            "extra": 1,
        })
        assert len(findings) == 4  # key, dup id, bad rule, bad record
        with pytest.raises(TenancyError):
            TenantRegistry.from_dict({"tenants": [{"id": "a"},
                                                  {"id": "a"}]})

    def test_rejects_unknown_rls_op_and_tier(self):
        with pytest.raises(TenancyError):
            RLSRule("sales", "quarter", "between", "Q1")
        with pytest.raises(TenancyError):
            TenantContext(tenant_id="x", tier="platinum")

    def test_visibility_helpers(self, registry):
        acme = registry.context("acme")
        assert acme.table_visible("sales")
        assert not acme.table_visible("secrets")
        assert acme.doc_visible("review-003")
        assert not acme.doc_visible("ship-003")
        globex = registry.context("globex")
        assert globex.table_visible("anything")
        assert globex.doc_visible("anything")

    def test_tokens_are_deterministic(self, registry):
        acme = registry.context("acme")
        assert acme.rls_token() == "sales.quarter = 'Q1'"
        assert acme.scope_token() == "review-"
        assert acme.cache_key("q") == ("acme", "q")


# ----------------------------------------------------------------------
# check_tenancy: the compile-time governance gate
# ----------------------------------------------------------------------

class TestCheckTenancy:
    def test_ungoverned_plan_rejected_for_governed_tenant(
            self, pipeline, registry):
        acme = registry.context("acme")
        plan = pipeline.compile_plan(
            "What is the total sales of the Quartz Monitor in Q3?")
        errors = tenancy_errors(check_tenancy(plan, acme))
        assert errors
        assert {e.code for e in errors} >= {"tenancy-missing-rls"}

    def test_governed_plan_passes_its_own_gate(self, pipeline, registry):
        acme = registry.context("acme")
        plan = pipeline.compile_plan(
            "What is the total sales of the Quartz Monitor in Q3?",
            tenant=acme)
        assert tenancy_errors(check_tenancy(plan, acme)) == []

    def test_cross_tenant_replay_rejected(self, pipeline, registry):
        acme = registry.context("acme")
        plan = pipeline.compile_plan(
            "What is the total sales of the Quartz Monitor in Q3?",
            tenant=acme)
        # A permissive tenant must reject a plan carrying acme's
        # predicates — a stale (replayed) governance token.
        errors = tenancy_errors(
            check_tenancy(plan, registry.context("globex")))
        assert errors
        assert all(e.code.startswith("tenancy-stale") for e in errors)

    def test_governed_signatures_differ_per_tenant(
            self, pipeline, registry):
        question = "What is the total sales of the Quartz Monitor in Q3?"
        plain = pipeline.compile_plan(question).signature()
        acme = pipeline.compile_plan(
            question, tenant=registry.context("acme")).signature()
        globex = pipeline.compile_plan(
            question, tenant=registry.context("globex")).signature()
        assert acme != plain
        assert globex == plain  # permissive tenant injects nothing

    def test_invisible_table_flagged(self, registry):
        class Stage:
            def __init__(self, kind, params):
                self.id = kind.lower()
                self.kind = kind
                self.params = params

        class Plan:
            stages = (Stage("Route", (("bound_tables", "secrets"),)),)

        narrow = registry.context("acme")
        errors = tenancy_errors(check_tenancy(Plan(), narrow))
        assert [e.code for e in errors] == ["tenancy-invisible-table"]


# ----------------------------------------------------------------------
# Work-clock quota buckets
# ----------------------------------------------------------------------

class TestWorkClockBucket:
    def test_post_paid_deterministic_exhaustion(self):
        bucket = WorkClockBucket(capacity=100, refill=0.0, now=0)
        assert bucket.admit(0)
        bucket.charge(0, 250)          # debt allowed (post-paid)
        assert bucket.tokens == -150
        assert not bucket.admit(0)     # dry until refilled
        assert not bucket.admit(10)    # refill 0: never recovers
        assert bucket.spent == 250

    def test_refill_on_work_clock(self):
        bucket = WorkClockBucket(capacity=100, refill=1.0, now=0)
        bucket.charge(0, 150)
        assert not bucket.admit(0)
        assert bucket.admit(100)       # 100 work units refill 100 tokens
        bucket.admit(10_000)
        assert bucket.tokens == 100    # capped at capacity


# ----------------------------------------------------------------------
# Serving integration: quota exhaustion is typed, never raised
# ----------------------------------------------------------------------

class TestServingQuota:
    def make_server(self, lake, doc):
        _system, pipeline = build_hybrid_system(lake, seed=SEED)
        return QueryServer(pipeline,
                           tenants=TenantRegistry.from_dict(doc))

    def test_exhaustion_sheds_typed_and_isolates(self, lake):
        server = self.make_server(lake, {"tenants": [
            {"id": "greedy", "quota": {"capacity": 10, "refill": 0.0}},
            {"id": "quiet"},
        ]})
        questions = [
            pair.question for pair in lake.qa_pairs(per_kind=1)
        ][:3]
        greedy = [server.ask(q, session="g", tenant="greedy")
                  for q in questions]
        quiet = [server.ask(q, session="q", tenant="quiet")
                 for q in questions]
        # The first greedy ask admits (bucket starts full) and spends
        # past 10 units; everything after is shed, typed.
        assert not greedy[0].metadata.get("shed")
        for answer in greedy[1:]:
            assert answer.abstained
            assert answer.metadata.get("shed")
            assert "degradation" in answer.metadata
        # The quiet tenant is untouched by its neighbour's exhaustion.
        assert all(not a.metadata.get("shed") for a in quiet)
        stats = server.stats()["tenants"]
        assert stats["greedy"]["shed"] == len(questions) - 1
        assert stats["quiet"]["shed"] == 0
        assert stats["greedy"]["quota_balance"] < 0

    def test_unknown_tenant_shed_not_raised(self, lake):
        server = self.make_server(lake, {"tenants": [{"id": "quiet"}]})
        answer = server.ask("anything", tenant="stranger")
        assert answer.abstained
        assert answer.metadata.get("shed")

    def test_serve_requests_carry_tenant(self, lake):
        server = self.make_server(lake, {"tenants": [
            {"id": "greedy", "quota": {"capacity": 50, "refill": 0.0}},
            {"id": "quiet"},
        ]})
        question = lake.qa_pairs(per_kind=1)[0].question
        requests = [
            ServeRequest(op="ask", payload={"question": question},
                         session="s", tenant=tenant)
            for tenant in ("greedy", "greedy", "quiet")
        ]
        results = server.serve(requests)
        assert [r.tenant for r in results] == ["greedy", "greedy",
                                               "quiet"]
        assert not any(r.answer is None for r in results)

    def test_invalidate_tenant_drops_one_tenants_entries(self, lake):
        server = self.make_server(lake, {"tenants": [
            {"id": "a"}, {"id": "b"},
        ]})
        question = lake.qa_pairs(per_kind=1)[0].question
        for tenant in ("a", "b", "a", "b"):
            server.ask(question, tenant=tenant)
        before = server.stats()["tenants"]
        assert before["a"]["answer_hits"] == 1
        assert before["b"]["answer_hits"] == 1
        server.invalidate_tenant("a")
        for tenant in ("a", "b"):
            server.ask(question, tenant=tenant)
        after = server.stats()["tenants"]
        assert after["a"]["answer_hits"] == 1  # miss: entry dropped
        assert after["b"]["answer_hits"] == 2  # hit: neighbour intact
        with pytest.raises(TenancyError):
            server.invalidate_tenant("stranger")


# ----------------------------------------------------------------------
# CLI: repro tenants (validate / list)
# ----------------------------------------------------------------------

class TestTenantsCli:
    def test_valid_file_exits_zero_and_lists(self, tmp_path, capsys):
        path = tmp_path / "tenants.json"
        path.write_text(json.dumps(REGISTRY_DOC))
        assert main(["tenants", str(path), "--list"]) == 0
        out = capsys.readouterr().out
        assert "ok (3 tenant(s))" in out   # acme, globex + default
        assert "acme:" in out and "quota=600@0.50" in out

    def test_findings_exit_one(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(
            {"tenants": [{"id": "x", "tier": "platinum"}]}))
        assert main(["tenants", str(path)]) == 1
        assert "finding(s)" in capsys.readouterr().out

    def test_unreadable_exit_two(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{nope")
        assert main(["tenants", str(path)]) == 2
        assert main(["tenants", str(tmp_path / "missing.json")]) == 2

    def test_ask_rejects_unknown_tenant(self, tmp_path):
        path = tmp_path / "tenants.json"
        path.write_text(json.dumps(REGISTRY_DOC))
        with pytest.raises(SystemExit):
            main(["ask", "anything", "--domain", "ecommerce",
                  "--tenants", str(path), "--tenant", "stranger"])
