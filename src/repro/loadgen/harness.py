"""The closed-loop load harness: spec -> traffic -> measurements -> SLO.

:func:`run_load` closes the loop the ROADMAP asks for: it builds the
benchmark domain named by a :class:`~.spec.LoadSpec`, expands the spec
into seeded arrival bursts, drives the full
:class:`~repro.serving.QueryServer` stack (caches, micro-batches,
admission, optional chaos), collects per-request **work-clock**
latency samples plus error/abstention/shed counts and cache-tier hit
rates, and evaluates the result against a declarative
:class:`~.slo.SLOSpec`. Every measured number is deterministic — two
runs of the same spec produce byte-identical reports — so an SLO
breach in CI is a real regression, never flake.

Arrival think-time is charged to the pipeline's CostMeter between
bursts (counter ``loadgen.think_work``): the arrival schedule lives on
the same work clock as resilience budgets and cache costs, advancing
deterministically instead of sleeping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..bench import (
    HealthSpec, LakeSpec, generate_ecommerce_lake, generate_healthcare_lake,
)
from ..bench.runner import build_hybrid_system
from ..errors import LoadGenError
from ..obs import MetricsRegistry
from ..resilience import ResilienceConfig, work_now
from ..serving import (
    AdmissionPolicy, CachePolicy, QueryServer, ServeRequest, ServeResult,
)
from ..tenancy import TenantRegistry
from .slo import SLOReport, SLOSpec, evaluate
from .spec import Burst, LoadSpec, generate_workload

#: CostMeter counter charged for inter-burst think time.
THINK_WORK = "loadgen.think_work"

#: Local-registry histogram holding every per-request work sample.
METRIC_LOAD_WORK = "loadgen.request.work"

#: Tiers whose hit rates the harness reports (when enabled).
_RATED_TIERS = ("answer", "plan", "retrieval")


@dataclass
class LoadReport:
    """Everything one load run produced.

    ``measurements`` is the flat, JSON-ready metric dict SLO gates
    read; ``verdict`` is None when no SLO spec was supplied.
    """

    spec: LoadSpec
    slo: Optional[SLOSpec]
    measurements: Dict[str, Any]
    verdict: Optional[SLOReport]
    questions: Tuple[str, ...]

    @property
    def passed(self) -> bool:
        """True when there is no verdict or every gate passed."""
        return self.verdict is None or self.verdict.passed


def build_server(spec: LoadSpec) -> Tuple[Any, QueryServer]:
    """Build the lake + pipeline + server a spec describes.

    Applies the spec's cache policy, admission limits and (optional)
    resilience/fault configuration — the same wiring the CLI's
    ``serve`` subcommand performs, derived entirely from the spec so
    runs are self-describing.
    """
    if spec.domain == "ecommerce":
        lake = generate_ecommerce_lake(LakeSpec(seed=spec.seed))
    else:
        lake = generate_healthcare_lake(HealthSpec(seed=spec.seed))
    _system, pipeline = build_hybrid_system(lake, seed=spec.seed,
                                            n_shards=spec.shards)
    if not spec.speculation:
        pipeline.set_speculative(False)
    if spec.faults is not None:
        pipeline.enable_resilience(ResilienceConfig.from_dict(spec.faults))
    try:
        policy = CachePolicy.from_string(spec.cache_policy)
    except ValueError as exc:
        raise LoadGenError("spec cache_policy invalid: %s" % exc) from exc
    admission = None
    if spec.session_budget is not None or spec.max_queue_depth is not None:
        admission = AdmissionPolicy(
            session_budget=spec.session_budget,
            max_queue_depth=spec.max_queue_depth,
        )
    registry = (TenantRegistry.from_dict(spec.tenant_registry)
                if spec.tenant_registry is not None
                else TenantRegistry(()))
    server = QueryServer(pipeline, policy=policy, admission=admission,
                         batch_size=spec.batch_size, tenants=registry)
    return lake, server


def _tier_lookups(server: QueryServer) -> Dict[str, Tuple[int, int]]:
    """Per-tier (hits, misses) right now — for delta hit rates."""
    stats = server.stats()["cache"]
    return {
        tier: (stats[tier]["hits"], stats[tier]["misses"])
        for tier in _RATED_TIERS if tier in stats
    }


def _hit_rates(before: Dict[str, Tuple[int, int]],
               after: Dict[str, Tuple[int, int]]) -> Dict[str, float]:
    """Hit rate per tier over the lookups between two snapshots."""
    rates: Dict[str, float] = {}
    for tier in _RATED_TIERS:
        if tier not in after:
            rates["%s_hit_rate" % tier] = 0.0
            continue
        hits = after[tier][0] - before.get(tier, (0, 0))[0]
        misses = after[tier][1] - before.get(tier, (0, 0))[1]
        total = hits + misses
        rates["%s_hit_rate" % tier] = (
            round(hits / total, 6) if total else 0.0
        )
    return rates


def _warmup_requests(spec: LoadSpec,
                     questions: Tuple[str, ...]) -> List[ServeRequest]:
    """One ask per pool question, on a dedicated warmup session.

    Warmup traffic primes the cache tiers without touching the measured
    sessions' budgets, so admission isolation results stay clean.
    """
    return [
        ServeRequest(op="ask", payload={"question": question},
                     session="warmup")
        for question in questions
    ] * spec.warmup_passes


def _measure(results: List[ServeResult], registry: MetricsRegistry,
             total_work: int, warmup_work: int,
             think_charged: int, n_batches: int,
             rates: Dict[str, float]) -> Dict[str, Any]:
    """Fold serve results into the flat measurement dict gates read."""
    asks = [r for r in results if r.op == "ask"]
    writes = [r for r in results if r.op != "ask"]
    served = [r for r in asks if not r.shed]
    n_shed = len(asks) - len(served)
    n_deduped = sum(1 for r in served if r.deduped)
    n_errors = sum(
        1 for r in served
        if r.answer is not None and r.answer.metadata.get("degraded")
    )
    n_abstained = sum(
        1 for r in asks if r.answer is not None and r.answer.abstained
    )
    histogram = registry.histogram(METRIC_LOAD_WORK, reservoir=0)
    for result in served:
        histogram.observe(result.work)
    n_asks = len(asks)
    measurements: Dict[str, Any] = {
        "asks": n_asks,
        "writes": len(writes),
        "batches": n_batches,
        "served": len(served),
        "shed": n_shed,
        "deduped": n_deduped,
        "errors": n_errors,
        "abstained": n_abstained,
        "total_work": total_work,
        "warmup_work": warmup_work,
        "think_work": think_charged,
        "error_rate": round(n_errors / n_asks, 6) if n_asks else 0.0,
        "abstain_rate": round(n_abstained / n_asks, 6) if n_asks else 0.0,
        "shed_rate": round(n_shed / n_asks, 6) if n_asks else 0.0,
        "dedup_rate": round(n_deduped / n_asks, 6) if n_asks else 0.0,
    }
    measurements.update(rates)
    if served:
        measurements.update({
            "work_p50": int(histogram.quantile(0.50)),
            "work_p95": int(histogram.quantile(0.95)),
            "work_p99": int(histogram.quantile(0.99)),
            "work_max": int(histogram.max or 0),
            "work_mean": round(histogram.mean, 2),
        })
    measurements.update(_tenant_measurements(asks, registry))
    return measurements


def _tenant_measurements(asks: List[ServeResult],
                         registry: MetricsRegistry) -> Dict[str, Any]:
    """Per-tenant slices, flattened as ``tenant.<id>.<metric>``.

    Only emitted for multi-tenant runs (more than one tenant observed),
    so untenanted reports stay byte-identical to before.
    """
    tenants = sorted({r.tenant for r in asks})
    if len(tenants) < 2:
        return {}
    out: Dict[str, Any] = {}
    for tenant in tenants:
        mine = [r for r in asks if r.tenant == tenant]
        served = [r for r in mine if not r.shed]
        n_shed = len(mine) - len(served)
        n_abstained = sum(
            1 for r in mine
            if r.answer is not None and r.answer.abstained
        )
        histogram = registry.histogram(
            "%s.%s" % (METRIC_LOAD_WORK, tenant), reservoir=0)
        for result in served:
            histogram.observe(result.work)
        prefix = "tenant.%s." % tenant
        out[prefix + "asks"] = len(mine)
        out[prefix + "served"] = len(served)
        out[prefix + "shed"] = n_shed
        out[prefix + "shed_rate"] = (
            round(n_shed / len(mine), 6) if mine else 0.0)
        out[prefix + "abstain_rate"] = (
            round(n_abstained / len(mine), 6) if mine else 0.0)
        if served:
            out[prefix + "work_p50"] = int(histogram.quantile(0.50))
            out[prefix + "work_p95"] = int(histogram.quantile(0.95))
            out[prefix + "total_work"] = sum(r.work for r in served)
    return out


def run_load(spec: LoadSpec,
             slo: Optional[SLOSpec] = None) -> LoadReport:
    """Run one spec end to end and (optionally) gate it on an SLO.

    Deterministic by construction: the lake, the pipeline, the
    workload and every measured number derive from ``spec.seed`` and
    the work clock — wall time never appears in the measurements.
    """
    lake, server = build_server(spec)
    pairs = lake.qa_pairs(per_kind=spec.questions_per_kind)
    questions = tuple(pair.question for pair in pairs)
    bursts = generate_workload(spec, questions)
    meter = server.pipeline.meter

    warmup_before = work_now(meter)
    warmup = _warmup_requests(spec, questions)
    if warmup:
        server.serve(warmup)
    warmup_work = work_now(meter) - warmup_before

    lookups_before = _tier_lookups(server)
    batches_before = server.stats()["scheduler"]["batches"]
    measured_before = work_now(meter)
    think_charged = 0
    results: List[ServeResult] = []
    for burst in bursts:
        if burst.gap:
            meter.charge(THINK_WORK, burst.gap)
            think_charged += burst.gap
        results.extend(server.serve(list(burst.requests)))
    total_work = work_now(meter) - measured_before
    n_batches = server.stats()["scheduler"]["batches"] - batches_before

    registry = MetricsRegistry()
    measurements = _measure(
        results, registry, total_work, warmup_work, think_charged,
        n_batches, _hit_rates(lookups_before, _tier_lookups(server)),
    )
    verdict = evaluate(measurements, slo)
    return LoadReport(spec=spec, slo=slo, measurements=measurements,
                      verdict=verdict, questions=questions)


def run_bursts(server: QueryServer,
               bursts: List[Burst]) -> List[ServeResult]:
    """Serve pre-generated bursts on an existing server (test hook).

    Charges each burst's think gap to the server's meter first, exactly
    as :func:`run_load` does, but leaves measurement to the caller.
    """
    results: List[ServeResult] = []
    meter = server.pipeline.meter
    for burst in bursts:
        if burst.gap:
            meter.charge(THINK_WORK, burst.gap)
        results.extend(server.serve(list(burst.requests)))
    return results
