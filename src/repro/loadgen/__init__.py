"""Closed-loop load generation and SLO gating for the serving stack.

The verification substrate for the serving layer's scale claims:

* :mod:`.spec` — seeded workload specs (session mixes, Zipf question
  skew, interleaved writer barriers, work-clock arrival schedules,
  optional fault plans) expanded into deterministic request bursts
  layered on the :mod:`repro.serving.workload` vocabulary;
* :mod:`.slo` — declarative SLO gates (P50/P95/P99 work latency,
  error/abstention/shed ceilings, cache-hit floors) evaluated with
  exact nearest-rank percentiles;
* :mod:`.harness` — :func:`~.harness.run_load` drives the full
  :class:`~repro.serving.QueryServer` stack end to end and folds the
  results into the flat measurement dict the gates read;
* :mod:`.report` — the canonical byte-stable ``BENCH_load.json``
  payload;
* :mod:`.cli` — ``python -m repro.loadgen --spec S --slo L`` (also
  surfaced as ``repro load``), exit code 1 on any gate breach — the
  hook that lets CI fail the build when the hot path regresses.

Everything is measured on the CostMeter work clock — never wall time —
so two runs of one spec at one seed produce byte-identical reports.
See ``docs/serving.md`` ("Load testing & SLOs").
"""

from .harness import (
    LoadReport, METRIC_LOAD_WORK, THINK_WORK, build_server, run_bursts,
    run_load,
)
from .report import bench_payload, run_payload, to_json, write_report
from .slo import GATES, GateResult, SLOReport, SLOSpec, evaluate
from .spec import (
    Burst, LoadSpec, SPEC_KEYS, generate_workload, zipf_weights,
)

__all__ = [
    "LoadReport", "METRIC_LOAD_WORK", "THINK_WORK", "build_server",
    "run_bursts", "run_load",
    "bench_payload", "run_payload", "to_json", "write_report",
    "GATES", "GateResult", "SLOReport", "SLOSpec", "evaluate",
    "Burst", "LoadSpec", "SPEC_KEYS", "generate_workload",
    "zipf_weights",
]
