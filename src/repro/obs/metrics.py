"""Process-wide metrics: named counters and streaming histograms.

The registry complements tracing: spans answer "where did *this* query
spend its budget", metrics answer "what is the system doing over time"
(answer latency distribution, fusion candidate pools, rows scanned).
Everything is plain Python — a counter increment is one dict lookup and
an integer add, cheap enough to record unconditionally.

Canonical metric names used across the library:

* ``qa.answer.count`` / ``qa.answer.latency`` / ``qa.answer.work`` —
  pipeline answers (wall seconds and CostMeter work units);
* ``retrieval.fusion.candidates`` — RRF merged pool size per query;
* ``sql.statements`` / ``sql.rows_scanned`` — relational engine work.
"""

from __future__ import annotations

import json
import math
from collections import deque
from typing import Any, Deque, Dict, Optional, Sequence, Tuple

#: Per-answer wall latency in seconds (machine-dependent; useful for
#: live dashboards, never for reproducible comparisons).
METRIC_ANSWER_LATENCY = "qa.answer.latency"
#: Per-answer cost in CostMeter work units — the machine-independent
#: latency reading, on the same clock as resilience budgets/backoff.
METRIC_ANSWER_WORK = "qa.answer.work"
#: A speculative race settled on a winning arm (non-abstained answer).
METRIC_SPECULATION_WIN = "speculation.arm.win"
#: A speculative arm was cancelled: either the race settled before the
#: arm started, or its rescue reserve cut a faulting arm off mid-run.
METRIC_SPECULATION_CANCELLED = "speculation.arm.cancelled"
#: A speculative plan answered although at least one arm failed
#: fatally — the surviving arm rescued the question.
METRIC_SPECULATION_RESCUED = "speculation.rescued"
#: Histogram of CostMeter work units each cancelled arm had consumed
#: when it was cancelled (0 for race losers that never started).
METRIC_SPECULATION_CANCELLED_WORK = "speculation.cancelled_work"

# Bound the per-histogram sample reservoir so long-running processes
# keep constant memory; quantiles are over the most recent window.
_RESERVOIR = 1024


def nearest_rank(values: Sequence[float], q: float) -> float:
    """Exact nearest-rank quantile of *values* (q in [0, 1]).

    The smallest element whose cumulative frequency is >= q: rank
    ``max(1, ceil(q * n))`` in the sorted sample. Unlike interpolating
    estimators this always returns an *observed* value, so percentile
    gates computed from integer work-unit samples stay integers and
    compare deterministically.

    >>> nearest_rank([10, 20, 30, 40], 0.5)
    20
    >>> nearest_rank([7], 0.99)
    7

    Raises :class:`ValueError` on an empty sample or q outside [0, 1]
    — SLO math must fail loudly, never silently default.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1], got %r" % (q,))
    ordered = sorted(values)
    if not ordered:
        raise ValueError("nearest_rank() of an empty sample")
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


class Counter:
    """A named monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add *amount* (must be non-negative)."""
        if amount < 0:
            raise ValueError("counter increments must be non-negative")
        self.value += amount


class Histogram:
    """Streaming summary of observed values.

    Keeps exact count/sum/min/max plus a reservoir of the most recent
    observations for quantile estimates. The reservoir is bounded by
    default (constant memory for long-running processes); pass
    ``reservoir=0`` to keep *every* observation, which makes
    :meth:`quantile` exact over the full sample — the mode the load
    harness uses for SLO percentile gates.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_recent")

    def __init__(self, name: str, reservoir: Optional[int] = _RESERVOIR):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._recent: Deque[float] = deque(
            maxlen=reservoir if reservoir else None
        )

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self._recent.append(value)

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """Nearest-rank quantile over the observation window.

        Exact over every observation when the histogram was built with
        ``reservoir=0``; otherwise over the most recent window. None
        before any observation.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if not self._recent:
            return None
        return nearest_rank(self._recent, q)

    def values(self) -> Tuple[float, ...]:
        """The retained observations, in arrival order."""
        return tuple(self._recent)

    def summary(self) -> Dict[str, Any]:
        """count/mean/min/max/p50/p95/p99 as a plain dict."""
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """A named bag of counters and histograms.

    >>> registry = MetricsRegistry()
    >>> registry.counter("sql.statements").inc()
    >>> registry.histogram("qa.answer.latency").observe(0.25)
    >>> registry.snapshot()["counters"]["sql.statements"]
    1
    """

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter named *name*, created on first use."""
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def histogram(self, name: str,
                  reservoir: Optional[int] = _RESERVOIR) -> Histogram:
        """The histogram named *name*, created on first use.

        *reservoir* applies only at creation time (``0`` = keep every
        observation, for exact full-sample percentiles); a histogram
        that already exists keeps its original window.
        """
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(
                name, reservoir=reservoir
            )
        return histogram

    def snapshot(self) -> Dict[str, Any]:
        """All metric values as one JSON-ready dict."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "histograms": {
                name: h.summary()
                for name, h in sorted(self._histograms.items())
            },
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialize :meth:`snapshot` as JSON text."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def render(self) -> str:
        """Fixed-width text rendering (for CLI and reports)."""
        lines = []
        if self._counters:
            lines.append("counters:")
            width = max(len(n) for n in self._counters)
            for name in sorted(self._counters):
                lines.append("  %-*s %d" % (
                    width, name, self._counters[name].value
                ))
        if self._histograms:
            lines.append("histograms:")
            width = max(len(n) for n in self._histograms)
            for name in sorted(self._histograms):
                s = self._histograms[name].summary()
                lines.append(
                    "  %-*s count=%d mean=%.6g min=%.6g max=%.6g" % (
                        width, name, s["count"], s["mean"],
                        s["min"] or 0.0, s["max"] or 0.0,
                    )
                )
        return "\n".join(lines) if lines else "(no metrics recorded)"

    def reset(self) -> None:
        """Drop every counter and histogram."""
        self._counters.clear()
        self._histograms.clear()


REGISTRY = MetricsRegistry()
"""Process-wide default registry used by the helpers below."""


def incr(name: str, amount: int = 1) -> None:
    """Increment a counter in the process-wide registry."""
    REGISTRY.counter(name).inc(amount)


def observe(name: str, value: float) -> None:
    """Record a histogram observation in the process-wide registry."""
    REGISTRY.histogram(name).observe(value)
