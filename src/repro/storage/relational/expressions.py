"""Expression AST and evaluator for the SQL subset.

Expressions evaluate against a *row context*: a mapping from column
name (optionally qualified, "table.column") to value. NULL semantics
follow SQL pragmatically: NULL propagates through arithmetic and
comparisons, and a NULL predicate result filters the row out.
"""

from __future__ import annotations

import datetime as _dt
import re
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ...errors import ExecutionError, PlanError


class Expression:
    """Base class: all expressions implement ``evaluate`` and ``columns``."""

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        """Value of this expression for *row*."""
        raise NotImplementedError

    def columns(self) -> List[str]:
        """All column names referenced (for validation and planning)."""
        return []

    def sql(self) -> str:
        """Render back to SQL-ish text (used in EXPLAIN and tests)."""
        raise NotImplementedError


@dataclass(frozen=True)
class Literal(Expression):
    """A constant value."""

    value: Any

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        return self.value

    def sql(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, str):
            return "'%s'" % self.value.replace("'", "''")
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        if isinstance(self.value, _dt.date):
            return "'%s'" % self.value.isoformat()
        return str(self.value)


@dataclass(frozen=True)
class ColumnRef(Expression):
    """A reference to a column, optionally table-qualified."""

    name: str
    table: Optional[str] = None

    @property
    def qualified(self) -> str:
        """The fully qualified name when a table is present."""
        if self.table:
            return "%s.%s" % (self.table, self.name)
        return self.name

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        if self.table:
            key = self.qualified
            if key in row:
                return row[key]
        if self.name in row:
            return row[self.name]
        # Fall back: unique suffix match over qualified keys.
        suffix = "." + self.name
        hits = [k for k in row if k.endswith(suffix)]
        if len(hits) == 1:
            return row[hits[0]]
        if len(hits) > 1:
            raise ExecutionError(
                "ambiguous column %r (candidates: %s)"
                % (self.name, ", ".join(sorted(hits)))
            )
        raise ExecutionError("unknown column %r" % self.qualified)

    def columns(self) -> List[str]:
        return [self.qualified]

    def sql(self) -> str:
        return self.qualified


def _null_if_any_none(fn: Callable) -> Callable:
    def wrapped(a, b):
        if a is None or b is None:
            return None
        return fn(a, b)
    return wrapped


def _cmp_values(a: Any, b: Any) -> Optional[int]:
    if a is None or b is None:
        return None
    if isinstance(a, bool) or isinstance(b, bool):
        if isinstance(a, bool) and isinstance(b, bool):
            return (a > b) - (a < b)
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return (a > b) - (a < b)
    if isinstance(a, _dt.date) and isinstance(b, _dt.date):
        return (a > b) - (a < b)
    if isinstance(a, str) and isinstance(b, str):
        return (a > b) - (a < b)
    raise ExecutionError(
        "cannot compare %r (%s) with %r (%s)"
        % (a, type(a).__name__, b, type(b).__name__)
    )


_BINOPS: Dict[str, Callable] = {
    "+": _null_if_any_none(lambda a, b: a + b),
    "-": _null_if_any_none(lambda a, b: a - b),
    "*": _null_if_any_none(lambda a, b: a * b),
    "/": _null_if_any_none(
        lambda a, b: (a / b) if b != 0 else None
    ),
    "%": _null_if_any_none(lambda a, b: (a % b) if b != 0 else None),
}

_COMPARISONS = {
    "=": lambda c: c == 0,
    "!=": lambda c: c != 0,
    "<>": lambda c: c != 0,
    "<": lambda c: c < 0,
    "<=": lambda c: c <= 0,
    ">": lambda c: c > 0,
    ">=": lambda c: c >= 0,
}


@dataclass(frozen=True)
class BinaryOp(Expression):
    """Arithmetic, comparison, or boolean connective."""

    op: str
    left: Expression
    right: Expression

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        op = self.op.upper() if self.op.isalpha() else self.op
        if op == "AND":
            lhs = self.left.evaluate(row)
            if lhs is False:
                return False
            rhs = self.right.evaluate(row)
            if rhs is False:
                return False
            if lhs is None or rhs is None:
                return None
            return bool(lhs) and bool(rhs)
        if op == "OR":
            lhs = self.left.evaluate(row)
            if lhs is True:
                return True
            rhs = self.right.evaluate(row)
            if rhs is True:
                return True
            if lhs is None or rhs is None:
                return None
            return bool(lhs) or bool(rhs)
        lhs = self.left.evaluate(row)
        rhs = self.right.evaluate(row)
        if op in _BINOPS:
            return _BINOPS[op](lhs, rhs)
        if op in _COMPARISONS:
            cmp = _cmp_values(lhs, rhs)
            if cmp is None:
                return None
            return _COMPARISONS[op](cmp)
        raise PlanError("unknown binary operator %r" % self.op)

    def columns(self) -> List[str]:
        return self.left.columns() + self.right.columns()

    def sql(self) -> str:
        return "(%s %s %s)" % (self.left.sql(), self.op, self.right.sql())


@dataclass(frozen=True)
class UnaryOp(Expression):
    """NOT or arithmetic negation."""

    op: str
    operand: Expression

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        value = self.operand.evaluate(row)
        op = self.op.upper()
        if op == "NOT":
            if value is None:
                return None
            return not bool(value)
        if op == "-":
            if value is None:
                return None
            return -value
        raise PlanError("unknown unary operator %r" % self.op)

    def columns(self) -> List[str]:
        return self.operand.columns()

    def sql(self) -> str:
        return "(%s %s)" % (self.op, self.operand.sql())


@dataclass(frozen=True)
class IsNull(Expression):
    """``expr IS [NOT] NULL``."""

    operand: Expression
    negated: bool = False

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        is_null = self.operand.evaluate(row) is None
        return (not is_null) if self.negated else is_null

    def columns(self) -> List[str]:
        return self.operand.columns()

    def sql(self) -> str:
        return "(%s IS %sNULL)" % (
            self.operand.sql(), "NOT " if self.negated else ""
        )


@dataclass(frozen=True)
class InList(Expression):
    """``expr [NOT] IN (v1, v2, ...)``."""

    operand: Expression
    options: Tuple[Expression, ...]
    negated: bool = False

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        value = self.operand.evaluate(row)
        if value is None:
            return None
        found = any(
            _cmp_values(value, opt.evaluate(row)) == 0
            for opt in self.options
            if opt.evaluate(row) is not None
        )
        return (not found) if self.negated else found

    def columns(self) -> List[str]:
        cols = self.operand.columns()
        for opt in self.options:
            cols.extend(opt.columns())
        return cols

    def sql(self) -> str:
        return "(%s %sIN (%s))" % (
            self.operand.sql(),
            "NOT " if self.negated else "",
            ", ".join(o.sql() for o in self.options),
        )


@dataclass(frozen=True)
class Like(Expression):
    """``expr [NOT] LIKE pattern`` with % and _ wildcards."""

    operand: Expression
    pattern: str
    negated: bool = False

    def _regex(self) -> "re.Pattern":
        out = []
        for ch in self.pattern:
            if ch == "%":
                out.append(".*")
            elif ch == "_":
                out.append(".")
            else:
                out.append(re.escape(ch))
        return re.compile("^%s$" % "".join(out), re.IGNORECASE)

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        value = self.operand.evaluate(row)
        if value is None:
            return None
        matched = bool(self._regex().match(str(value)))
        return (not matched) if self.negated else matched

    def columns(self) -> List[str]:
        return self.operand.columns()

    def sql(self) -> str:
        return "(%s %sLIKE '%s')" % (
            self.operand.sql(), "NOT " if self.negated else "", self.pattern
        )


@dataclass(frozen=True)
class Between(Expression):
    """``expr BETWEEN low AND high`` (inclusive)."""

    operand: Expression
    low: Expression
    high: Expression

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        value = self.operand.evaluate(row)
        lo = self.low.evaluate(row)
        hi = self.high.evaluate(row)
        c1 = _cmp_values(value, lo)
        c2 = _cmp_values(value, hi)
        if c1 is None or c2 is None:
            return None
        return c1 >= 0 and c2 <= 0

    def columns(self) -> List[str]:
        return (self.operand.columns() + self.low.columns()
                + self.high.columns())

    def sql(self) -> str:
        return "(%s BETWEEN %s AND %s)" % (
            self.operand.sql(), self.low.sql(), self.high.sql()
        )


_SCALAR_FUNCS: Dict[str, Callable] = {
    "upper": lambda v: None if v is None else str(v).upper(),
    "lower": lambda v: None if v is None else str(v).lower(),
    "length": lambda v: None if v is None else len(str(v)),
    "abs": lambda v: None if v is None else abs(v),
    "round": lambda v, d=0: None if v is None else round(v, int(d)),
    "trim": lambda v: None if v is None else str(v).strip(),
    "year": lambda v: None if v is None else v.year,
    "month": lambda v: None if v is None else v.month,
}


@dataclass(frozen=True)
class FunctionCall(Expression):
    """Scalar function call (UPPER, LOWER, LENGTH, ABS, ROUND, ...)."""

    name: str
    args: Tuple[Expression, ...]

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        fn = _SCALAR_FUNCS.get(self.name.lower())
        if fn is None:
            if self.name.lower() == "coalesce":
                for arg in self.args:
                    value = arg.evaluate(row)
                    if value is not None:
                        return value
                return None
            raise PlanError("unknown function %r" % self.name)
        try:
            return fn(*[a.evaluate(row) for a in self.args])
        except TypeError as exc:
            raise ExecutionError(
                "bad arguments for %s(): %s" % (self.name, exc)
            ) from exc

    def columns(self) -> List[str]:
        cols: List[str] = []
        for arg in self.args:
            cols.extend(arg.columns())
        return cols

    def sql(self) -> str:
        return "%s(%s)" % (
            self.name.upper(), ", ".join(a.sql() for a in self.args)
        )


def predicate_matches(expr: Expression, row: Mapping[str, Any]) -> bool:
    """Evaluate a WHERE/HAVING predicate: NULL counts as no-match."""
    result = expr.evaluate(row)
    return bool(result) if result is not None else False
