"""The docs/TUTORIAL.md walkthrough, executed end to end.

If this suite fails, the tutorial is lying to users — fix the docs or
the code, never just the test.
"""

import pytest

from repro import HybridQAPipeline, SLMConfig, SmallLanguageModel
from repro.qa import load_pipeline, save_pipeline
from repro.metering import CostMeter
from repro.text.ner import Gazetteer


@pytest.fixture
def pipe():
    gazetteer = Gazetteer()
    gazetteer.add("MATTER", ["Hartley v. Dunmore", "In re Calloway"])
    gazetteer.add("FIRM", ["Bexley & Stone", "Ferris LLP"])
    slm = SmallLanguageModel(SLMConfig(seed=0), gazetteer=gazetteer,
                             meter=CostMeter())
    pipe = HybridQAPipeline(slm, meter=CostMeter())
    pipe.add_sql([
        "CREATE TABLE matters (mid INT PRIMARY KEY, name TEXT, "
        "firm TEXT, quarter TEXT, billed FLOAT)",
        "INSERT INTO matters VALUES "
        "(1, 'Hartley v. Dunmore', 'Bexley & Stone', 'q2', 184000.0), "
        "(2, 'In re Calloway', 'Ferris LLP', 'q2', 95000.0)",
    ])
    pipe.declare_entity_columns("matters", ["name"])
    pipe.add_documents([
        ("filing-1", {"matter": "Hartley v. Dunmore", "type": "motion",
                      "status": "granted"}),
    ])
    pipe.add_texts([
        ("note-1", "Billable hours on Hartley v. Dunmore increased 18% "
                   "in Q2 2024. The discovery phase drove the workload."),
        ("note-2", "Billable hours on In re Calloway decreased 7% in "
                   "Q2 2024. The matter neared settlement."),
    ])
    assert pipe.generate_table("note_facts") == 2
    pipe.register_synonym("billings", "matters", "billed")
    pipe.register_display_column("matters", "name")
    pipe.build()
    return pipe


class TestTutorialFlow:
    def test_sql_route(self, pipe):
        answer = pipe.answer(
            "Find the total billings of all matters in Q2."
        )
        assert answer.matches_number(279000.0)

    def test_generated_table_route(self, pipe):
        answer = pipe.answer(
            "How much did billable hours on Hartley v. Dunmore change "
            "in Q2 2024?"
        )
        assert answer.matches_number(18.0)

    def test_comparison_route(self, pipe):
        answer = pipe.answer(
            "Compare the billable-hours change of Hartley v. Dunmore "
            "and In re Calloway in Q2 2024."
        )
        assert answer.metadata.get("winner") == "hartley v. dunmore"

    def test_explain_available(self, pipe):
        trace = pipe.explain(
            "Find the total billings of all matters in Q2."
        )
        assert "route:" in trace

    def test_uncertainty_gate(self, pipe):
        answer, estimate = pipe.answer_with_uncertainty(
            "What did the notes imply about settlement posture?",
            n_samples=4, seed=2,
        )
        assert "needs_review" in answer.metadata

    def test_ship_it(self, pipe, tmp_path):
        save_pipeline(pipe, str(tmp_path))
        device = load_pipeline(str(tmp_path), meter=CostMeter())
        device.ingest_incremental([
            ("note-3", "Billable hours on In re Calloway increased 4% "
                       "in Q3 2024."),
        ])
        answer = device.answer(
            "How much did billable hours on In re Calloway change in "
            "Q3 2024?"
        )
        assert answer.matches_number(4.0)

    def test_graph_health(self, pipe):
        from repro.graphindex import bridge_report, describe

        report = bridge_report(pipe.graph)
        assert report.bridging >= 2  # both matters bridge modalities
        assert "bridging entities" in describe(pipe.graph)
