"""Tests for grouped-HAVING synthesis ("groups with total X above N")."""

import pytest

from repro.metering import CostMeter
from repro.semql import (
    OperatorSynthesizer, QueryCompiler, SchemaCatalog,
)
from repro.storage.relational import Database


@pytest.fixture
def setting():
    db = Database(meter=CostMeter())
    db.execute(
        "CREATE TABLE products (pid INT PRIMARY KEY, name TEXT, "
        "manufacturer TEXT)"
    )
    db.execute(
        "CREATE TABLE sales (sid INT PRIMARY KEY, pid INT, "
        "quarter TEXT, amount FLOAT)"
    )
    db.execute(
        "INSERT INTO products VALUES (1, 'A', 'Acme'), "
        "(2, 'B', 'Globex'), (3, 'C', 'Acme')"
    )
    db.execute(
        "INSERT INTO sales VALUES (1, 1, 'q1', 300.0), "
        "(2, 2, 'q1', 300.0), (3, 3, 'q1', 250.0), (4, 2, 'q2', 100.0)"
    )
    catalog = SchemaCatalog(db)
    catalog.register_synonym("sales", "sales", "amount")
    catalog.register_join("sales", "pid", "products", "pid")
    catalog.register_display_column("products", "name")
    catalog.build_value_index()
    return OperatorSynthesizer(catalog), QueryCompiler(db)


class TestHavingSynthesis:
    def test_sum_having(self, setting):
        synthesizer, compiler = setting
        spec = synthesizer.synthesize(
            "List manufacturers with total sales above 500"
        )
        assert spec.group_by == ("manufacturer",)
        assert spec.having and spec.having[0][1] == ">"
        result = compiler.execute(spec)
        assert [r[0] for r in result.rows] == ["Acme"]

    def test_avg_having(self, setting):
        synthesizer, compiler = setting
        spec = synthesizer.synthesize(
            "Which manufacturers have an average sales below 290?"
        )
        assert spec.having[0][0].func == "avg"
        result = compiler.execute(spec)
        # Acme avg 275, Globex avg 200 — both below 290.
        assert sorted(r[0] for r in result.rows) == ["Acme", "Globex"]

    def test_having_with_where_filter(self, setting):
        synthesizer, compiler = setting
        spec = synthesizer.synthesize(
            "List manufacturers with total sales above 250 in Q1"
        )
        # Quarter binds as WHERE; the aggregate threshold as HAVING.
        assert any(f.column == "quarter" for f in spec.filters)
        result = compiler.execute(spec)
        assert sorted(r[0] for r in result.rows) == ["Acme", "Globex"]

    def test_table_noun_stays_row_listing(self, setting):
        synthesizer, compiler = setting
        # "products with ..." lists rows, not groups.
        spec = synthesizer.synthesize(
            "List products with an amount above 250"
        )
        assert spec.group_by == ()
        assert not spec.having

    def test_signature_includes_having(self, setting):
        synthesizer, _ = setting
        a = synthesizer.synthesize(
            "List manufacturers with total sales above 500"
        )
        b = synthesizer.synthesize(
            "List manufacturers with total sales above 400"
        )
        assert not a.matches(b)
