"""Tests for repro.resilience: faults, policies, breakers, degradation."""

import pytest

from repro.errors import (
    BudgetExceeded, CircuitOpenError, ReproError, StorageError,
    TransientError,
)
from repro.metering import CostMeter
from repro.resilience import (
    BACKOFF_WORK, FAULT_TRANSIENT, STATE_CLOSED, STATE_HALF_OPEN,
    STATE_OPEN, BackendFaults, BreakerPolicy, CircuitBreaker,
    FaultInjector, FaultPlan, ResilienceConfig, ResilienceManager,
    RetryPolicy, WorkBudget, corrupt_result, work_now,
)


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(seed=9, backends={
            "relational": BackendFaults(rate=0.2, slow_cost=40),
            "slm": BackendFaults(
                rate=0.5, kinds=(("transient", 1.0),)),
        })
        assert FaultPlan.from_json(plan.to_json()).to_dict() == \
            plan.to_dict()

    def test_uniform_names_every_backend(self):
        plan = FaultPlan.uniform(("a", "b"), 0.3, seed=1)
        assert set(plan.backends) == {"a", "b"}
        assert plan.backends["a"].rate == 0.3

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            BackendFaults(rate=1.5)
        with pytest.raises(ValueError):
            BackendFaults(rate=0.1, kinds=(("meteor", 1.0),))

    def test_config_from_dict_parses_policies(self):
        config = ResilienceConfig.from_dict({
            "seed": 3,
            "backends": {"relational": {"rate": 0.25}},
            "retry": {"max_attempts": 5},
            "breaker": {"failure_threshold": 2, "cooldown": 50},
            "budget": 1000,
        })
        assert config.fault_plan.seed == 3
        assert config.retry.max_attempts == 5
        assert config.breaker.failure_threshold == 2
        assert config.budget == 1000


class TestFaultInjector:
    def _draws(self, plan, backend, n):
        injector = FaultInjector(plan)
        return [injector.draw(backend, "op") for _ in range(n)]

    def test_same_seed_same_sequence(self):
        plan = FaultPlan.uniform(("db",), 0.4, seed=11)
        assert self._draws(plan, "db", 200) == \
            self._draws(plan, "db", 200)

    def test_lower_rate_faults_on_subset_of_positions(self):
        low = self._draws(FaultPlan.uniform(("db",), 0.1, seed=7),
                          "db", 300)
        high = self._draws(FaultPlan.uniform(("db",), 0.6, seed=7),
                           "db", 300)
        low_positions = {i for i, k in enumerate(low) if k}
        high_positions = {i for i, k in enumerate(high) if k}
        assert low_positions and low_positions < high_positions

    def test_backend_streams_independent(self):
        solo = FaultPlan(seed=5, backends={"db": BackendFaults(rate=0.3)})
        both = FaultPlan(seed=5, backends={
            "db": BackendFaults(rate=0.3),
            "slm": BackendFaults(rate=0.9),
        })
        injector = FaultInjector(both)
        interleaved = []
        for _ in range(100):
            interleaved.append(injector.draw("db", "op"))
            injector.draw("slm", "op")
        assert interleaved == self._draws(solo, "db", 100)

    def test_unlisted_backend_never_faults(self):
        injector = FaultInjector(FaultPlan.uniform(("db",), 1.0, seed=1))
        assert all(injector.draw("other", "op") is None
                   for _ in range(50))

    def test_log_records_call_index(self):
        injector = FaultInjector(FaultPlan.uniform(("db",), 1.0, seed=1))
        for _ in range(3):
            injector.draw("db", "op")
        assert [fault.index for fault in injector.log] == [0, 1, 2]


class TestCorruptResult:
    def test_scalars_flip(self):
        assert corrupt_result(3) == -3
        assert corrupt_result(0) == 1
        assert corrupt_result(True) is False
        assert corrupt_result("abc") == "cba"
        assert corrupt_result(None) is None

    def test_sequences_reverse(self):
        assert corrupt_result([1, 2, 3]) == [3, 2, 1]
        assert corrupt_result((1.5, 2.5)) == (2.5, 1.5)

    def test_dict_values_recurse(self):
        assert corrupt_result({"a": 2}) == {"a": -2}

    def test_unmanageable_type_is_discarded(self):
        with pytest.raises(TransientError):
            corrupt_result(object(), backend="db", op="get")


class TestPolicies:
    def test_backoff_is_geometric(self):
        policy = RetryPolicy(backoff_base=5, backoff_multiplier=2)
        assert [policy.backoff_cost(a) for a in (1, 2, 3)] == [5, 10, 20]

    def test_budget_exceeded(self):
        budget = WorkBudget(limit=100)
        assert not budget.exceeded(99)
        assert budget.exceeded(100)
        assert not WorkBudget(limit=None).exceeded(10**9)

    def test_work_now_sums_counters(self):
        meter = CostMeter()
        meter.charge("a", 3)
        meter.charge("b", 4)
        assert work_now(meter) == 7


class TestCircuitBreaker:
    def test_full_state_cycle(self):
        breaker = CircuitBreaker(
            "db", BreakerPolicy(failure_threshold=2, cooldown=100))
        assert breaker.state == STATE_CLOSED
        breaker.record_failure(0)
        breaker.record_failure(10)
        assert breaker.state == STATE_OPEN
        with pytest.raises(CircuitOpenError):
            breaker.check(50)  # still cooling down
        breaker.check(110)  # cooldown elapsed on the work clock
        assert breaker.state == STATE_HALF_OPEN
        breaker.record_success(120)
        assert breaker.state == STATE_CLOSED

    def test_half_open_probe_failure_reopens(self):
        breaker = CircuitBreaker(
            "db", BreakerPolicy(failure_threshold=1, cooldown=10))
        breaker.record_failure(0)
        breaker.check(20)
        assert breaker.state == STATE_HALF_OPEN
        breaker.record_failure(21)
        assert breaker.state == STATE_OPEN

    def test_transitions_recorded(self):
        breaker = CircuitBreaker(
            "db", BreakerPolicy(failure_threshold=1, cooldown=10))
        breaker.record_failure(0)
        assert [(f, t) for f, t, _ in breaker.transitions] == \
            [(STATE_CLOSED, STATE_OPEN)]


def _manager(rate=0.0, kinds=None, budget=None, max_attempts=3,
             failure_threshold=5):
    meter = CostMeter()
    spec = {}
    if rate:
        spec["db"] = BackendFaults(
            rate=rate, kinds=kinds or ((FAULT_TRANSIENT, 1.0),))
    manager = ResilienceManager(meter, ResilienceConfig(
        fault_plan=FaultPlan(seed=2, backends=spec) if spec else None,
        retry=RetryPolicy(max_attempts=max_attempts),
        breaker=BreakerPolicy(failure_threshold=failure_threshold,
                              cooldown=100),
        budget=budget,
    ))
    return meter, manager


class TestResilienceManager:
    def test_attempt_retries_transient_and_charges_backoff(self):
        meter, manager = _manager(rate=1.0)
        with manager.question() as scope:
            with pytest.raises(TransientError):
                manager.attempt("db", "op", lambda: "ok")
        assert scope.retries == 2  # 3 attempts -> 2 backoffs
        assert meter.counters[BACKOFF_WORK] == 5 + 10

    def test_attempt_returns_after_recovery(self):
        meter, manager = _manager(rate=0.4)
        # Find a call position that faults once then succeeds on retry.
        results = [
            manager.attempt("db", "op", lambda: "ok") for _ in range(20)
        ]
        assert results == ["ok"] * 20
        assert manager.injector.log  # some faults did fire

    def test_permanent_fault_is_not_retried(self):
        meter, manager = _manager(rate=1.0, kinds=(("permanent", 1.0),))
        with pytest.raises(StorageError):
            manager.attempt("db", "op", lambda: "ok")
        assert len(manager.injector.log) == 1

    def test_try_call_absorbs_into_fatal_event(self):
        _, manager = _manager(rate=1.0)
        with manager.question() as scope:
            result, event = manager.try_call("db", "op", lambda: "ok")
        assert result is None
        assert event.fatal and event.kind == FAULT_TRANSIENT
        assert event in scope.events

    def test_breaker_opens_after_consecutive_failures(self):
        _, manager = _manager(rate=1.0, max_attempts=1,
                              failure_threshold=2)
        for _ in range(2):
            manager.try_call("db", "op", lambda: "ok")
        assert manager.breaker_states()["db"] == STATE_OPEN
        calls_before = len(manager.injector.log)
        _, event = manager.try_call("db", "op", lambda: "ok")
        assert event.kind == "circuit_open"
        assert len(manager.injector.log) == calls_before  # short-circuited

    def test_budget_deadline_aborts_calls(self):
        meter, manager = _manager(budget=10)
        with manager.question():
            assert manager.invoke("db", "op", lambda: 1) == 1
            meter.charge("work", 50)
            with pytest.raises(BudgetExceeded):
                manager.invoke("db", "op", lambda: 1)

    def test_shield_returns_default_on_repro_error(self):
        _, manager = _manager()

        def boom():
            raise ReproError("nope")

        with manager.question() as scope:
            assert manager.shield("x", "op", boom, default=7) == 7
        assert scope.events and scope.events[0].fatal

    def test_question_scope_is_reentrant(self):
        _, manager = _manager()
        with manager.question() as outer:
            with manager.question() as inner:
                assert inner is outer

    def test_slow_fault_charges_the_work_clock(self):
        meter, manager = _manager(rate=1.0, kinds=(("slow", 1.0),))
        before = work_now(meter)
        assert manager.invoke("db", "op", lambda: "ok") == "ok"
        assert work_now(meter) > before


class TestResilientBackend:
    class Store:
        """A tiny duck-typed backend."""

        def __init__(self):
            self.items = ["a", "b"]

        def get(self, i):
            return self.items[i]

        def note(self):
            return "unguarded"

        def __len__(self):
            return len(self.items)

    def test_guarded_op_goes_through_injector(self):
        _, manager = _manager(rate=1.0, kinds=(("permanent", 1.0),))
        proxy = manager.wrap("db", self.Store(), ("get",))
        with pytest.raises(StorageError):
            proxy.get(0)

    def test_unguarded_attrs_forward(self):
        _, manager = _manager(rate=1.0, kinds=(("permanent", 1.0),))
        store = self.Store()
        proxy = manager.wrap("db", store, ("get",))
        assert proxy.note() == "unguarded"
        assert proxy.items is store.items
        assert len(proxy) == 2
        assert proxy.resilient_target is store
        assert proxy.backend_name == "db"
