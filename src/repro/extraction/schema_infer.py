"""Schema inference over extracted facts.

Unifies heterogeneous fact records into one table schema: the column
set is the union of observed attributes (ordered by frequency, ties by
name) and each column's type is the tightest type covering its values —
mirroring how EVAPORATE-style systems settle on a view schema.
"""

from __future__ import annotations

import datetime as _dt
from collections import Counter
from typing import Any, Dict, List, Sequence

from ..errors import ExtractionError
from ..storage.relational.schema import Column, TableSchema
from ..storage.types import DataType, infer_value_type, unify_types
from .attributes import ExtractedFact


def infer_fact_schema(name: str, facts: Sequence[ExtractedFact],
                      min_column_support: int = 1) -> TableSchema:
    """Build a :class:`TableSchema` covering *facts*.

    ``min_column_support`` drops attributes appearing in fewer than
    that many facts (noise control for messy corpora).
    """
    if not facts:
        raise ExtractionError("cannot infer a schema from zero facts")
    if min_column_support < 1:
        raise ExtractionError("min_column_support must be >= 1")
    attr_counts: Counter = Counter()
    attr_types: Dict[str, List[DataType]] = {}
    for fact in facts:
        for attr, value in fact.attributes.items():
            if value is None:
                continue
            attr_counts[attr] += 1
            attr_types.setdefault(attr, []).append(infer_value_type(value))
    kept = [
        attr for attr, count in attr_counts.items()
        if count >= min_column_support
    ]
    if not kept:
        raise ExtractionError(
            "no attribute meets min_column_support=%d" % min_column_support
        )
    kept.sort(key=lambda a: (-attr_counts[a], a))
    columns = [
        Column(attr, unify_types(attr_types[attr])) for attr in kept
    ]
    return TableSchema(name, columns)


def facts_to_rows(facts: Sequence[ExtractedFact],
                  schema: TableSchema) -> List[tuple]:
    """Project facts onto *schema* (missing attributes → NULL).

    Values whose type no longer matches a widened column are coerced
    (int→float) or stringified rather than dropped.
    """
    rows = []
    for fact in facts:
        row = []
        for column in schema.columns:
            value = fact.attributes.get(column.name)
            row.append(_fit(value, column.dtype))
        rows.append(tuple(row))
    return rows


def _fit(value: Any, dtype: DataType) -> Any:
    if value is None:
        return None
    actual = infer_value_type(value)
    if actual == dtype:
        return value
    if dtype is DataType.FLOAT and actual is DataType.INT:
        return float(value)
    if dtype is DataType.TEXT:
        if isinstance(value, _dt.date):
            return value.isoformat()
        return str(value)
    return None
