"""E1 — Retrieval efficiency: topology-enhanced vs dense RAG vs BM25.

Paper claim (Sections I, III.B): the graph-based approach "reduces
reliance on computationally expensive dense retrieval by leveraging
sparse, topology-guided traversal", cutting the repeated-inference
overhead of conventional RAG.

Reproduced table (per corpus size and retriever):

* index cost — SLM embedding calls at build time (dense pays one per
  chunk; topology pays zero: its tagging already happened during graph
  construction, once, and is also reported);
* query cost — embedding calls and nodes scored per query;
* quality — recall@5 and MRR against the planted relevant documents.

Expected shape: topology ≈ dense recall on entity-anchored queries,
with per-query embedding calls 0 vs 1 and far fewer scored candidates;
BM25 cheap but weaker on paraphrased queries.
"""

from __future__ import annotations

import pytest

from repro.bench import LakeSpec, generate_ecommerce_lake, render_table
from repro.graphindex import GraphIndexBuilder
from repro.metering import (
    CostMeter, EDGES_TRAVERSED, EMBEDDING_CALLS, NODES_SCORED,
    TAGGING_CALLS,
)
from repro.retrieval import (
    BM25Retriever, DenseRetriever, IVFDenseRetriever, TopologyRetriever,
    aggregate_rankings, evaluate_ranking,
)
from repro.slm import SLMConfig, SmallLanguageModel
from repro.text.chunker import Chunker, ChunkerConfig
from repro.text.ner import Gazetteer

from _common import emit

CORPUS_SIZES = (8, 24, 48)  # products; chunks ≈ 3× documents
RESULTS = []


def build_corpus(n_products):
    lake = generate_ecommerce_lake(
        LakeSpec(n_products=n_products, seed=13, n_filler_docs=6)
    )
    chunker = Chunker(ChunkerConfig(max_tokens=48, overlap_sentences=0))
    chunks = chunker.chunk_corpus(lake.review_texts)
    queries = lake.retrieval_queries(n=16)
    return lake, chunks, queries


def make_slm(lake, meter):
    gazetteer = Gazetteer()
    gazetteer.add("VALUE", lake.product_names())
    return SmallLanguageModel(SLMConfig(seed=0), gazetteer=gazetteer,
                              meter=meter)


def build_retriever(kind, lake, chunks, meter):
    slm = make_slm(lake, meter)
    if kind == "topology":
        builder = GraphIndexBuilder(slm, meter=meter)
        builder.add_chunks(chunks)
        retriever = TopologyRetriever(builder.build(), slm, meter=meter)
    elif kind == "dense":
        retriever = DenseRetriever(slm.embedder, meter=meter)
    elif kind == "dense_ivf":
        retriever = IVFDenseRetriever(slm.embedder, n_clusters=8,
                                      n_probe=2, meter=meter)
    elif kind == "bm25":
        retriever = BM25Retriever(meter=meter)
    else:
        raise ValueError(kind)
    return retriever


@pytest.mark.parametrize("n_products", CORPUS_SIZES)
@pytest.mark.parametrize("kind", ["topology", "dense", "dense_ivf", "bm25"])
def test_e1_retrieval(benchmark, kind, n_products):
    lake, chunks, queries = build_corpus(n_products)
    meter = CostMeter()
    with meter.measure() as index_cost:
        # Graph construction (tagging included) is part of topology's
        # indexing cost, so retriever construction happens inside.
        retriever = build_retriever(kind, lake, chunks, meter)
        retriever.index(chunks)

    with meter.measure() as query_cost:
        per_query = []
        for query in queries:
            hits = retriever.retrieve(query.query, k=5)
            ranked_docs = []
            for hit in hits:
                if hit.chunk.doc_id not in ranked_docs:
                    ranked_docs.append(hit.chunk.doc_id)
            per_query.append(
                evaluate_ranking(ranked_docs, query.relevant_docs, ks=(1, 5))
            )
    quality = aggregate_rankings(per_query)

    benchmark(retriever.retrieve, queries[0].query, 5)

    n_queries = len(queries)
    RESULTS.append({
        "retriever": kind,
        "chunks": len(chunks),
        "index_embed_calls": index_cost.get(EMBEDDING_CALLS, 0),
        "index_tag_calls": index_cost.get(TAGGING_CALLS, 0),
        "q_embed_calls": round(
            query_cost.get(EMBEDDING_CALLS, 0) / n_queries, 2
        ),
        "q_nodes_scored": round(
            query_cost.get(NODES_SCORED, 0) / n_queries, 1
        ),
        "q_edges": round(
            query_cost.get(EDGES_TRAVERSED, 0) / n_queries, 1
        ),
        "recall@5": round(quality["recall@5"], 3),
        "mrr": round(quality["mrr"], 3),
    })


def test_e1_budget_sweep(benchmark):
    """E1b: the traversal budget (max_nodes) is topology retrieval's
    recall/work dial at scale — raising it recovers the recall the main
    table loses at 198 chunks, at proportional edge cost."""
    from repro.retrieval import TopologyConfig

    lake, chunks, queries = build_corpus(CORPUS_SIZES[-1])
    rows = []
    for budget in (200, 400, 1600):
        meter = CostMeter()
        slm = make_slm(lake, meter)
        builder = GraphIndexBuilder(slm, meter=meter)
        builder.add_chunks(chunks)
        retriever = TopologyRetriever(
            builder.build(), slm,
            config=TopologyConfig(max_nodes=budget), meter=meter,
        )
        retriever.index(chunks)
        per_query = []
        with meter.measure() as cost:
            for query in queries:
                hits = retriever.retrieve(query.query, k=5)
                ranked = []
                for hit in hits:
                    if hit.chunk.doc_id not in ranked:
                        ranked.append(hit.chunk.doc_id)
                per_query.append(evaluate_ranking(
                    ranked, query.relevant_docs, ks=(5,)
                ))
        quality = aggregate_rankings(per_query)
        rows.append({
            "max_nodes": budget,
            "recall@5": round(quality["recall@5"], 3),
            "mrr": round(quality["mrr"], 3),
            "edges_per_q": round(
                cost.get(EDGES_TRAVERSED, 0) / len(queries), 1
            ),
        })
    emit("e1_budget", render_table(
        rows, title="E1b — Topology traversal budget vs recall "
        "(%d chunks)" % len(chunks)
    ))
    # More budget never hurts recall and costs more edges.
    assert rows[-1]["recall@5"] >= rows[0]["recall@5"]
    assert rows[-1]["edges_per_q"] > rows[0]["edges_per_q"]
    benchmark(lambda: None)


def test_e1_recall_curve(benchmark):
    """E1 figure: recall@k curves for topology vs dense on the medium
    corpus — the ranking-depth view of the main table."""
    from repro.bench.reporting import render_bars

    lake, chunks, queries = build_corpus(CORPUS_SIZES[1])
    curves = {}
    for kind in ("topology", "dense"):
        meter = CostMeter()
        retriever = build_retriever(kind, lake, chunks, meter)
        retriever.index(chunks)
        points = []
        for k in (1, 3, 5, 10):
            per_query = []
            for query in queries:
                hits = retriever.retrieve(query.query, k=k)
                ranked = []
                for hit in hits:
                    if hit.chunk.doc_id not in ranked:
                        ranked.append(hit.chunk.doc_id)
                per_query.append(evaluate_ranking(
                    ranked, query.relevant_docs, ks=(k,)
                ))
            agg = aggregate_rankings(per_query)
            points.append({"k": k,
                           "recall": round(agg["recall@%d" % k], 3)})
        curves[kind] = points
    figure = "\n\n".join(
        render_bars(points, x="k", y="recall",
                    title="E1 figure — %s recall@k" % kind)
        for kind, points in curves.items()
    )
    emit("e1_recall_curve", figure)
    # Recall grows with k for both systems.
    for points in curves.values():
        recalls = [p["recall"] for p in points]
        assert recalls == sorted(recalls)
    benchmark(lambda: None)


def test_e1_report(benchmark):
    """Render the E1 table (depends on the parametrized runs above)."""
    benchmark(lambda: None)  # keep the report under --benchmark-only
    assert RESULTS, "parametrized E1 runs must execute first"
    rows = sorted(RESULTS, key=lambda r: (r["chunks"], r["retriever"]))
    emit("e1_retrieval", render_table(
        rows, title="E1 — Retrieval efficiency vs quality"
    ))
    # Shape assertions from DESIGN.md §3.
    by_key = {(r["retriever"], r["chunks"]): r for r in rows}
    largest = max(r["chunks"] for r in rows)
    topo = by_key[("topology", largest)]
    dense = by_key[("dense", largest)]
    assert topo["index_embed_calls"] == 0
    assert dense["index_embed_calls"] == largest
    assert topo["q_embed_calls"] == 0
    assert dense["q_embed_calls"] >= 1
    assert topo["recall@5"] >= dense["recall@5"] - 0.15
