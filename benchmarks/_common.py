"""Shared helpers for the benchmark harnesses.

Every bench renders its experiment table with
:func:`repro.bench.reporting.render_table` and routes it through
:func:`emit`, which both prints it (visible with ``pytest -s``) and
writes ``benchmarks/out/<name>.md`` so EXPERIMENTS.md can be refreshed
from the artifacts.
"""

from __future__ import annotations

import os

OUT_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "out")


def emit(name: str, text: str) -> str:
    """Print *text* and persist it under benchmarks/out/<name>.md."""
    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(OUT_DIR, "%s.md" % name)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    print()
    print(text)
    return path
