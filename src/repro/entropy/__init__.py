"""Semantic entropy and uncertainty calibration (paper Section III.D)."""

from .baselines import (
    BASELINES, all_baselines, length_normalized_entropy,
    lexical_dissimilarity, mean_answer_length, predictive_entropy,
)
from .calibration import (
    RejectionPoint, accuracy_at_coverage, auroc, compare_methods,
    rejection_curve,
)
from .clustering import (
    AnswerCluster, cluster_by_embedding, cluster_by_entailment,
    cluster_sizes,
)
from .semantic_entropy import (
    METHOD_EMBEDDING, METHOD_ENTAILMENT, EntropyEstimate,
    SemanticEntropyEstimator,
)

__all__ = [
    "BASELINES", "all_baselines", "length_normalized_entropy",
    "lexical_dissimilarity", "mean_answer_length", "predictive_entropy",
    "RejectionPoint", "accuracy_at_coverage", "auroc", "compare_methods",
    "rejection_curve",
    "AnswerCluster", "cluster_by_embedding", "cluster_by_entailment",
    "cluster_sizes",
    "METHOD_EMBEDDING", "METHOD_ENTAILMENT", "EntropyEstimate",
    "SemanticEntropyEstimator",
]
