"""Schema catalog: the binding context for operator synthesis.

Wraps a :class:`Database` with what an NL-to-query layer needs:

* fuzzy column resolution (exact name → synonym → stem overlap);
* a value index over TEXT columns, so entity mentions in a question
  ("Alpha Widget", "Acme") bind to the column that contains them —
  classic value-based schema linking;
* a foreign-key graph with BFS join-path discovery.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import SynthesisError
from ..storage.relational.database import Database
from ..storage.types import DataType
from ..text.stemmer import stem
from ..text.stopwords import STOPWORDS
from ..text.tokenizer import words
from .logical import JoinSpec


@dataclass(frozen=True)
class ColumnBinding:
    """A (table, column) pair with the resolution confidence."""

    table: str
    column: str
    score: float


def _edit_distance_at_most_one(a: str, b: str) -> bool:
    """True when strings differ by at most one edit (O(n) check)."""
    if a == b:
        return True
    if abs(len(a) - len(b)) > 1:
        return False
    if len(a) > len(b):
        a, b = b, a
    # a is shorter or equal; scan for the single divergence.
    i = j = 0
    edited = False
    while i < len(a) and j < len(b):
        if a[i] == b[j]:
            i += 1
            j += 1
            continue
        if edited:
            return False
        edited = True
        if len(a) == len(b):
            i += 1  # substitution
        j += 1      # (or insertion into b)
    return True


@dataclass(frozen=True)
class ValueHit:
    """An entity mention bound to the column containing it."""

    table: str
    column: str
    value: str
    mention: str


class SchemaCatalog:
    """Synthesis-time view of a database schema."""

    def __init__(self, db: Database):
        self._db = db
        self._synonyms: Dict[str, List[Tuple[str, str]]] = {}
        self._fk_edges: Dict[str, List[Tuple[str, str, str]]] = {}
        # fk_edges[table] = [(other_table, my_col, other_col)]
        self._value_index: List[Tuple[str, str, str]] = []
        # (lowered value, table, column) — sorted longest value first
        self._display_columns: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register_synonym(self, term: str, table: str, column: str) -> None:
        """Declare that NL *term* means *table.column*."""
        self._db.table(table).schema.index_of(column)
        self._synonyms.setdefault(stem(term.lower()), []).append(
            (table, column)
        )

    def register_join(self, table_a: str, column_a: str,
                      table_b: str, column_b: str) -> None:
        """Declare a joinable key pair between two tables."""
        self._db.table(table_a).schema.index_of(column_a)
        self._db.table(table_b).schema.index_of(column_b)
        self._fk_edges.setdefault(table_a, []).append(
            (table_b, column_a, column_b)
        )
        self._fk_edges.setdefault(table_b, []).append(
            (table_a, column_b, column_a)
        )

    def register_display_column(self, table: str, column: str) -> None:
        """Column shown when a question asks to "list <table>"."""
        self._db.table(table).schema.index_of(column)
        self._display_columns[table] = column

    def build_value_index(self, max_values_per_column: int = 5000) -> None:
        """Index distinct TEXT values for value-based schema linking."""
        entries: List[Tuple[str, str, str]] = []
        for table_name in self._db.table_names():
            table = self._db.table(table_name)
            for column in table.schema.columns:
                if column.dtype is not DataType.TEXT:
                    continue
                seen: Set[str] = set()
                for value in table.column_values(column.name):
                    if value is None:
                        continue
                    low = str(value).strip().lower()
                    if len(low) < 2 or low in seen:
                        continue
                    seen.add(low)
                    entries.append((low, table_name, column.name))
                    if len(seen) >= max_values_per_column:
                        break
        entries.sort(key=lambda e: (-len(e[0]), e[0]))
        self._value_index = entries

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def tables(self) -> List[str]:
        """All table names."""
        return self._db.table_names()

    def columns_of(self, table: str) -> List[str]:
        """Column names of *table*."""
        return self._db.table(table).schema.column_names()

    def display_column(self, table: str) -> str:
        """The column naming a row: registered, else a name-like TEXT
        column ("name"/"subject"/...), else the first TEXT column."""
        if table in self._display_columns:
            return self._display_columns[table]
        schema = self._db.table(table).schema
        for preferred in ("name", "subject", "title", "label"):
            if schema.has_column(preferred) and \
                    schema.column(preferred).dtype is DataType.TEXT:
                return preferred
        for column in schema.columns:
            if column.dtype is DataType.TEXT:
                return column.name
        return schema.columns[0].name

    def resolve_column(self, term: str,
                       prefer_tables: Sequence[str] = ()) -> List[ColumnBinding]:
        """Candidate bindings for NL *term*, best first.

        Scoring: exact column-name match 1.0, synonym 0.9, stem match
        0.8, token-overlap 0.5×fraction. A table in *prefer_tables*
        gets +0.05.
        """
        term_low = term.strip().lower()
        term_stem = stem(term_low)
        term_tokens = {
            stem(w) for w in words(term_low) if w not in STOPWORDS
        }
        candidates: List[ColumnBinding] = []
        for table_name in self._db.table_names():
            schema = self._db.table(table_name).schema
            for column in schema.columns:
                name = column.name
                score = 0.0
                if name == term_low:
                    score = 1.0
                elif stem(name) == term_stem:
                    score = 0.8
                else:
                    name_tokens = {stem(p) for p in name.split("_") if p}
                    if name_tokens and term_tokens:
                        overlap = len(name_tokens & term_tokens) / len(
                            name_tokens | term_tokens
                        )
                        if overlap > 0:
                            score = 0.5 * overlap
                if score > 0:
                    if table_name in prefer_tables:
                        score += 0.05
                    candidates.append(
                        ColumnBinding(table_name, name, score)
                    )
            # Table-name-as-metric: "total sales" over a table named
            # `sales` with one obvious numeric measure column.
            if table_name == term_low or stem(table_name) == term_stem:
                measure = self._single_measure_column(table_name)
                if measure is not None:
                    bonus = 0.05 if table_name in prefer_tables else 0.0
                    candidates.append(
                        ColumnBinding(table_name, measure, 0.7 + bonus)
                    )
        for table_name, column in self._synonyms.get(term_stem, []):
            bonus = 0.05 if table_name in prefer_tables else 0.0
            candidates.append(ColumnBinding(table_name, column, 0.9 + bonus))
        candidates.sort(key=lambda c: (-c.score, c.table, c.column))
        return candidates

    def _single_measure_column(self, table_name: str) -> Optional[str]:
        schema = self._db.table(table_name).schema
        numeric = [
            c.name for c in schema.columns
            if c.dtype in (DataType.FLOAT, DataType.INT)
            and c.name != schema.primary_key
            and not c.name.endswith("id")
        ]
        return numeric[0] if len(numeric) == 1 else None

    def find_values(self, question: str) -> List[ValueHit]:
        """Entity mentions in *question* bound via the value index.

        Longest indexed values match first and claim their span, so
        "alpha widget" wins over a hypothetical "widget" value.
        """
        low = question.lower()
        taken = [False] * len(low)
        claimed: List[str] = []
        hits: List[ValueHit] = []
        for value, table, column in self._value_index:
            if value in claimed:
                # Same value indexed in another table/column: report the
                # alternative binding too so the synthesizer can pick
                # the one reachable from its base table.
                hits.append(ValueHit(table, column, value, value))
                continue
            start = low.find(value)
            while start != -1:
                end = start + len(value)
                boundary_ok = (
                    (start == 0 or not low[start - 1].isalnum())
                    and (end == len(low) or not low[end].isalnum())
                )
                if boundary_ok and not any(taken[start:end]):
                    for i in range(start, end):
                        taken[i] = True
                    claimed.append(value)
                    hits.append(ValueHit(table, column, value,
                                         low[start:end]))
                    break
                start = low.find(value, start + 1)
        hits.sort(key=lambda h: (h.value, h.table, h.column))
        if hits:
            return hits
        return self._find_values_fuzzy(low)

    def _find_values_fuzzy(self, low: str) -> List[ValueHit]:
        """Typo-tolerant fallback: indexed values within edit distance 1
        of a question substring ("Alpa Widget" → "alpha widget").

        Only long values (≥ 6 chars) participate — short strings match
        too promiscuously at distance 1.
        """
        hits: List[ValueHit] = []
        for value, table, column in self._value_index:
            if len(value) < 6:
                continue
            window = len(value)
            found = False
            for delta in (0, -1, 1):
                size = window + delta
                if size < 1:
                    continue
                for start in range(0, max(1, len(low) - size + 1)):
                    candidate = low[start:start + size]
                    if _edit_distance_at_most_one(candidate, value):
                        found = True
                        break
                if found:
                    break
            if found:
                hits.append(ValueHit(table, column, value, value))
        hits.sort(key=lambda h: (h.value, h.table, h.column))
        return hits

    def join_path(self, source: str, target: str) -> List[JoinSpec]:
        """Shortest FK join chain from *source* to *target*.

        Raises :class:`SynthesisError` when no path exists.
        """
        if source == target:
            return []
        parents: Dict[str, Tuple[str, str, str]] = {}
        queue: deque = deque([source])
        seen = {source}
        while queue:
            current = queue.popleft()
            for other, my_col, other_col in self._fk_edges.get(current, []):
                if other in seen:
                    continue
                seen.add(other)
                parents[other] = (current, my_col, other_col)
                if other == target:
                    queue.clear()
                    break
                queue.append(other)
        if target not in parents:
            raise SynthesisError(
                "no join path from %r to %r" % (source, target)
            )
        # Walk back from target to source.
        chain: List[JoinSpec] = []
        node = target
        while node != source:
            prev, prev_col, node_col = parents[node]
            chain.append(JoinSpec(node, prev_col, node_col))
            node = prev
        chain.reverse()
        return chain
