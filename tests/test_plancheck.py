"""Tests for the static query-plan checker (repro.lint.plancheck).

Each diagnostic code gets a direct case; gating behaviour is tested
through :class:`Database` in both default and strict modes, and a fuzz
sweep reuses the SQL grammar from ``test_sql_roundtrip_fuzz`` to show
the checker never rejects a statement the executor would accept.
"""

import random

import pytest

from repro.errors import PlanError
from repro.lint.plancheck import ERROR, WARNING, check_select
from repro.storage.relational import Database
from repro.storage.relational.sql_parser import parse
from tests.test_sql_roundtrip_fuzz import SEED, _seed_database, _select


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE products (pid INT PRIMARY KEY, name TEXT, "
        "price FLOAT, stock INT)"
    )
    database.execute(
        "CREATE TABLE orders (oid INT PRIMARY KEY, pid INT, qty INT, "
        "name TEXT)"
    )
    database.execute(
        "INSERT INTO products VALUES (1, 'bolt', 0.5, 100), "
        "(2, 'nut', 0.2, 50)"
    )
    database.execute("INSERT INTO orders VALUES (10, 1, 3, 'first')")
    return database


def codes(diags, severity=None):
    """Diagnostic codes, optionally filtered by severity."""
    return [d.code for d in diags
            if severity is None or d.severity == severity]


class TestDiagnostics:
    def test_clean_query_has_no_diagnostics(self, db):
        assert db.analyze(
            "SELECT name, price FROM products WHERE price > 0.1") == []

    def test_unknown_table(self, db):
        diags = db.analyze("SELECT x FROM nowhere")
        assert "unknown-table" in codes(diags, ERROR)

    def test_unknown_column(self, db):
        diags = db.analyze("SELECT nope FROM products")
        assert codes(diags, ERROR) == ["unknown-column"]
        assert "tables in scope" in diags[0].message

    def test_unknown_column_in_where(self, db):
        diags = db.analyze("SELECT name FROM products WHERE ghost = 1")
        assert "unknown-column" in codes(diags, ERROR)

    def test_type_mismatch_comparison(self, db):
        diags = db.analyze(
            "SELECT name FROM products WHERE price > 'abc'")
        assert "type-mismatch" in codes(diags, ERROR)

    def test_type_mismatch_in_list(self, db):
        diags = db.analyze(
            "SELECT name FROM products WHERE name IN (1, 2)")
        assert "type-mismatch" in codes(diags, ERROR)

    def test_matching_types_clean(self, db):
        assert db.analyze(
            "SELECT name FROM products "
            "WHERE name = 'bolt' AND stock IN (1, 2)") == []

    def test_unsatisfiable_bounds(self, db):
        diags = db.analyze(
            "SELECT name FROM products WHERE stock > 5 AND stock < 3")
        assert "unsatisfiable-predicate" in codes(diags, ERROR)
        assert "can never hold" in diags[0].message

    def test_unsatisfiable_equality_conflict(self, db):
        diags = db.analyze(
            "SELECT name FROM products WHERE stock = 1 AND stock = 2")
        assert "unsatisfiable-predicate" in codes(diags, ERROR)

    def test_unsatisfiable_eq_vs_neq(self, db):
        diags = db.analyze(
            "SELECT name FROM products WHERE stock = 1 AND stock != 1")
        assert "unsatisfiable-predicate" in codes(diags, ERROR)

    def test_unsatisfiable_eq_outside_bounds(self, db):
        diags = db.analyze(
            "SELECT name FROM products WHERE stock = 1 AND stock > 5")
        assert "unsatisfiable-predicate" in codes(diags, ERROR)

    def test_unsatisfiable_between(self, db):
        diags = db.analyze(
            "SELECT name FROM products "
            "WHERE stock BETWEEN 10 AND 20 AND stock < 5")
        assert "unsatisfiable-predicate" in codes(diags, ERROR)

    def test_flipped_literal_comparison_normalized(self, db):
        diags = db.analyze(
            "SELECT name FROM products WHERE 5 < stock AND stock < 3")
        assert "unsatisfiable-predicate" in codes(diags, ERROR)

    def test_satisfiable_or_not_flagged(self, db):
        # OR disjuncts are not conjoined bounds; x > 5 OR x < 3 is fine.
        assert db.analyze(
            "SELECT name FROM products "
            "WHERE stock > 5 OR stock < 3") == []

    def test_tight_but_satisfiable_bounds_clean(self, db):
        assert db.analyze(
            "SELECT name FROM products "
            "WHERE stock >= 5 AND stock <= 5") == []

    def test_ambiguous_column_is_warning(self, db):
        # "name" exists in both products and orders.
        diags = db.analyze(
            "SELECT name FROM products p "
            "JOIN orders o ON p.pid = o.pid")
        assert "ambiguous-column" in codes(diags, WARNING)
        assert codes(diags, ERROR) == []

    def test_unused_join_is_warning(self, db):
        diags = db.analyze(
            "SELECT p.name FROM products p "
            "JOIN orders o ON p.pid = o.pid")
        assert "unused-join" in codes(diags, WARNING)

    def test_join_used_in_projection_clean(self, db):
        assert db.analyze(
            "SELECT p.name, o.qty FROM products p "
            "JOIN orders o ON p.pid = o.pid") == []

    def test_sum_over_text_is_warning(self, db):
        diags = db.analyze("SELECT SUM(name) FROM products")
        assert codes(diags, WARNING) == ["type-mismatch"]
        assert "SUM()" in diags[0].message

    def test_sum_over_numeric_clean(self, db):
        assert db.analyze("SELECT SUM(price) FROM products") == []

    def test_errors_sort_before_warnings(self, db):
        diags = db.analyze(
            "SELECT p.nope FROM products p "
            "JOIN orders o ON p.pid = o.pid")
        severities = [d.severity for d in diags]
        assert severities == sorted(severities, key=lambda s: s != ERROR)

    def test_render_shape(self, db):
        diag = db.analyze("SELECT nope FROM products")[0]
        assert diag.render().startswith("error: [unknown-column]")


class TestOutputScope:
    def test_having_sees_output_aliases(self, db):
        assert db.analyze(
            "SELECT name, SUM(qty) AS total FROM orders "
            "GROUP BY name HAVING total > 1") == []

    def test_having_rejects_non_output_non_group_columns(self, db):
        diags = db.analyze(
            "SELECT name, SUM(qty) AS total FROM orders "
            "GROUP BY name HAVING pid > 1")
        assert "unknown-column" in codes(diags, ERROR)
        assert "HAVING" in diags[0].message

    def test_having_aggregate_args_not_base_checked(self, db):
        # COUNT(o.qty) in HAVING is rewritten to the precomputed value;
        # its argument is never evaluated against post-group rows.
        assert db.analyze(
            "SELECT o.name, COUNT(o.qty) AS n FROM orders o "
            "GROUP BY o.name HAVING COUNT(o.qty) >= 1") == []

    def test_order_by_sees_output_aliases(self, db):
        assert db.analyze(
            "SELECT name AS label FROM products ORDER BY label") == []

    def test_order_by_base_column_in_plain_select(self, db):
        assert db.analyze(
            "SELECT name FROM products ORDER BY price") == []

    def test_order_by_unknown_in_aggregated_select(self, db):
        diags = db.analyze(
            "SELECT name, COUNT(*) AS n FROM products "
            "GROUP BY name ORDER BY price")
        assert "unknown-column" in codes(diags, ERROR)


class TestGating:
    def test_unknown_column_rejected_statically(self, db):
        with pytest.raises(PlanError) as exc:
            db.execute("SELECT nope FROM products")
        assert "unknown-column" in str(exc.value)

    def test_default_mode_executes_unsatisfiable(self, db):
        # Contradictory-but-valid predicates still run (empty result):
        # rejecting them would change the semantics of generated SQL.
        rs = db.execute(
            "SELECT name FROM products WHERE stock > 5 AND stock < 3")
        assert rs.rows == []

    def test_default_mode_executes_type_mismatch_free_query(self, db):
        assert db.execute("SELECT COUNT(*) FROM products").scalar() == 2

    def test_strict_mode_rejects_unsatisfiable(self):
        db = Database(strict_plancheck=True)
        db.execute("CREATE TABLE t (x INT)")
        with pytest.raises(PlanError) as exc:
            db.execute("SELECT x FROM t WHERE x > 5 AND x < 3")
        assert "unsatisfiable-predicate" in str(exc.value)

    def test_strict_mode_rejects_type_mismatch(self):
        db = Database(strict_plancheck=True)
        db.execute("CREATE TABLE t (x INT)")
        with pytest.raises(PlanError) as exc:
            db.execute("SELECT x FROM t WHERE x = 'abc'")
        assert "type-mismatch" in str(exc.value)

    def test_strict_mode_allows_warnings(self):
        db = Database(strict_plancheck=True)
        db.execute("CREATE TABLE a (k INT, v TEXT)")
        db.execute("CREATE TABLE b (k INT, w TEXT)")
        db.execute("INSERT INTO a VALUES (1, 'x')")
        db.execute("INSERT INTO b VALUES (1, 'y')")
        rs = db.execute("SELECT a.v FROM a JOIN b ON a.k = b.k")
        assert rs.rows == [("x",)]

    def test_analyze_rejects_non_select(self, db):
        with pytest.raises(PlanError):
            db.analyze("DELETE FROM products")

    def test_analyze_never_raises_for_semantic_problems(self, db):
        diags = db.analyze("SELECT nope FROM nowhere WHERE 1 = 'a'")
        assert all(isinstance(d.code, str) for d in diags)

    def test_analyze_sees_views(self, db):
        db.execute(
            "CREATE VIEW cheap AS SELECT name, price FROM products "
            "WHERE price < 0.4")
        assert db.analyze("SELECT name FROM cheap") == []
        diags = db.analyze("SELECT stock FROM cheap")
        assert "unknown-column" in codes(diags, ERROR)


class TestCheckSelectDirect:
    def test_callable_with_schema_callback(self, db):
        stmt = parse("SELECT nope FROM products")
        schema_of = db._schema_of
        diags = check_select(stmt, schema_of)
        assert codes(diags, ERROR) == ["unknown-column"]

    def test_missing_schema_reports_unknown_table(self):
        stmt = parse("SELECT x FROM ghost")
        diags = check_select(stmt, lambda name: None)
        assert "unknown-table" in codes(diags, ERROR)


class TestFuzzedGrammar:
    # Error codes the fuzz grammar can legitimately trigger: it freely
    # conjoins random comparisons, so contradictory intervals occur.
    ALLOWED_ERRORS = {"unsatisfiable-predicate"}

    def test_generated_selects_analyze_and_execute(self):
        rng = random.Random(SEED + 7)
        db = _seed_database(rng)
        for _ in range(150):
            sql = _select(rng)
            diags = db.analyze(sql)
            unexpected = [d for d in diags
                          if d.severity == ERROR
                          and d.code not in self.ALLOWED_ERRORS]
            assert not unexpected, "%r -> %s" % (
                sql, [d.render() for d in unexpected])
            # Default gating must not reject anything the grammar
            # generates; execution stays the source of truth.
            db.execute(sql)
