"""Tests for TextQA answer-grounding verification."""

import pytest

from repro.metering import CostMeter
from repro.retrieval import BM25Retriever
from repro.qa import TextQAEngine
from repro.slm import SLMConfig, SmallLanguageModel
from repro.text.chunker import Chunker, ChunkerConfig
from repro.text.ner import TYPE_PRODUCT, Gazetteer

CORPUS = {
    "doc1": "Satisfaction with the Alpha Widget increased 12% in Q2 "
            "2024. Stores were pleased.",
    "doc2": "General commentary about retail weather patterns and "
            "seasonal foot traffic.",
}


def make_engine(verify=True, hallucination_bias=0.0):
    gaz = Gazetteer()
    gaz.add(TYPE_PRODUCT, ["Alpha Widget"])
    slm = SmallLanguageModel(
        SLMConfig(seed=0, hallucination_bias=hallucination_bias),
        gazetteer=gaz, meter=CostMeter(),
    )
    chunks = Chunker(
        ChunkerConfig(max_tokens=40, overlap_sentences=0)
    ).chunk_corpus(CORPUS)
    retriever = BM25Retriever(meter=CostMeter())
    retriever.index(chunks)
    return TextQAEngine(retriever, slm, k=2, temperature=0.1,
                        verify_grounding=verify)


class TestGroundingVerification:
    def test_supported_answer_verified(self):
        engine = make_engine()
        answer = engine.answer(
            "How much did satisfaction with the Alpha Widget increase?"
        )
        assert answer.metadata.get("verified") is True
        assert answer.grounded

    def test_fabricated_answer_flagged(self):
        # Force fabrication: maximal hallucination bias.
        engine = make_engine(hallucination_bias=0.95)
        answer = engine.answer(
            "How much did satisfaction with the Alpha Widget increase?"
        )
        assert answer.metadata.get("verified") is False
        assert answer.confidence < 0.6

    def test_verification_can_be_disabled(self):
        engine = make_engine(verify=False)
        answer = engine.answer(
            "How much did satisfaction with the Alpha Widget increase?"
        )
        assert "verified" not in answer.metadata

    def test_unverified_answer_not_grounded(self):
        engine = make_engine(hallucination_bias=0.95)
        answer = engine.answer(
            "How much did satisfaction with the Alpha Widget increase?"
        )
        assert not answer.grounded
