"""Construction of the semantic-aware heterogeneous graph index.

Implements the paper's Section III.A pipeline: text chunks become chunk
nodes; the SLM's lightweight tagging yields entity nodes and
chunk→entity MENTIONS edges; entities co-mentioned in one chunk get
CO_OCCURS edges; subject–verb–object patterns in sentences and
caller-declared table relationships become labeled RELATES edges (the
"relational cues", e.g. "Customer X purchased Product Y"); structured
rows and documents are projected in as record nodes DESCRIBES-linked to
the entities they mention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..errors import GraphIndexError
from ..metering import CostMeter, GLOBAL_METER
from ..slm.model import SmallLanguageModel
from ..storage.document.store import DocumentStore
from ..storage.document.jsonpath import select_one
from ..storage.relational.table import Table
from ..text.chunker import Chunk
from ..text.pos import VERB, tag_tokens
from ..text.tokenizer import split_sentences, tokenize
from ..text.stemmer import stem
from .hetgraph import HeterogeneousGraph
from .nodes import (
    EDGE_CO_OCCURS, EDGE_DESCRIBES, EDGE_MENTIONS, EDGE_NEXT, EDGE_RELATES,
    NODE_CHUNK, NODE_ENTITY, NODE_RECORD, GraphEdge, GraphNode, chunk_key,
    entity_key, record_key,
)


@dataclass
class BuilderConfig:
    """Ablation switches for graph construction (E7).

    entity_nodes:
        When False, only chunk nodes and NEXT edges are built — the
        chunk-only baseline ablation.
    relation_edges:
        When False, sentence-level relational cues are skipped.
    cooccurrence_edges:
        When False, entity–entity CO_OCCURS edges are skipped.
    sequence_edges:
        When False, chunk→chunk NEXT edges are skipped.
    """

    entity_nodes: bool = True
    relation_edges: bool = True
    cooccurrence_edges: bool = True
    sequence_edges: bool = True


class GraphIndexBuilder:
    """Incrementally assemble a :class:`HeterogeneousGraph`."""

    def __init__(self, slm: SmallLanguageModel,
                 config: Optional[BuilderConfig] = None,
                 meter: Optional[CostMeter] = None):
        self._slm = slm
        self._config = config or BuilderConfig()
        self._meter = meter if meter is not None else GLOBAL_METER
        self._graph = HeterogeneousGraph(meter=self._meter)

    # ------------------------------------------------------------------
    # Text side
    # ------------------------------------------------------------------
    def add_chunks(self, chunks: Sequence[Chunk]) -> None:
        """Index text chunks: nodes, entity tagging, cue extraction."""
        previous_by_doc: Dict[str, str] = {}
        for chunk in chunks:
            ck = chunk_key(chunk.chunk_id)
            self._graph.add_node(GraphNode(
                ck, NODE_CHUNK, chunk.text[:80],
                payload={"doc_id": chunk.doc_id, "text": chunk.text,
                         "position": chunk.position},
            ))
            if self._config.sequence_edges:
                prev = previous_by_doc.get(chunk.doc_id)
                if prev is not None:
                    self._graph.add_edge(GraphEdge(prev, ck, EDGE_NEXT))
                previous_by_doc[chunk.doc_id] = ck
            if not self._config.entity_nodes:
                continue
            entities = self._slm.tag_entities(chunk.text)
            seen_norms: List[str] = []
            for entity in entities:
                ek = entity_key(entity.norm)
                self._graph.add_node(GraphNode(
                    ek, NODE_ENTITY, entity.norm,
                    payload={"etype": entity.etype},
                ))
                self._graph.add_edge(GraphEdge(ck, ek, EDGE_MENTIONS))
                if entity.norm not in seen_norms:
                    seen_norms.append(entity.norm)
            if self._config.cooccurrence_edges:
                for i, a in enumerate(seen_norms):
                    for b in seen_norms[i + 1:]:
                        self._graph.add_edge(GraphEdge(
                            entity_key(a), entity_key(b), EDGE_CO_OCCURS,
                            weight=0.5,
                        ))
            if self._config.relation_edges:
                self._extract_relation_cues(chunk, entities)

    def _extract_relation_cues(self, chunk: Chunk, entities) -> None:
        """Subject–verb–object cues within each sentence of the chunk."""
        offset = 0
        for sentence in split_sentences(chunk.text):
            start = chunk.text.find(sentence, offset)
            if start < 0:
                continue
            end = start + len(sentence)
            offset = end
            in_sentence = [
                e for e in entities if start <= e.start and e.end <= end
            ]
            if len(in_sentence) < 2:
                continue
            tagged = tag_tokens(tokenize(sentence))
            verbs = [
                (t.token.start + start, t.token.lower())
                for t in tagged if t.tag == VERB
            ]
            if not verbs:
                continue
            ordered = sorted(in_sentence, key=lambda e: e.start)
            for a, b in zip(ordered, ordered[1:]):
                between = [
                    v for pos, v in verbs if a.end <= pos <= b.start
                ]
                if not between:
                    continue
                label = stem(between[0])
                self._graph.add_edge(GraphEdge(
                    entity_key(a.norm), entity_key(b.norm), EDGE_RELATES,
                    label=label, weight=1.5,
                ))

    # ------------------------------------------------------------------
    # Structured side
    # ------------------------------------------------------------------
    def add_table(self, table: Table, entity_columns: Sequence[str],
                  label_column: Optional[str] = None) -> None:
        """Project relational rows in as record nodes.

        Each row becomes a record node DESCRIBES-linked to the entity
        node of every *entity_columns* value; ``label_column`` names the
        row (defaults to the primary key or first entity column).
        """
        if not self._config.entity_nodes:
            return
        schema = table.schema
        for col in entity_columns:
            schema.index_of(col)  # validate early
        label_col = label_column or schema.primary_key or entity_columns[0]
        for row_id, row in table.scan():
            rk = record_key(schema.name, row_id)
            label = str(row[schema.index_of(label_col)])
            self._graph.add_node(GraphNode(
                rk, NODE_RECORD, label,
                payload={"table": schema.name, "row_id": row_id,
                         "row": dict(zip(schema.column_names(), row))},
            ))
            for col in entity_columns:
                value = row[schema.index_of(col)]
                if value is None:
                    continue
                norm = str(value).strip().lower()
                ek = entity_key(norm)
                self._graph.add_node(GraphNode(
                    ek, NODE_ENTITY, norm, payload={"etype": "VALUE"},
                ))
                self._graph.add_edge(GraphEdge(rk, ek, EDGE_DESCRIBES))

    def add_table_relations(self, table: Table, subject_column: str,
                            object_column: str, relation: str) -> None:
        """Declare row-level relational cues ("customer purchased product").

        Adds a labeled RELATES edge between the entities in the subject
        and object columns of every row.
        """
        if not (self._config.entity_nodes and self._config.relation_edges):
            return
        schema = table.schema
        s_pos = schema.index_of(subject_column)
        o_pos = schema.index_of(object_column)
        for _, row in table.scan():
            subject, obj = row[s_pos], row[o_pos]
            if subject is None or obj is None:
                continue
            s_key = entity_key(str(subject).strip().lower())
            o_key = entity_key(str(obj).strip().lower())
            for key, value in ((s_key, subject), (o_key, obj)):
                self._graph.add_node(GraphNode(
                    key, NODE_ENTITY, str(value).strip().lower(),
                    payload={"etype": "VALUE"},
                ))
            self._graph.add_edge(GraphEdge(
                s_key, o_key, EDGE_RELATES, label=relation, weight=1.5,
            ))

    def add_documents(self, store: DocumentStore,
                      entity_paths: Sequence[str],
                      label_path: Optional[str] = None) -> None:
        """Project semi-structured documents in as record nodes."""
        if not self._config.entity_nodes:
            return
        for doc_id, document in store.scan():
            rk = record_key("doc", doc_id)
            label = str(
                select_one(document, label_path) if label_path else doc_id
            )
            self._graph.add_node(GraphNode(
                rk, NODE_RECORD, label,
                payload={"source": "document", "doc_id": doc_id},
            ))
            for path in entity_paths:
                value = select_one(document, path)
                if value is None:
                    continue
                norm = str(value).strip().lower()
                ek = entity_key(norm)
                self._graph.add_node(GraphNode(
                    ek, NODE_ENTITY, norm, payload={"etype": "VALUE"},
                ))
                self._graph.add_edge(GraphEdge(rk, ek, EDGE_DESCRIBES))

    # ------------------------------------------------------------------
    def build(self) -> HeterogeneousGraph:
        """Return the assembled graph."""
        if self._graph.n_nodes == 0:
            raise GraphIndexError("graph is empty: nothing was added")
        return self._graph
