"""Admission control: per-session work budgets and load shedding.

The serving layer's protection against one client starving the rest.
Two deterministic limits, both measured on the CostMeter work clock
(never wall time, matching :mod:`repro.resilience`):

* **session budget** — total work units one session may consume across
  its whole lifetime on the server;
* **queue depth** — how many questions may wait between two write
  barriers before later arrivals are shed.

Shedding never raises: a shed request receives a typed abstention
through the same degradation vocabulary the resilience layer uses
(:class:`~repro.resilience.DegradationEvent` +
:func:`~repro.resilience.summarize`), so downstream consumers handle
overload and backend failure with one code path.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..obs import incr
from ..qa.answer import Answer
from ..resilience import DegradationEvent, summarize

#: System name stamped on shed abstentions.
ANSWER_SYSTEM_SERVING = "serving"

SHED_BUDGET = "session_budget"
SHED_QUEUE = "queue_depth"


class AdmissionPolicy:
    """Limits an :class:`AdmissionController` enforces (None = off)."""

    def __init__(self, session_budget: Optional[int] = None,
                 max_queue_depth: Optional[int] = None):
        if session_budget is not None and session_budget < 1:
            raise ValueError("session_budget must be positive")
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError("max_queue_depth must be positive")
        self.session_budget = session_budget
        self.max_queue_depth = max_queue_depth


def shed_answer(kind: str, detail: str) -> Answer:
    """A typed-abstention Answer for one shed request.

    Mirrors the pipeline's degradation metadata exactly, so callers
    cannot tell load shedding apart from any other graceful
    degradation except by the recorded event kind.
    """
    event = DegradationEvent("serving", "admit", kind, detail, fatal=True)
    answer = Answer.abstain(ANSWER_SYSTEM_SERVING, reason=detail)
    answer.metadata["degradation"] = summarize([event], abstained=True)
    answer.metadata["degraded"] = True
    answer.metadata["shed"] = True
    incr("serving.admission.shed")
    return answer


class AdmissionController:
    """Tracks per-session spend and applies an :class:`AdmissionPolicy`."""

    def __init__(self, policy: Optional[AdmissionPolicy] = None):
        self._policy = policy or AdmissionPolicy()
        self._spent: Dict[str, int] = {}
        self._shed_count = 0

    @property
    def policy(self) -> AdmissionPolicy:
        """The enforced limits."""
        return self._policy

    def admit(self, session: str) -> Optional[Answer]:
        """None when *session* may proceed, else its shed abstention."""
        limit = self._policy.session_budget
        if limit is None:
            return None
        spent = self._spent.get(session, 0)
        if spent < limit:
            return None
        self._shed_count += 1
        return shed_answer(
            SHED_BUDGET,
            "session %r exhausted its work budget (%d of %d units)"
            % (session, spent, limit),
        )

    def over_depth(self, depth: int) -> Optional[Answer]:
        """None when a queue of *depth* may grow, else a shed abstention."""
        limit = self._policy.max_queue_depth
        if limit is None or depth < limit:
            return None
        self._shed_count += 1
        return shed_answer(
            SHED_QUEUE,
            "queue depth %d at limit %d; request shed" % (depth, limit),
        )

    def charge(self, session: str, work: int) -> None:
        """Record *work* units against *session*'s budget."""
        if work > 0:
            self._spent[session] = self._spent.get(session, 0) + work

    def spent(self, session: str) -> int:
        """Work units *session* has consumed so far."""
        return self._spent.get(session, 0)

    def stats(self) -> Dict[str, Any]:
        """Spend per session plus the shed count."""
        return {
            "sessions": dict(sorted(self._spent.items())),
            "shed": self._shed_count,
        }
