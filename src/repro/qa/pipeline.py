"""The hybrid Multi-Entity QA pipeline (paper Section III.C).

End-to-end orchestration over one heterogeneous data lake:

* **ingest** — curated relational tables, JSON documents and free text
  enter their respective stores; unstructured documents additionally
  pass through Relational Table Generation, so their facts become
  queryable rows;
* **index** — the graph index is built over chunks + tables + documents
  and a topology retriever is stood up on it;
* **answer** — questions are routed (structured / unstructured /
  hybrid); structured ones run through Semantic Operator Synthesis over
  curated *and generated* tables, textual ones through topology-RAG,
  hybrid ones through both with the best-grounded answer winning.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..entropy.semantic_entropy import (
    EntropyEstimate, SemanticEntropyEstimator,
)
from ..errors import ExtractionError, ReproError
from ..extraction.table_gen import TableGenerator
from ..graphindex.builder import BuilderConfig, GraphIndexBuilder
from ..graphindex.hetgraph import HeterogeneousGraph
from ..metering import CostMeter, GLOBAL_METER
from ..obs import incr, observe, span
from ..retrieval.topology import TopologyConfig, TopologyRetriever
from ..semql.catalog import SchemaCatalog
from ..slm.model import SmallLanguageModel
from ..storage.document.store import DocumentStore
from ..storage.relational.database import Database
from ..storage.textstore import TextStore
from .answer import ANSWER_SYSTEM_HYBRID, Answer
from .compare import ComparativeQA
from .federation import (
    ROUTE_STRUCTURED, ROUTE_UNSTRUCTURED, FederatedRouter, best_answer,
)
from .tableqa import TableQAEngine
from .textqa import TextQAEngine

# Column synonyms auto-registered for generated tables, mirroring the
# attribute vocabulary of repro.extraction.attributes.
_GENERATED_SYNONYMS = (
    ("increase", "change_percent"),
    ("decrease", "change_percent"),
    ("change", "change_percent"),
    ("growth", "change_percent"),
    ("product", "subject"),
    ("drug", "subject"),
    ("amount", "amount"),
    ("revenue", "amount"),
)


class HybridQAPipeline:
    """One object from raw lake to answered question."""

    def __init__(self, slm: SmallLanguageModel,
                 meter: Optional[CostMeter] = None,
                 builder_config: Optional[BuilderConfig] = None,
                 topology_config: Optional[TopologyConfig] = None,
                 min_column_support: int = 1,
                 resolve_entity_aliases: bool = False):
        self._slm = slm
        self._meter = meter if meter is not None else GLOBAL_METER
        self.db = Database(meter=self._meter)
        self.text_store = TextStore(meter=self._meter)
        self.doc_store = DocumentStore(meter=self._meter)
        self._builder_config = builder_config
        self._topology_config = topology_config
        self._table_generator = TableGenerator(
            slm, min_column_support=min_column_support
        )
        self._resolve_aliases = resolve_entity_aliases
        self._generated_tables: List[str] = []
        self._table_entity_columns: Dict[str, List[str]] = {}
        self._pending_synonyms: List[Tuple[str, str, str]] = []
        self._pending_joins: List[Tuple[str, str, str, str]] = []
        self._pending_display: List[Tuple[str, str]] = []
        self._builder: Optional[GraphIndexBuilder] = None
        self._graph: Optional[HeterogeneousGraph] = None
        self._retriever: Optional[TopologyRetriever] = None
        self._text_qa: Optional[TextQAEngine] = None
        self._table_qa: Optional[TableQAEngine] = None
        self._router: Optional[FederatedRouter] = None

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def add_sql(self, statements: Iterable[str]) -> None:
        """Run CREATE/INSERT statements to load curated tables."""
        for statement in statements:
            self.db.execute(statement)

    def declare_entity_columns(self, table: str,
                               columns: Sequence[str]) -> None:
        """Mark which columns of a curated table name graph entities."""
        for column in columns:
            self.db.table(table).schema.index_of(column)
        self._table_entity_columns[table] = list(columns)
        names = set()
        for column in columns:
            for value in self.db.table(table).column_values(column):
                if isinstance(value, str):
                    names.add(value)
        if names:
            self._slm.add_gazetteer("VALUE", sorted(names))

    def register_synonym(self, term: str, table: str, column: str) -> None:
        """Declare an NL term → column mapping (applied at build time)."""
        self._pending_synonyms.append((term, table, column))

    def register_join(self, table_a: str, column_a: str,
                      table_b: str, column_b: str) -> None:
        """Declare a joinable key pair (applied at build time)."""
        self._pending_joins.append((table_a, column_a, table_b, column_b))

    def register_display_column(self, table: str, column: str) -> None:
        """Column used to verbalize "list <table>" answers."""
        self._pending_display.append((table, column))

    def add_documents(self, docs: Iterable[Tuple[str, Any]]) -> None:
        """Load semi-structured documents."""
        self.doc_store.put_many(docs)

    def add_csv(self, table_name: str, csv_text: str,
                entity_columns: Optional[Sequence[str]] = None) -> int:
        """Load a CSV file as a curated table (schema inferred).

        Returns the row count; *entity_columns* are declared for graph
        projection when given.
        """
        from ..storage.csvio import read_csv

        table = read_csv(table_name, csv_text)
        self.db.create_table(table.schema)
        target = self.db.table(table_name)
        for row in table.rows():
            target.insert(row)
        if entity_columns:
            self.declare_entity_columns(table_name, entity_columns)
        return len(target)

    def add_texts(self, docs: Iterable[Tuple[str, str]]) -> None:
        """Load unstructured text documents (chunked on ingest)."""
        self.text_store.add_many(docs)

    def generate_table(self, name: str,
                       doc_ids: Optional[Sequence[str]] = None) -> int:
        """Run Relational Table Generation over stored texts.

        Returns the generated row count (0 when nothing extractable —
        the pipeline still works, via the RAG path).
        """
        ids = list(doc_ids) if doc_ids is not None \
            else self.text_store.doc_ids()
        documents = [(i, self.text_store.document(i)) for i in ids]
        try:
            generated = self._table_generator.generate_into(
                self.db, name, documents
            )
        except ExtractionError:
            return 0
        self._generated_tables.append(name)
        return len(generated.table)

    # ------------------------------------------------------------------
    # Index construction
    # ------------------------------------------------------------------
    def build(self) -> None:
        """Build the graph index, retriever and QA engines."""
        chunks = self.text_store.chunks()
        builder = GraphIndexBuilder(
            self._slm, config=self._builder_config, meter=self._meter
        )
        if chunks:
            builder.add_chunks(chunks)
        for table, columns in self._table_entity_columns.items():
            builder.add_table(self.db.table(table), entity_columns=columns)
        if len(self.doc_store):
            entity_paths = self._document_entity_paths()
            if entity_paths:
                builder.add_documents(self.doc_store, entity_paths)
        self._builder = builder
        self._graph = builder.build()
        if self._resolve_aliases:
            from ..graphindex.resolution import resolve_aliases

            resolve_aliases(self._graph, embedder=self._slm.embedder)
        self._index_retriever()
        self._build_engines()

    def _index_retriever(self) -> None:
        chunks = self.text_store.chunks()
        if not chunks:
            return
        self._retriever = TopologyRetriever(
            self._graph, self._slm, config=self._topology_config,
            meter=self._meter,
        )
        self._retriever.index(chunks)
        self._text_qa = TextQAEngine(self._retriever, self._slm)

    def _build_engines(self) -> None:
        catalog = SchemaCatalog(self.db)
        for name in self._generated_tables:
            schema = self.db.table(name).schema
            for term, column in _GENERATED_SYNONYMS:
                if schema.has_column(column):
                    catalog.register_synonym(term, name, column)
        for term, table, column in self._pending_synonyms:
            catalog.register_synonym(term, table, column)
        for table_a, column_a, table_b, column_b in self._pending_joins:
            catalog.register_join(table_a, column_a, table_b, column_b)
        for table, column in self._pending_display:
            catalog.register_display_column(table, column)
        catalog.build_value_index()
        self._table_qa = TableQAEngine(
            self.db, catalog, system_name=ANSWER_SYSTEM_HYBRID
        )
        self._router = FederatedRouter(catalog)

    def _document_entity_paths(self) -> List[str]:
        # Use shallow scalar keys that appear in most documents.
        from collections import Counter

        key_counts: Counter = Counter()
        n_docs = 0
        for _, document in self.doc_store.scan():
            n_docs += 1
            if isinstance(document, dict):
                for key, value in document.items():
                    if isinstance(value, str):
                        key_counts[key] += 1
        return [
            key for key, count in key_counts.items()
            if count >= max(1, n_docs // 2)
        ]

    # ------------------------------------------------------------------
    # Answering
    # ------------------------------------------------------------------
    def _check_built(self) -> None:
        if self._table_qa is None or self._router is None:
            raise ReproError("pipeline.build() must run before answer()")

    @property
    def graph(self) -> HeterogeneousGraph:
        """The built graph index."""
        self._check_built()
        return self._graph

    @property
    def table_qa(self) -> TableQAEngine:
        """The TableQA engine over curated + generated tables."""
        self._check_built()
        return self._table_qa

    @property
    def text_qa(self) -> Optional[TextQAEngine]:
        """The topology-RAG engine (None when the lake has no text)."""
        return self._text_qa

    def route(self, question: str):
        """The router's decision for *question* (for inspection)."""
        self._check_built()
        return self._router.route(question)

    @property
    def meter(self) -> CostMeter:
        """The cost meter every store and engine in this pipeline charges."""
        return self._meter

    def answer(self, question: str) -> Answer:
        """Answer through the hybrid route.

        Comparison questions ("Compare X and Y ...") are decomposed
        into per-entity sub-questions first (paper Section III.C's
        Multi-Entity QA), each answered through the full route.
        """
        self._check_built()
        started = time.perf_counter()
        with span("qa.answer") as sp:
            answer = self._answer_traced(question)
            sp.set("route", answer.metadata.get("route", "?"))
            sp.set("abstained", answer.abstained)
        incr("qa.answer.count")
        observe("qa.answer.latency", time.perf_counter() - started)
        return answer

    def _answer_traced(self, question: str) -> Answer:
        comparer = ComparativeQA(self._slm, self._answer_single)
        compared = comparer.try_answer(question)
        if compared is not None and not compared.abstained:
            compared.metadata.setdefault("route", "comparison")
            return compared
        return self._answer_single(question)

    def _answer_single(self, question: str) -> Answer:
        decision = self._router.route(question)
        candidates: List[Answer] = []
        if decision.route in (ROUTE_STRUCTURED, "hybrid"):
            candidates.append(self._table_qa.answer(question))
        if decision.route in (ROUTE_UNSTRUCTURED, "hybrid") or all(
            a.abstained for a in candidates
        ):
            if self._text_qa is not None:
                candidates.append(self._text_qa.answer(question))
        if not candidates:
            return Answer.abstain(ANSWER_SYSTEM_HYBRID, "no engine available")
        answer = best_answer(candidates)
        with span("qa.cross_check") as sp:
            self._cross_check(answer, candidates)
            sp.set("verdict", answer.metadata.get("cross_check", "n/a"))
        answer.metadata.setdefault("route", decision.route)
        return answer

    @staticmethod
    def _cross_check(answer: Answer, candidates: List[Answer]) -> None:
        """Cross-modal consistency: when both engines answered with a
        number, agreement raises confidence, disagreement is flagged.

        This is the grounding check the paper motivates — an LLM-ish
        text answer that *agrees* with an independently computed SQL
        result is far more trustworthy than either alone.
        """
        import re as _re

        def numeric(candidate: Answer):
            value = candidate.value
            if isinstance(value, (int, float)) and not isinstance(
                value, bool
            ):
                return float(value)
            match = _re.search(r"[-+]?\d+(?:\.\d+)?",
                               (candidate.text or "").replace(",", ""))
            return float(match.group()) if match else None

        live = [c for c in candidates if not c.abstained]
        if len(live) < 2:
            return
        values = [numeric(c) for c in live]
        if any(v is None for v in values):
            return
        if all(abs(abs(v) - abs(values[0])) < 1e-6 for v in values[1:]):
            answer.confidence = min(1.0, answer.confidence + 0.08)
            answer.metadata["cross_check"] = "agree"
        else:
            answer.metadata["cross_check"] = "disagree"

    def explain(self, question: str) -> str:
        """Human-readable trace of how *question* would be answered.

        Shows the comparison decomposition (when detected), the routing
        decision, the synthesized plan (structured path) and the
        retrieval explanation (text path) — the observability surface a
        production deployment needs.
        """
        self._check_built()
        with span("qa.explain"):
            lines = ["question: %s" % question]
            from .compare import decompose, detect_comparison

            frame = detect_comparison(question, self._slm)
            if frame is not None:
                lines.append("comparison of: %s"
                             % ", ".join(frame.entity_names))
                for entity, sub_question in decompose(frame):
                    lines.append("  sub[%s]: %s" % (entity, sub_question))
                    lines.extend(
                        "    " + line
                        for line in self._explain_single(sub_question)
                    )
                return "\n".join(lines)
            lines.extend(self._explain_single(question))
            return "\n".join(lines)

    def _explain_single(self, question: str) -> List[str]:
        decision = self._router.route(question)
        lines = ["route: %s (%s)" % (decision.route, decision.reason)]
        if decision.bound_tables:
            lines.append("bound tables: %s"
                         % ", ".join(decision.bound_tables))
        answer = self._table_qa.answer(question)
        if answer.abstained:
            lines.append("tableqa: abstained (%s)"
                         % answer.metadata.get("reason", ""))
        else:
            lines.append("tableqa plan: %s"
                         % answer.metadata.get("plan", "?"))
            lines.append("tableqa answer: %s" % answer.text)
        if self._text_qa is not None and decision.route != ROUTE_STRUCTURED:
            hits = self._text_qa.retrieve(question)
            lines.append("retrieval: %d chunks (%s)" % (
                len(hits), ", ".join(h.chunk_id for h in hits[:3])
            ))
        return lines

    def answer_with_uncertainty(
        self, question: str, n_samples: int = 8,
        temperature: float = 0.9, review_threshold: float = 0.6,
        seed: Optional[int] = None,
    ) -> Tuple[Answer, Optional[EntropyEstimate]]:
        """Answer plus a semantic-entropy reliability estimate.

        SQL-grounded answers are deterministic — they come back with no
        entropy estimate (``None``) and are always servable. Text-path
        answers are re-sampled ``n_samples`` times over the same
        retrieved context; the estimate's normalized entropy above
        ``review_threshold`` flags the answer for human review via
        ``answer.metadata['needs_review']``.
        """
        self._check_built()
        answer = self.answer(question)
        deterministic = any(
            p.startswith("sql:") for p in answer.provenance
        )
        if deterministic or self._text_qa is None or answer.abstained:
            answer.metadata["needs_review"] = False
            return answer, None
        with span("qa.entropy", n_samples=n_samples) as sp:
            contexts = [
                hit.chunk.text for hit in self._text_qa.retrieve(question)
            ]
            samples = self._slm.sample_answers(
                question, contexts, n_samples=n_samples,
                temperature=temperature, seed=seed,
            )
            estimator = SemanticEntropyEstimator(judge=self._slm.judge)
            estimate = estimator.estimate(samples)
            sp.set("entropy", estimate.entropy)
        answer.metadata["semantic_entropy"] = estimate.entropy
        answer.metadata["needs_review"] = (
            estimate.normalized > review_threshold
        )
        return answer, estimate

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    def ingest_incremental(self, docs: Sequence[Tuple[str, str]],
                           regenerate_tables: bool = True) -> None:
        """Add new text documents to a *built* pipeline.

        Only the new documents are chunked and tagged into the existing
        graph (the builder is incremental); generated tables are
        refreshed and the retriever/catalog re-pointed. Curated tables
        and previously indexed chunks are not reprocessed.
        """
        self._check_built()
        if self._builder is None:
            # Pipelines restored from disk have a graph but no live
            # builder; rebuild once, then future increments are cheap.
            self.add_texts(docs)
            self.build()
            docs = []
        new_chunks = []
        for doc_id, text in docs:
            new_chunks.extend(self.text_store.add(doc_id, text))
        if new_chunks:
            self._builder.add_chunks(new_chunks)
        self._graph = self._builder.build()
        if regenerate_tables:
            for name in list(self._generated_tables):
                self._generated_tables.remove(name)
                self.generate_table(name)
        self._index_retriever()
        self._build_engines()
