"""Simulated Small Language Model substrate.

Embeddings, n-gram language modeling, grounded generation, entailment
and tagging behind the :class:`SmallLanguageModel` facade. See DESIGN.md
§1 for why a simulated SLM is a faithful substitute here.
"""

from .embeddings import EmbeddingModel
from .entailment import (
    CONTRADICTION, ENTAILMENT, NEUTRAL, EntailmentJudge,
)
from .generator import (
    ANSWER_DATE, ANSWER_ENTITY, ANSWER_FREEFORM, ANSWER_NUMERIC,
    AnswerGenerator, Generation, classify_answer_kind,
)
from .model import SLMConfig, SmallLanguageModel
from .ngram import NgramLanguageModel
from .vocab import BOS, EOS, UNK, Vocabulary

__all__ = [
    "EmbeddingModel",
    "CONTRADICTION", "ENTAILMENT", "NEUTRAL", "EntailmentJudge",
    "ANSWER_DATE", "ANSWER_ENTITY", "ANSWER_FREEFORM", "ANSWER_NUMERIC",
    "AnswerGenerator", "Generation", "classify_answer_kind",
    "SLMConfig", "SmallLanguageModel",
    "NgramLanguageModel",
    "BOS", "EOS", "UNK", "Vocabulary",
]
