"""Tests for stemmer, stopwords, patterns, POS and NER."""

import pytest
from hypothesis import given, strategies as st

from repro.text import patterns as pat
from repro.text.ner import (
    TYPE_METRIC, TYPE_MISC, TYPE_PRODUCT, EntityRecognizer, Gazetteer,
)
from repro.text.pos import NOUN, NUM, PROPN, VERB, tag
from repro.text.stemmer import stem, stem_all
from repro.text.stopwords import content_words, is_stopword


class TestStemmer:
    @pytest.mark.parametrize(
        "word,expected",
        [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("motoring", "motor"),
            ("conflated", "conflat"),
            ("happy", "happi"),
            ("relational", "relat"),
            ("rational", "ration"),
            ("adjustable", "adjust"),
            ("effective", "effect"),
            ("probate", "probat"),
            ("controll", "control"),
        ],
    )
    def test_known_stems(self, word, expected):
        assert stem(word) == expected

    def test_short_words_unchanged(self):
        assert stem("go") == "go"
        assert stem("is") == "is"

    def test_stem_all_preserves_order(self):
        assert stem_all(["sales", "increased"]) == ["sale", "increas"]

    def test_case_insensitive(self):
        assert stem("Running") == stem("running")

    @given(st.text(alphabet=st.characters(min_codepoint=97, max_codepoint=122),
                   min_size=1, max_size=20))
    def test_stem_idempotent_under_repeat_is_stable(self, word):
        once = stem(word)
        assert isinstance(once, str)
        assert len(once) <= len(word) + 1  # at most one char grows ("e" add)


class TestStopwords:
    def test_the_is_stopword(self):
        assert is_stopword("The")

    def test_sales_is_not(self):
        assert not is_stopword("sales")

    def test_content_words_drop_stopwords(self):
        assert content_words(["the", "total", "sales"]) == ["total", "sales"]

    def test_content_words_keep_numbers_by_default(self):
        assert "20%" in content_words(["20%", "of", "sales"])

    def test_content_words_drop_numbers_when_asked(self):
        assert content_words(["20%", "sales"], keep_numbers=False) == ["sales"]


class TestPatterns:
    def test_percent(self):
        hits = pat.find_patterns("sales rose 20% in Q2")
        kinds = {m.kind for m in hits}
        assert pat.KIND_PERCENT in kinds and pat.KIND_QUARTER in kinds

    def test_percent_shadows_number(self):
        hits = pat.find_patterns("rose 20%")
        assert [m.kind for m in hits] == [pat.KIND_PERCENT]

    def test_money_with_scale(self):
        hits = pat.find_patterns("revenue of $1.5 million this year")
        assert any(m.kind == pat.KIND_MONEY for m in hits)

    def test_iso_date(self):
        hits = pat.find_patterns("admitted on 2024-03-15")
        assert any(m.kind == pat.KIND_DATE for m in hits)

    def test_text_date(self):
        hits = pat.find_patterns("on March 15, 2024 the trial began")
        assert any(m.kind == pat.KIND_DATE for m in hits)

    def test_structured_id(self):
        hits = pat.find_patterns("patient PAT-0042 received")
        assert any(m.kind == pat.KIND_ID for m in hits)

    def test_word_quarter(self):
        hits = pat.find_patterns("in the second quarter of 2024")
        assert any(m.kind == pat.KIND_QUARTER for m in hits)

    def test_normalize_quarter(self):
        assert pat.normalize_quarter("second quarter of 2024") == "Q2 2024"
        assert pat.normalize_quarter("Q3") == "Q3"

    def test_normalize_percent(self):
        assert pat.normalize_percent("+20%") == 20.0
        assert pat.normalize_percent("-3.5 %") == -3.5

    def test_normalize_money(self):
        assert pat.normalize_money("$1.5 million") == 1.5e6
        assert pat.normalize_money("$1,299.99") == pytest.approx(1299.99)

    def test_matches_sorted_by_position(self):
        hits = pat.find_patterns("Q1 then 20% then $5")
        starts = [m.start for m in hits]
        assert starts == sorted(starts)


class TestPOS:
    def test_basic_tags(self):
        tags = [t.tag for t in tag("Sales increased 20%")]
        assert tags == [NOUN, VERB, NUM]

    def test_proper_noun_mid_sentence(self):
        tagged = tag("the Alpha Widget sells well")
        assert tagged[1].tag == PROPN

    def test_determiner_coerces_verb_to_noun(self):
        tagged = tag("the increased revenue")
        assert tagged[1].tag == NOUN

    def test_punct(self):
        assert tag("end.")[-1].tag == "PUNCT"

    def test_empty(self):
        assert tag("") == []


class TestNER:
    def test_gazetteer_hit(self):
        gaz = Gazetteer()
        gaz.add(TYPE_PRODUCT, ["Alpha Widget"])
        rec = EntityRecognizer(gaz)
        ents = rec.recognize("The Alpha Widget sold well in Q2")
        types = {e.etype for e in ents}
        assert TYPE_PRODUCT in types and pat.KIND_QUARTER in types

    def test_gazetteer_case_insensitive(self):
        rec = EntityRecognizer()
        rec.add_gazetteer(TYPE_PRODUCT, ["alpha widget"])
        ents = rec.recognize("ALPHA WIDGET shipped")
        assert any(e.etype == TYPE_PRODUCT for e in ents)

    def test_norm_is_canonical(self):
        rec = EntityRecognizer()
        rec.add_gazetteer(TYPE_PRODUCT, ["Alpha Widget"])
        ents = rec.recognize("the ALPHA widget again")
        prods = [e for e in ents if e.etype == TYPE_PRODUCT]
        assert prods and prods[0].norm == "alpha widget"

    def test_metric_terms(self):
        ents = EntityRecognizer().recognize("total sales and revenue grew")
        metrics = {e.norm for e in ents if e.etype == TYPE_METRIC}
        assert {"sales", "revenue"} <= metrics

    def test_shape_entity(self):
        ents = EntityRecognizer().recognize("we met Globex Corporation today")
        assert any(e.etype == TYPE_MISC and "globex" in e.norm for e in ents)

    def test_no_overlapping_spans(self):
        gaz = Gazetteer()
        gaz.add(TYPE_PRODUCT, ["Alpha Widget", "Widget"])
        ents = EntityRecognizer(gaz).recognize("Alpha Widget is here")
        spans = sorted(e.span for e in ents)
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2

    def test_entity_keys_helper(self):
        rec = EntityRecognizer()
        rec.add_gazetteer(TYPE_PRODUCT, ["Alpha Widget"])
        assert "alpha widget" in rec.entity_keys("buy the Alpha Widget now")

    def test_offsets_match_source(self):
        text = "PAT-0042 received DrugX on 2024-01-02"
        for ent in EntityRecognizer().recognize(text):
            assert text[ent.start:ent.end] == ent.text
