"""Semantic-aware heterogeneous graph indexing (paper Section III.A)."""

from .analysis import (
    BridgeReport, bridge_report, degree_histogram, describe, hub_entities,
    relation_histogram,
)
from .builder import BuilderConfig, GraphIndexBuilder
from .centrality import (
    degree_centrality, harmonic_centrality, normalize_scores, pagerank,
)
from .hetgraph import HeterogeneousGraph
from .nodes import (
    EDGE_CO_OCCURS, EDGE_DESCRIBES, EDGE_MENTIONS, EDGE_NEXT, EDGE_RELATES,
    NODE_CHUNK, NODE_ENTITY, NODE_RECORD, GraphEdge, GraphNode, chunk_key,
    entity_key, record_key,
)
from .persistence import (
    graph_from_json, graph_to_json, load_graph, save_graph,
)
from .resolution import AliasPair, find_alias_pairs, resolve_aliases

__all__ = [
    "BridgeReport", "bridge_report", "degree_histogram", "describe",
    "hub_entities", "relation_histogram",
    "BuilderConfig", "GraphIndexBuilder",
    "degree_centrality", "harmonic_centrality", "normalize_scores",
    "pagerank",
    "HeterogeneousGraph",
    "EDGE_CO_OCCURS", "EDGE_DESCRIBES", "EDGE_MENTIONS", "EDGE_NEXT",
    "EDGE_RELATES",
    "NODE_CHUNK", "NODE_ENTITY", "NODE_RECORD",
    "GraphEdge", "GraphNode", "chunk_key", "entity_key", "record_key",
    "graph_from_json", "graph_to_json", "load_graph", "save_graph",
    "AliasPair", "find_alias_pairs", "resolve_aliases",
]
