"""N-gram language model with interpolated add-k smoothing.

Provides the SLM's *scoring* capability: sequence log-probability,
perplexity, and temperature-controlled sampling. Used by the answer
generator (token-level predictive entropy baseline in E3 needs real
per-token probabilities) and by tests as a toy generative model.
"""

from __future__ import annotations

import math
import random
from collections import Counter, defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .vocab import BOS, EOS, UNK, Vocabulary


class NgramLanguageModel:
    """Interpolated n-gram LM over word tokens.

    Parameters
    ----------
    order:
        Maximum n-gram order (default 3 = trigram).
    add_k:
        Additive smoothing mass per vocabulary item.
    interpolation:
        Per-order interpolation weights, highest order first; defaults
        to geometric decay. Must sum to 1.
    """

    def __init__(self, order: int = 3, add_k: float = 0.1,
                 interpolation: Optional[Sequence[float]] = None):
        if order < 1:
            raise ValueError("order must be >= 1")
        if add_k <= 0:
            raise ValueError("add_k must be positive")
        self.order = order
        self.add_k = add_k
        if interpolation is None:
            raw = [2.0 ** (-i) for i in range(order)]
            total = sum(raw)
            interpolation = [w / total for w in raw]
        if len(interpolation) != order:
            raise ValueError("need one interpolation weight per order")
        if abs(sum(interpolation) - 1.0) > 1e-9:
            raise ValueError("interpolation weights must sum to 1")
        self._lambdas = list(interpolation)
        self.vocab = Vocabulary()
        # counts[n][context][token] for n-grams of length n+1
        self._counts: List[Dict[Tuple[str, ...], Counter]] = [
            defaultdict(Counter) for _ in range(order)
        ]
        self._trained = False

    # ------------------------------------------------------------------
    def fit(self, sentences: Iterable[Sequence[str]]) -> "NgramLanguageModel":
        """Count n-grams over tokenized *sentences*."""
        for sentence in sentences:
            tokens = [t.lower() for t in sentence]
            self.vocab.add_sentence(tokens)
            padded = [BOS] * (self.order - 1) + tokens + [EOS]
            for i in range(self.order - 1, len(padded)):
                token = padded[i]
                for n in range(self.order):
                    context = tuple(padded[i - n : i])
                    self._counts[n][context][token] += 1
        self._trained = True
        return self

    def _order_prob(self, n: int, context: Tuple[str, ...], token: str) -> float:
        counter = self._counts[n].get(context)
        vocab_size = max(len(self.vocab), 2)
        if counter is None:
            return 1.0 / vocab_size
        total = sum(counter.values())
        return (counter.get(token, 0) + self.add_k) / (
            total + self.add_k * vocab_size
        )

    def prob(self, context: Sequence[str], token: str) -> float:
        """Interpolated P(token | context)."""
        if not self._trained:
            raise RuntimeError("model must be fit() before scoring")
        token = token.lower()
        context = [c.lower() for c in context]
        padded = [BOS] * (self.order - 1) + list(context)
        p = 0.0
        for n in range(self.order):
            ctx = tuple(padded[len(padded) - n :]) if n else tuple()
            p += self._lambdas[n] * self._order_prob(n, ctx, token)
        return p

    def sequence_logprob(self, tokens: Sequence[str]) -> float:
        """Natural-log probability of a full sentence (with EOS)."""
        tokens = [t.lower() for t in tokens]
        history: List[str] = []
        logp = 0.0
        for token in list(tokens) + [EOS]:
            logp += math.log(self.prob(history, token))
            history.append(token)
        return logp

    def perplexity(self, tokens: Sequence[str]) -> float:
        """exp(-logprob / length): lower = better modeled."""
        n = len(tokens) + 1
        return math.exp(-self.sequence_logprob(tokens) / n)

    # ------------------------------------------------------------------
    def _candidate_tokens(self, context: Sequence[str]) -> List[str]:
        padded = [BOS] * (self.order - 1) + [c.lower() for c in context]
        candidates: set = set()
        for n in range(self.order - 1, -1, -1):
            ctx = tuple(padded[len(padded) - n :]) if n else tuple()
            counter = self._counts[n].get(ctx)
            if counter:
                candidates.update(counter.keys())
            if len(candidates) >= 50:
                break
        candidates.discard(UNK)
        candidates.discard(BOS)
        return sorted(candidates)

    def sample(self, rng: random.Random, max_tokens: int = 30,
               temperature: float = 1.0,
               prefix: Optional[Sequence[str]] = None) -> List[str]:
        """Sample a sentence with temperature-scaled probabilities.

        Temperature < 1 sharpens toward the most frequent continuations;
        > 1 flattens. Stops on EOS or *max_tokens*.
        """
        if not self._trained:
            raise RuntimeError("model must be fit() before sampling")
        if temperature <= 0:
            raise ValueError("temperature must be positive")
        tokens: List[str] = [t.lower() for t in (prefix or [])]
        for _ in range(max_tokens):
            candidates = self._candidate_tokens(tokens)
            if not candidates:
                break
            weights = [
                self.prob(tokens, cand) ** (1.0 / temperature)
                for cand in candidates
            ]
            total = sum(weights)
            pick = rng.random() * total
            acc = 0.0
            chosen = candidates[-1]
            for cand, weight in zip(candidates, weights):
                acc += weight
                if pick <= acc:
                    chosen = cand
                    break
            if chosen == EOS:
                break
            tokens.append(chosen)
        return tokens
