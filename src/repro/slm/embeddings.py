"""Deterministic text embeddings via hashed random projections.

This stands in for the SLM's encoder. Each token deterministically maps
to a fixed unit vector (seeded by a stable hash of the token), and a
text embeds as the IDF-weighted mean of its content-token vectors plus
a character-trigram component that gives morphologically related tokens
("increase"/"increased") nearby vectors. Cosine similarity over these
embeddings behaves like a classic distributional model: texts sharing
vocabulary and morphology are close; unrelated texts are near-orthogonal.

Why this is a faithful substitute: every experiment in the paper uses
embeddings only through *relative similarity* (dense retrieval ranking,
answer clustering). Hashed projections preserve exactly that structure
while being reproducible offline without model weights.
"""

from __future__ import annotations

import hashlib
import math
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..metering import EMBEDDING_CALLS, CostMeter, GLOBAL_METER
from ..text.stemmer import stem
from ..text.stopwords import STOPWORDS
from ..text.tokenizer import words


def _stable_seed(key: str) -> int:
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def _unit_vector(key: str, dim: int) -> np.ndarray:
    rng = np.random.default_rng(_stable_seed(key))
    vec = rng.standard_normal(dim)
    norm = np.linalg.norm(vec)
    return vec / norm


def _char_trigrams(token: str) -> List[str]:
    padded = "#%s#" % token
    return [padded[i : i + 3] for i in range(len(padded) - 2)]


class EmbeddingModel:
    """Deterministic sentence/text embedder.

    Parameters
    ----------
    dim:
        Embedding dimensionality (default 128: small, SLM-like).
    char_weight:
        Relative weight of the character-trigram component; 0 disables
        it (pure bag-of-words hashing).
    meter:
        Cost meter charged one ``embedding_calls`` unit per embedded
        text — the unit the E1 efficiency bench counts.
    """

    def __init__(self, dim: int = 128, char_weight: float = 0.35,
                 meter: Optional[CostMeter] = None):
        if dim < 8:
            raise ValueError("dim must be >= 8")
        if not 0.0 <= char_weight <= 1.0:
            raise ValueError("char_weight must be within [0, 1]")
        self.dim = dim
        self._char_weight = char_weight
        self._meter = meter if meter is not None else GLOBAL_METER
        self._token_cache: Dict[str, np.ndarray] = {}
        self._doc_freq: Dict[str, int] = {}
        self._n_docs = 0

    # ------------------------------------------------------------------
    # Corpus statistics (optional; improves weighting like a trained
    # encoder's contextual salience).
    # ------------------------------------------------------------------
    def fit_idf(self, texts: Iterable[str]) -> "EmbeddingModel":
        """Record document frequencies so rare terms weigh more."""
        for text in texts:
            self._n_docs += 1
            for term in set(self._terms(text)):
                self._doc_freq[term] = self._doc_freq.get(term, 0) + 1
        return self

    def _idf(self, term: str) -> float:
        if self._n_docs == 0:
            return 1.0
        df = self._doc_freq.get(term, 0)
        return math.log((self._n_docs + 1) / (df + 1)) + 1.0

    # ------------------------------------------------------------------
    # Embedding
    # ------------------------------------------------------------------
    @staticmethod
    def _terms(text: str) -> List[str]:
        return [w for w in words(text) if w not in STOPWORDS]

    def _token_vector(self, token: str) -> np.ndarray:
        cached = self._token_cache.get(token)
        if cached is not None:
            return cached
        base = _unit_vector("tok:" + stem(token), self.dim)
        if self._char_weight > 0.0:
            tri = np.zeros(self.dim)
            trigrams = _char_trigrams(token)
            for gram in trigrams:
                tri += _unit_vector("tri:" + gram, self.dim)
            if trigrams:
                tri /= np.linalg.norm(tri) or 1.0
            vec = (1.0 - self._char_weight) * base + self._char_weight * tri
        else:
            vec = base
        vec = vec / (np.linalg.norm(vec) or 1.0)
        self._token_cache[token] = vec
        return vec

    def embed(self, text: str) -> np.ndarray:
        """Embed *text* into a unit vector (zero vector for empty text)."""
        self._meter.charge(EMBEDDING_CALLS)
        terms = self._terms(text)
        if not terms:
            return np.zeros(self.dim)
        acc = np.zeros(self.dim)
        for term in terms:
            acc += self._idf(term) * self._token_vector(term)
        norm = np.linalg.norm(acc)
        if norm == 0.0:
            return acc
        return acc / norm

    def embed_batch(self, texts: Sequence[str]) -> np.ndarray:
        """Embed many texts into an (n, dim) matrix."""
        if not texts:
            return np.zeros((0, self.dim))
        return np.stack([self.embed(t) for t in texts])

    @staticmethod
    def cosine(a: np.ndarray, b: np.ndarray) -> float:
        """Cosine similarity, safe for zero vectors."""
        denom = (np.linalg.norm(a) * np.linalg.norm(b)) or 1.0
        return float(np.dot(a, b) / denom)

    def similarity(self, text_a: str, text_b: str) -> float:
        """Cosine similarity of two texts' embeddings."""
        return self.cosine(self.embed(text_a), self.embed(text_b))
