"""Tests for the federated router."""

import pytest

from repro.metering import CostMeter
from repro.qa.answer import Answer
from repro.qa.federation import (
    ROUTE_HYBRID, ROUTE_STRUCTURED, ROUTE_UNSTRUCTURED, FederatedRouter,
    best_answer,
)
from repro.semql import SchemaCatalog
from repro.storage.relational import Database


@pytest.fixture
def router():
    db = Database(meter=CostMeter())
    db.execute(
        "CREATE TABLE products (pid INT PRIMARY KEY, name TEXT, "
        "manufacturer TEXT)"
    )
    db.execute(
        "CREATE TABLE sales (sid INT PRIMARY KEY, pid INT, "
        "quarter TEXT, amount FLOAT)"
    )
    db.execute(
        "INSERT INTO products VALUES (1, 'Alpha Widget', 'Acme')"
    )
    db.execute("INSERT INTO sales VALUES (1, 1, 'q2', 100.0)")
    catalog = SchemaCatalog(db)
    catalog.register_synonym("sales", "sales", "amount")
    catalog.build_value_index()
    return FederatedRouter(catalog)


class TestRouting:
    def test_aggregate_with_bound_metric_is_structured(self, router):
        decision = router.route("Find the total sales in Q2")
        assert decision.route == ROUTE_STRUCTURED

    def test_unbound_text_question_is_unstructured(self, router):
        decision = router.route(
            "What tone did reviewers use when describing support?"
        )
        assert decision.route == ROUTE_UNSTRUCTURED
        assert decision.bound_tables == ()

    def test_entity_without_metric_is_hybrid(self, router):
        decision = router.route("Tell me about the Alpha Widget")
        assert decision.route == ROUTE_HYBRID
        assert "products" in decision.bound_tables

    def test_metric_with_comparison_non_aggregate_is_hybrid(self, router):
        decision = router.route(
            "Did sales move more than 10% recently?"
        )
        assert decision.route == ROUTE_HYBRID

    def test_reason_attached(self, router):
        assert router.route("total sales in Q2").reason

    def test_bound_tables_sorted_unique(self, router):
        decision = router.route(
            "the Alpha Widget and again the Alpha Widget"
        )
        assert decision.bound_tables == ("products",)

    def test_metric_and_entity_bind_in_different_tables(self, router):
        # "sales" resolves in the sales table while "Alpha Widget" binds
        # in products: the decision must carry the entity's table even
        # though the metric lives elsewhere.
        decision = router.route(
            "Find the total sales of the Alpha Widget"
        )
        assert decision.route == ROUTE_STRUCTURED
        assert decision.bound_tables == ("products",)

    def test_empty_catalog_routes_everything_unstructured(self):
        catalog = SchemaCatalog(Database(meter=CostMeter()))
        catalog.build_value_index()
        router = FederatedRouter(catalog)
        decision = router.route("Find the total sales of Alpha Widget")
        assert decision.route == ROUTE_UNSTRUCTURED
        assert decision.bound_tables == ()


class TestBestAnswer:
    def test_empty_candidates_abstain_with_reason(self):
        answer = best_answer([])
        assert answer.abstained
        assert "no candidate answers" in answer.metadata["reason"]

    def test_clean_beats_degraded_at_equal_confidence(self):
        degraded = Answer(text="d", confidence=0.8, grounded=True,
                          metadata={"degraded": True})
        clean = Answer(text="c", confidence=0.8, grounded=True)
        assert best_answer([degraded, clean]) is clean

    def test_grounding_and_confidence_outrank_degradation(self):
        degraded = Answer(text="d", confidence=0.9, grounded=True,
                          metadata={"degraded": True})
        clean = Answer(text="c", confidence=0.8, grounded=True)
        assert best_answer([degraded, clean]) is degraded
        ungrounded = Answer(text="u", confidence=0.95, grounded=False)
        assert best_answer([degraded, ungrounded]) is degraded
