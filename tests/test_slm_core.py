"""Tests for vocab, n-gram LM, embeddings and metering."""

import math
import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.metering import (
    EMBEDDING_CALLS, ROWS_SCANNED, CostMeter,
)
from repro.slm.embeddings import EmbeddingModel
from repro.slm.ngram import NgramLanguageModel
from repro.slm.vocab import UNK, Vocabulary


class TestCostMeter:
    def test_charge_and_get(self):
        meter = CostMeter()
        meter.charge(ROWS_SCANNED, 3)
        assert meter.get(ROWS_SCANNED) == 3

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            CostMeter().charge(ROWS_SCANNED, -1)

    def test_measure_context(self):
        meter = CostMeter()
        meter.charge(ROWS_SCANNED, 10)
        with meter.measure() as work:
            meter.charge(ROWS_SCANNED, 5)
        assert work == {ROWS_SCANNED: 5}

    def test_diff_ignores_unchanged(self):
        meter = CostMeter()
        meter.charge("a", 1)
        before = meter.snapshot()
        meter.charge("b", 2)
        assert meter.diff(before) == {"b": 2}

    def test_reset(self):
        meter = CostMeter()
        meter.charge("a")
        meter.reset()
        assert meter.get("a") == 0

    def test_merge(self):
        m1, m2 = CostMeter(), CostMeter()
        m1.charge("a", 1)
        m2.charge("a", 2)
        m1.merge(m2)
        assert m1.get("a") == 3


class TestVocabulary:
    def test_specials_present(self):
        v = Vocabulary()
        assert UNK in v and len(v) == 3

    def test_add_and_lookup(self):
        v = Vocabulary()
        v.add_sentence(["sales", "rose"])
        assert v.token_of(v.id_of("sales")) == "sales"

    def test_unknown_maps_to_unk(self):
        v = Vocabulary()
        assert v.id_of("never-seen") == v.id_of(UNK)

    def test_min_count_filters(self):
        v = Vocabulary(min_count=2)
        v.add_sentence(["rare"])
        assert "rare" not in v
        v.add_sentence(["rare"])
        assert "rare" in v

    def test_counts(self):
        v = Vocabulary()
        v.add_sentence(["a", "a", "b"])
        assert v.count("a") == 2 and v.count("zzz") == 0

    def test_encode(self):
        v = Vocabulary()
        v.add_sentence(["x"])
        ids = v.encode(["x", "y"])
        assert ids[0] != ids[1] and ids[1] == v.id_of(UNK)

    def test_from_corpus(self):
        v = Vocabulary.from_corpus([["a"], ["b"]])
        assert "a" in v and "b" in v

    def test_invalid_min_count(self):
        with pytest.raises(ValueError):
            Vocabulary(min_count=0)

    def test_tokens_excludes_specials(self):
        v = Vocabulary()
        v.add_sentence(["word"])
        assert v.tokens() == ["word"]


CORPUS = [
    "sales rose in the second quarter".split(),
    "sales fell in the first quarter".split(),
    "revenue rose in the second quarter".split(),
    "profit margins improved during the quarter".split(),
]


class TestNgramLM:
    def test_fit_and_prob_sane(self):
        lm = NgramLanguageModel(order=2).fit(CORPUS)
        p = lm.prob(["sales"], "rose")
        assert 0.0 < p < 1.0

    def test_seen_bigram_beats_unseen(self):
        lm = NgramLanguageModel(order=2).fit(CORPUS)
        assert lm.prob(["sales"], "rose") > lm.prob(["sales"], "improved")

    def test_probs_sum_to_one_over_vocab(self):
        lm = NgramLanguageModel(order=2).fit(CORPUS)
        tokens = lm.vocab.tokens(include_specials=True)
        total = sum(lm.prob(["sales"], t) for t in tokens)
        assert total == pytest.approx(1.0, abs=0.02)

    def test_perplexity_lower_for_in_domain(self):
        lm = NgramLanguageModel(order=3).fit(CORPUS)
        in_domain = "sales rose in the second quarter".split()
        out_domain = "zebras paint quantum tubas loudly".split()
        assert lm.perplexity(in_domain) < lm.perplexity(out_domain)

    def test_sequence_logprob_negative(self):
        lm = NgramLanguageModel().fit(CORPUS)
        assert lm.sequence_logprob(["sales", "rose"]) < 0.0

    def test_sample_deterministic_given_rng(self):
        lm = NgramLanguageModel(order=2).fit(CORPUS)
        s1 = lm.sample(random.Random(7), max_tokens=8)
        s2 = lm.sample(random.Random(7), max_tokens=8)
        assert s1 == s2

    def test_sample_tokens_in_vocab(self):
        lm = NgramLanguageModel(order=2).fit(CORPUS)
        for tok in lm.sample(random.Random(1), max_tokens=10):
            assert tok in lm.vocab

    def test_low_temperature_prefers_frequent(self):
        lm = NgramLanguageModel(order=2).fit(CORPUS * 3)
        samples = [
            tuple(lm.sample(random.Random(i), max_tokens=6, temperature=0.2))
            for i in range(20)
        ]
        # Sharp sampling should repeat the dominant continuation often.
        assert len(set(samples)) < 20

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            NgramLanguageModel().prob([], "x")

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            NgramLanguageModel(order=0)
        with pytest.raises(ValueError):
            NgramLanguageModel(add_k=0)
        with pytest.raises(ValueError):
            NgramLanguageModel(order=2, interpolation=[0.9, 0.2])


class TestEmbeddings:
    def setup_method(self):
        self.model = EmbeddingModel(dim=64, meter=CostMeter())

    def test_deterministic(self):
        a = self.model.embed("quarterly sales increased")
        b = EmbeddingModel(dim=64, meter=CostMeter()).embed(
            "quarterly sales increased"
        )
        assert np.allclose(a, b)

    def test_unit_norm(self):
        v = self.model.embed("sales data")
        assert np.linalg.norm(v) == pytest.approx(1.0)

    def test_empty_text_zero_vector(self):
        assert np.allclose(self.model.embed(""), 0.0)

    def test_similar_texts_closer_than_unrelated(self):
        sim_related = self.model.similarity(
            "sales increased strongly", "sales increase was strong"
        )
        sim_unrelated = self.model.similarity(
            "sales increased strongly", "the patient received medication"
        )
        assert sim_related > sim_unrelated

    def test_morphological_variants_close(self):
        sim = self.model.similarity("increase", "increased")
        assert sim > 0.8

    def test_meter_charged(self):
        meter = CostMeter()
        model = EmbeddingModel(dim=32, meter=meter)
        model.embed("one")
        model.embed_batch(["two", "three"])
        assert meter.get(EMBEDDING_CALLS) == 3

    def test_idf_downweights_common_terms(self):
        corpus = ["the product sold well"] * 50 + ["rare zirconium widget"]
        self.model.fit_idf(corpus)
        # "product" is ubiquitous, so a query sharing only "product"
        # should score lower than one sharing the rare term.
        sim_common = self.model.similarity("product", "product zirconium")
        sim_rare = self.model.similarity("zirconium", "product zirconium")
        assert sim_rare > sim_common

    def test_batch_shape(self):
        mat = self.model.embed_batch(["a b", "c d", "e f"])
        assert mat.shape == (3, 64)

    def test_empty_batch(self):
        assert self.model.embed_batch([]).shape == (0, 64)

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            EmbeddingModel(dim=4)

    def test_invalid_char_weight(self):
        with pytest.raises(ValueError):
            EmbeddingModel(char_weight=1.5)

    @given(st.text(min_size=1, max_size=80))
    @settings(max_examples=25, deadline=None)
    def test_embedding_always_finite(self, text):
        vec = EmbeddingModel(dim=32, meter=CostMeter()).embed(text)
        assert np.all(np.isfinite(vec))
