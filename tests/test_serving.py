"""Tests for the query-serving subsystem (repro.serving).

The load-bearing properties: batched+cached answering is byte-for-byte
identical to sequential uncached answering; every store write
invalidates exactly the tiers that depend on it; admission control
sheds with typed abstentions instead of raising; the workload format
rejects malformed input with :class:`~repro.errors.ServingError`.
"""

import random

import pytest

from repro.bench import LakeSpec, generate_ecommerce_lake
from repro.bench.runner import build_hybrid_system
from repro.errors import ServingError
from repro.resilience import FaultPlan, ResilienceConfig, work_now
from repro.serving import (
    AdmissionPolicy, CachePolicy, QueryServer, ServeRequest,
    normalize_question, parse_workload, render_jsonl, repeated_questions,
    request_from_record,
)

SEED = 11


@pytest.fixture(scope="module")
def lake():
    return generate_ecommerce_lake(LakeSpec(n_products=4, seed=SEED))


@pytest.fixture(scope="module")
def questions(lake):
    return [pair.question for pair in lake.qa_pairs(per_kind=1)][:4]


def make_server(lake, policy=None, admission=None, batch_size=4,
                chaos_rate=0.0):
    _system, pipeline = build_hybrid_system(lake, seed=SEED)
    if chaos_rate > 0.0:
        pipeline.enable_resilience(ResilienceConfig(
            fault_plan=FaultPlan.uniform(
                ("relational", "retriever", "slm"), chaos_rate, seed=5,
            ),
            budget=500_000,
        ))
    return QueryServer(pipeline, policy=policy or CachePolicy(),
                       admission=admission, batch_size=batch_size)


def ask(question, session="default"):
    return ServeRequest(op="ask", payload={"question": question},
                        session=session)


def fingerprints(results):
    return [
        (r.answer.text, r.answer.value, r.answer.confidence,
         r.answer.grounded, r.answer.system,
         tuple(r.answer.provenance),
         tuple(sorted(r.answer.metadata.items())))
        for r in results if r.op == "ask"
    ]


# ----------------------------------------------------------------------
# Equality: caching and batching must be invisible in the answers
# ----------------------------------------------------------------------

class TestEquality:
    def test_cached_batched_equals_sequential_uncached(self, lake,
                                                       questions):
        workload = (
            [ask(q) for q in questions]
            + [ask(questions[0]), ask(questions[0])]
            + [ServeRequest(op="sql", payload={"statement":
                "INSERT INTO sales VALUES (99001, 1, 'Q1', 2024, 50.0)"})]
            + [ask(q) for q in questions]
        )
        cached = make_server(lake, CachePolicy(), batch_size=4)
        sequential = make_server(lake, CachePolicy.none(), batch_size=1)
        assert fingerprints(cached.serve(workload)) == fingerprints(
            sequential.serve(workload))

    def test_single_flight_dedup(self, lake, questions):
        server = make_server(lake, batch_size=8)
        results = server.serve([ask(questions[0])] * 3)
        fps = fingerprints(results)
        assert fps[0] == fps[1] == fps[2]
        assert server.stats()["scheduler"]["deduped"] == 2
        assert [r.deduped for r in results] == [False, True, True]

    def test_warm_pass_at_least_three_times_cheaper(self, lake,
                                                    questions):
        server = make_server(lake, batch_size=4)
        meter = server.pipeline.meter
        workload = repeated_questions(questions, repeats=1)
        before = work_now(meter)
        cold = fingerprints(server.serve(workload))
        cold_work = work_now(meter) - before
        before = work_now(meter)
        warm = fingerprints(server.serve(workload))
        warm_work = work_now(meter) - before
        assert cold == warm
        assert warm_work * 3 <= cold_work


# ----------------------------------------------------------------------
# Invalidation: each store kind flushes its dependent tiers
# ----------------------------------------------------------------------

TOTAL_QUESTION = "Find the total sales of all products in Q1."


def invalidation_workload(write):
    return [ask(TOTAL_QUESTION), ask(TOTAL_QUESTION), write,
            ask(TOTAL_QUESTION)]


class TestInvalidation:
    def check_write(self, lake, write, kind):
        cached = make_server(lake, CachePolicy(), batch_size=4)
        control = make_server(lake, CachePolicy.none(), batch_size=1)
        workload = invalidation_workload(write)
        got = fingerprints(cached.serve(workload))
        want = fingerprints(control.serve(workload))
        assert got == want
        assert got[0] == got[1]  # pre-write repeat served consistently
        stats = cached.stats()["cache"]
        assert stats["generations"][kind] > 0
        return got, stats

    def test_relational_write_invalidates_and_changes_answer(self, lake):
        write = ServeRequest(op="sql", payload={"statement":
            "INSERT INTO sales VALUES (99002, 1, 'Q1', 2024, 777.0)"})
        got, stats = self.check_write(lake, write, "relational")
        assert got[2] != got[0]  # the new row changed the total
        dropped = (stats["answer"]["invalidations"]
                   + stats["plan"]["invalidations"])
        assert dropped > 0

    def test_document_write_invalidates_answer_tier(self, lake):
        write = ServeRequest(op="add_doc", payload={
            "doc_id": "t-doc",
            "document": {"name": "TestWidget", "status": "new"},
        })
        _got, stats = self.check_write(lake, write, "document")
        assert stats["answer"]["invalidations"] > 0
        # Plans depend on the relational store only: still valid.
        assert stats["plan"]["invalidations"] == 0

    def test_text_write_invalidates_answer_tier(self, lake):
        write = ServeRequest(op="add_text", payload={
            "doc_id": "t-note",
            "text": "The TestWidget launch was delayed to Q3.",
        })
        _got, stats = self.check_write(lake, write, "text")
        assert stats["answer"]["invalidations"] > 0


# ----------------------------------------------------------------------
# Property: scheduler determinism under permuted submission order
# ----------------------------------------------------------------------

class TestSchedulerPermutation:
    """Answers and batch composition are order-independent between
    write barriers: submission interleaving is scheduling detail, not
    semantics."""

    def permuted_segments(self, segments, seed):
        rng = random.Random(seed)
        workload = []
        for segment in segments:
            chunk = list(segment)
            rng.shuffle(chunk)
            workload.extend(chunk)
        return workload

    def test_permuted_interleavings_are_equivalent(self, lake,
                                                   questions):
        write = ServeRequest(op="sql", payload={"statement":
            "INSERT INTO sales VALUES (99003, 1, 'Q2', 2024, 10.0)"})
        segments = [
            [ask(questions[0]), ask(questions[1]), ask(questions[2]),
             ask(questions[0])],
            [write],
            [ask(questions[1]), ask(questions[3]), ask(questions[2])],
        ]
        baseline_by_question = None
        baseline_batches = None
        for seed in range(5):
            workload = self.permuted_segments(segments, seed)
            server = make_server(lake, CachePolicy(), batch_size=4)
            results = server.serve(workload)
            by_question = {}
            for result in results:
                if result.op != "ask":
                    continue
                question = workload[result.index].payload["question"]
                fp = fingerprints([result])[0]
                # Duplicate asks (dedup riders) must match the primary.
                assert by_question.setdefault(question, fp) == fp
            batches = server.stats()["scheduler"]["batch_sizes"]
            if baseline_by_question is None:
                baseline_by_question = by_question
                baseline_batches = batches
            else:
                assert by_question == baseline_by_question, (
                    "answers diverged under permutation seed %d" % seed)
                assert batches == baseline_batches, (
                    "batch composition diverged under permutation "
                    "seed %d" % seed)

    def test_per_request_work_is_recorded(self, lake, questions):
        server = make_server(lake, batch_size=4)
        results = server.serve([ask(q) for q in questions[:2]])
        assert all(r.work >= 0 for r in results)
        assert any(r.work > 0 for r in results)


# ----------------------------------------------------------------------
# Admission control: shedding is a typed abstention, never an exception
# ----------------------------------------------------------------------

class TestAdmission:
    def test_session_budget_sheds_after_spend(self, lake, questions):
        server = make_server(
            lake, admission=AdmissionPolicy(session_budget=1),
            batch_size=1,
        )
        results = server.serve([ask(questions[0]), ask(questions[0])])
        first, second = results
        assert not first.shed
        assert second.shed
        answer = second.answer
        assert answer.abstained
        assert answer.metadata["shed"] is True
        assert answer.metadata["degraded"] is True
        assert "degradation" in answer.metadata
        assert server.admission.spent("default") > 0

    def test_budget_is_per_session(self, lake, questions):
        server = make_server(
            lake, admission=AdmissionPolicy(session_budget=1),
            batch_size=1,
        )
        results = server.serve([
            ask(questions[0], session="alice"),
            ask(questions[0], session="alice"),
            ask(questions[0], session="bob"),
        ])
        assert [r.shed for r in results] == [False, True, False]

    def test_queue_depth_sheds_excess_arrivals(self, lake, questions):
        server = make_server(
            lake, admission=AdmissionPolicy(max_queue_depth=2),
            batch_size=8,
        )
        results = server.serve([ask(q) for q in questions])
        assert [r.shed for r in results] == [False, False, True, True]
        assert server.stats()["scheduler"]["shed"] == 2

    def test_write_barrier_resets_queue_depth(self, lake, questions):
        server = make_server(
            lake, admission=AdmissionPolicy(max_queue_depth=2),
            batch_size=8,
        )
        write = ServeRequest(op="add_doc", payload={
            "doc_id": "d1", "document": {"name": "X"}})
        results = server.serve([
            ask(questions[0]), ask(questions[1]), write,
            ask(questions[2]), ask(questions[3]),
        ])
        assert not any(r.shed for r in results)

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(session_budget=0)
        with pytest.raises(ValueError):
            AdmissionPolicy(max_queue_depth=-1)


# ----------------------------------------------------------------------
# Sustained overload: shedding stays typed, monotone, and isolated
# ----------------------------------------------------------------------

class TestSustainedOverload:
    def offered(self, questions, n, session="default"):
        return [ask(questions[i % len(questions)], session=session)
                for i in range(n)]

    def test_overload_never_raises_and_sheds_typed(self, lake,
                                                   questions):
        server = make_server(
            lake, admission=AdmissionPolicy(max_queue_depth=2),
            batch_size=16,
        )
        results = server.serve(self.offered(questions, 24))
        assert len(results) == 24
        for result in results:
            assert result.answer is not None
            if result.shed:
                assert result.answer.abstained
                assert result.answer.metadata["shed"] is True
                assert result.answer.metadata["degraded"] is True
                assert result.work == 0

    def test_shed_rate_monotone_in_offered_load(self, lake, questions):
        rates = []
        for offered_load in (2, 4, 8, 16, 32):
            server = make_server(
                lake, admission=AdmissionPolicy(max_queue_depth=4),
                batch_size=64,
            )
            results = server.serve(self.offered(questions, offered_load))
            shed = sum(1 for r in results if r.shed)
            rates.append(shed / offered_load)
        assert rates == sorted(rates), (
            "shed rate not monotone in offered load: %r" % (rates,))
        assert rates[0] == 0.0
        assert rates[-1] > 0.5

    def test_session_budget_isolates_greedy_from_quiet(self, lake,
                                                       questions):
        server = make_server(
            lake, admission=AdmissionPolicy(session_budget=200),
            batch_size=4,
        )
        workload = []
        for i in range(12):
            workload.append(ask(questions[i % len(questions)],
                                session="greedy"))
            if i % 4 == 0:
                workload.append(ask(questions[0], session="quiet"))
        results = server.serve(workload)
        greedy = [r for r in results if r.session == "greedy"]
        quiet = [r for r in results if r.session == "quiet"]
        assert any(r.shed for r in greedy), "greedy session never shed"
        assert not any(r.shed for r in quiet), (
            "quiet session shed by the greedy session's spend")


# ----------------------------------------------------------------------
# Chaos safety: faulted results are served but never cached
# ----------------------------------------------------------------------

class TestChaosSafety:
    def test_no_degraded_answer_is_cached(self, lake, questions):
        server = make_server(lake, chaos_rate=0.4)
        workload = repeated_questions(questions[:3], repeats=2)
        server.serve(workload)  # contract: never raises
        injector = server.pipeline.resilience.injector
        assert injector is not None and injector.log
        for _key, answer in server.cache.answers.lru.items():
            assert not answer.metadata.get("degraded")


# ----------------------------------------------------------------------
# Workload format and policy parsing
# ----------------------------------------------------------------------

class TestWorkloadParsing:
    def test_parses_ops_and_skips_comments(self):
        text = "\n".join([
            '{"op": "ask", "question": "Q1?"}',
            "# a comment",
            "",
            '{"op": "sql", "statement": "SELECT 1"}',
            '{"op": "add_doc", "doc_id": "d", "document": {"a": 1}}',
            '{"op": "add_text", "doc_id": "t", "text": "hello"}',
        ])
        requests = parse_workload(text)
        assert [r.op for r in requests] == [
            "ask", "sql", "add_doc", "add_text"]
        assert requests[0].payload["question"] == "Q1?"

    def test_bad_json_raises(self):
        with pytest.raises(ServingError):
            parse_workload("{not json}")

    def test_unknown_op_raises(self):
        with pytest.raises(ServingError):
            parse_workload('{"op": "drop_tables"}')

    def test_missing_field_raises(self):
        with pytest.raises(ServingError):
            parse_workload('{"op": "ask"}')

    def test_bad_json_error_names_line_and_content(self):
        text = "\n".join([
            '{"op": "ask", "question": "fine"}',
            '{"op": "ask", "question": "also fine"}',
            "{definitely not json}",
        ])
        with pytest.raises(ServingError) as excinfo:
            parse_workload(text)
        message = str(excinfo.value)
        assert "workload line 3" in message
        assert "(line: '{definitely not json}')" in message

    def test_bad_json_error_truncates_long_lines(self):
        line = '{"op": "ask", "question": ' + "x" * 300
        with pytest.raises(ServingError) as excinfo:
            parse_workload(line)
        message = str(excinfo.value)
        assert "workload line 1" in message
        assert "...'" in message
        # The embedded snippet is bounded, not the whole 300-char line.
        assert len(message) < 300

    def test_non_object_line_error_names_content(self):
        with pytest.raises(ServingError) as excinfo:
            parse_workload('["a", "list"]')
        assert "must be a JSON object" in str(excinfo.value)
        assert "(line: " in str(excinfo.value)

    def test_request_from_record_roundtrips_via_render(self):
        records = [
            {"op": "ask", "question": "Q1?", "session": "s01"},
            {"op": "sql", "statement": "SELECT 1"},
            {"op": "add_doc", "doc_id": "d", "document": {"a": 1}},
        ]
        requests = [request_from_record(dict(r)) for r in records]
        assert parse_workload(render_jsonl(requests)) == requests

    def test_repeated_questions_shape(self):
        requests = repeated_questions(["a", "b"], repeats=2)
        assert [r.payload["question"] for r in requests] == [
            "a", "b", "a", "b"]

    def test_normalize_question(self):
        assert normalize_question("  what \n is\tthis ") == "what is this"
        # Case is significant: the answer path hashes the exact string.
        assert normalize_question("What") != normalize_question("what")

    def test_cache_policy_from_string(self):
        assert CachePolicy.from_string("full").describe() == "full"
        assert CachePolicy.from_string("none").describe() == "none"
        partial = CachePolicy.from_string("plan,retrieval")
        assert (partial.plan, partial.retrieval) == (True, True)
        assert (partial.answer, partial.embedding) == (False, False)
        with pytest.raises(ValueError):
            CachePolicy.from_string("answer,bogus")


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------

class TestServeCli:
    def test_serve_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        workload = tmp_path / "workload.jsonl"
        workload.write_text("\n".join([
            '{"op": "ask", "question": "How many products are there?"}',
            '{"op": "ask", "question": "How many products are there?"}',
            '{"op": "sql", "statement": "SELECT COUNT(*) FROM products"}',
        ]), encoding="utf-8")
        code = main([
            "serve", "--workload", str(workload), "--seed", str(SEED),
            "--batch-size", "2", "--cache-policy", "full",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("[ask]") == 2
        assert "[sql]" in out
        assert "scheduler:" in out
        assert "cache.answer" in out

    def test_serve_rejects_unknown_policy(self, tmp_path):
        from repro.cli import main

        workload = tmp_path / "w.jsonl"
        workload.write_text('{"op": "ask", "question": "q"}',
                            encoding="utf-8")
        with pytest.raises(SystemExit):
            main(["serve", "--workload", str(workload),
                  "--cache-policy", "bogus"])
