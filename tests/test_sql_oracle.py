"""Differential testing: the SQL engine vs a naive Python oracle.

Hypothesis generates random tables and queries; the engine's results
must match a straightforward in-Python evaluation. This guards the
planner/executor against silent wrong-result bugs (index-scan pruning,
join order, NULL semantics, aggregate edge cases).
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.metering import CostMeter
from repro.storage.relational import Database

TEXT_VALUES = ["red", "blue", "green", None]

rows_strategy = st.lists(
    st.tuples(
        st.integers(min_value=-20, max_value=20),
        st.sampled_from(TEXT_VALUES),
        st.one_of(st.none(),
                  st.floats(min_value=-100, max_value=100,
                            allow_nan=False, width=32)),
    ),
    min_size=0, max_size=25,
)

comparison_strategy = st.tuples(
    st.sampled_from(["<", "<=", "=", ">=", ">", "!="]),
    st.integers(min_value=-15, max_value=15),
)


def make_db(rows):
    db = Database(meter=CostMeter())
    db.execute("CREATE TABLE t (a INT, b TEXT, c FLOAT)")
    for a, b, c in rows:
        db.table("t").insert((a, b, c))
    return db


def _cmp(op, x, y):
    if x is None or y is None:
        return False
    return {
        "<": x < y, "<=": x <= y, "=": x == y,
        ">=": x >= y, ">": x > y, "!=": x != y,
    }[op]


class TestFilterOracle:
    @given(rows=rows_strategy, comparison=comparison_strategy)
    @settings(max_examples=60, deadline=None)
    def test_where_on_int(self, rows, comparison):
        op, literal = comparison
        db = make_db(rows)
        got = db.execute(
            "SELECT a FROM t WHERE a %s %d ORDER BY a" % (op, literal)
        ).column("a")
        want = sorted(a for a, _, _ in rows if _cmp(op, a, literal))
        assert got == want

    @given(rows=rows_strategy,
           color=st.sampled_from(["red", "blue", "green"]))
    @settings(max_examples=40, deadline=None)
    def test_where_on_text_with_index(self, rows, color):
        db = make_db(rows)
        db.create_index("t", "b")
        got = sorted(db.execute(
            "SELECT a FROM t WHERE b = '%s'" % color
        ).column("a"))
        want = sorted(a for a, b, _ in rows if b == color)
        assert got == want

    @given(rows=rows_strategy, comparison=comparison_strategy)
    @settings(max_examples=40, deadline=None)
    def test_null_never_matches(self, rows, comparison):
        op, literal = comparison
        db = make_db(rows)
        got = db.execute(
            "SELECT b FROM t WHERE c %s %d" % (op, literal)
        )
        # No row with NULL c may pass a comparison predicate.
        kept = db.execute(
            "SELECT COUNT(*) FROM t WHERE c %s %d AND c IS NULL"
            % (op, literal)
        ).scalar()
        assert kept == 0


class TestAggregateOracle:
    @given(rows=rows_strategy)
    @settings(max_examples=60, deadline=None)
    def test_global_aggregates(self, rows):
        db = make_db(rows)
        rs = db.execute(
            "SELECT COUNT(*) AS n, SUM(a) AS s, MIN(a) AS lo, "
            "MAX(a) AS hi, AVG(a) AS mean FROM t"
        )
        record = rs.to_dicts()[0]
        ints = [a for a, _, _ in rows]
        assert record["n"] == len(rows)
        if ints:
            assert record["s"] == pytest.approx(sum(ints))
            assert record["lo"] == min(ints)
            assert record["hi"] == max(ints)
            assert record["mean"] == pytest.approx(
                sum(ints) / len(ints)
            )
        else:
            assert record["s"] is None and record["mean"] is None

    @given(rows=rows_strategy)
    @settings(max_examples=60, deadline=None)
    def test_group_by_counts(self, rows):
        db = make_db(rows)
        rs = db.execute(
            "SELECT b, COUNT(*) AS n FROM t GROUP BY b"
        )
        got = {row[0]: row[1] for row in rs.rows}
        want = {}
        for _, b, _ in rows:
            want[b] = want.get(b, 0) + 1
        assert got == want

    @given(rows=rows_strategy)
    @settings(max_examples=40, deadline=None)
    def test_sum_skips_nulls(self, rows):
        db = make_db(rows)
        got = db.execute("SELECT SUM(c) FROM t").scalar()
        values = [c for _, _, c in rows if c is not None]
        if values:
            assert got == pytest.approx(sum(values), rel=1e-5)
        else:
            assert got is None

    @given(rows=rows_strategy)
    @settings(max_examples=40, deadline=None)
    def test_count_distinct(self, rows):
        db = make_db(rows)
        got = db.execute("SELECT COUNT(DISTINCT b) FROM t").scalar()
        assert got == len({b for _, b, _ in rows if b is not None})


class TestOrderLimitOracle:
    @given(rows=rows_strategy,
           limit=st.integers(min_value=1, max_value=10),
           offset=st.integers(min_value=0, max_value=5))
    @settings(max_examples=60, deadline=None)
    def test_order_limit_offset(self, rows, limit, offset):
        db = make_db(rows)
        got = db.execute(
            "SELECT a FROM t ORDER BY a LIMIT %d OFFSET %d"
            % (limit, offset)
        ).column("a")
        want = sorted(a for a, _, _ in rows)[offset:offset + limit]
        assert got == want

    @given(rows=rows_strategy)
    @settings(max_examples=40, deadline=None)
    def test_order_desc_reverses(self, rows):
        db = make_db(rows)
        asc = db.execute("SELECT a FROM t ORDER BY a").column("a")
        desc = db.execute("SELECT a FROM t ORDER BY a DESC").column("a")
        assert desc == list(reversed(asc))

    @given(rows=rows_strategy)
    @settings(max_examples=40, deadline=None)
    def test_distinct_matches_set(self, rows):
        db = make_db(rows)
        got = db.execute("SELECT DISTINCT a FROM t").column("a")
        assert sorted(got) == sorted({a for a, _, _ in rows})


class TestJoinOracle:
    @given(left=rows_strategy, right=rows_strategy)
    @settings(max_examples=40, deadline=None)
    def test_inner_equi_join(self, left, right):
        db = Database(meter=CostMeter())
        db.execute("CREATE TABLE l (a INT, b TEXT, c FLOAT)")
        db.execute("CREATE TABLE r (a INT, b TEXT, c FLOAT)")
        for row in left:
            db.table("l").insert(row)
        for row in right:
            db.table("r").insert(row)
        rs = db.execute(
            "SELECT l.a, r.a FROM l JOIN r ON l.a = r.a"
        )
        got = sorted(rs.rows)
        want = sorted(
            (la, ra)
            for la, _, _ in left for ra, _, _ in right if la == ra
        )
        assert got == want

    @given(left=rows_strategy, right=rows_strategy)
    @settings(max_examples=30, deadline=None)
    def test_left_join_preserves_left_rows(self, left, right):
        db = Database(meter=CostMeter())
        db.execute("CREATE TABLE l (a INT, b TEXT, c FLOAT)")
        db.execute("CREATE TABLE r (a INT, b TEXT, c FLOAT)")
        for row in left:
            db.table("l").insert(row)
        for row in right:
            db.table("r").insert(row)
        rs = db.execute(
            "SELECT l.a, r.a FROM l LEFT JOIN r ON l.a = r.a"
        )
        right_keys = {ra for ra, _, _ in right}
        # Every left row appears: matched rows fan out, unmatched rows
        # appear exactly once with NULL.
        expected = 0
        for la, _, _ in left:
            matches = sum(1 for ra, _, _ in right if ra == la)
            expected += matches if matches else 1
        assert len(rs.rows) == expected
        for la, ra in rs.rows:
            if ra is None:
                assert la not in right_keys
            else:
                assert la == ra


class TestUpdateDeleteOracle:
    @given(rows=rows_strategy, comparison=comparison_strategy,
           new_value=st.integers(min_value=-30, max_value=30))
    @settings(max_examples=40, deadline=None)
    def test_update_matches_oracle(self, rows, comparison, new_value):
        op, literal = comparison
        db = make_db(rows)
        db.execute(
            "UPDATE t SET a = %d WHERE a %s %d" % (new_value, op, literal)
        )
        got = sorted(db.execute("SELECT a FROM t").column("a"))
        want = sorted(
            new_value if _cmp(op, a, literal) else a for a, _, _ in rows
        )
        assert got == want

    @given(rows=rows_strategy, comparison=comparison_strategy)
    @settings(max_examples=40, deadline=None)
    def test_delete_matches_oracle(self, rows, comparison):
        op, literal = comparison
        db = make_db(rows)
        db.execute("DELETE FROM t WHERE a %s %d" % (op, literal))
        got = sorted(db.execute("SELECT a FROM t").column("a"))
        want = sorted(a for a, _, _ in rows if not _cmp(op, a, literal))
        assert got == want
