"""RAG text QA: retrieve chunks, generate a grounded answer.

With a topology retriever this is the paper's lightweight RAG path;
with a dense retriever it doubles as the conventional-RAG baseline of
E2/E6. Either way the answer carries chunk-level provenance.
"""

from __future__ import annotations

from typing import List, Optional

from ..obs import span
from ..retrieval.base import RetrievedChunk, Retriever
from ..slm.model import SmallLanguageModel
from ..tenancy import TenantContext
from .answer import ANSWER_SYSTEM_RAG, Answer


class TextQAEngine:
    """Retrieval-augmented QA over a chunked corpus.

    With ``verify_grounding`` enabled, each generated answer is checked
    against its cited chunk via the SLM's entailment judge: answers the
    evidence does not entail are down-weighted and flagged — a cheap
    hallucination detector that catches the "plausible but ungrounded"
    generations the paper warns about.
    """

    def __init__(self, retriever: Retriever, slm: SmallLanguageModel,
                 k: int = 4, temperature: float = 0.4,
                 system_name: str = ANSWER_SYSTEM_RAG,
                 verify_grounding: bool = True):
        if k < 1:
            raise ValueError("k must be >= 1")
        self._retriever = retriever
        self._slm = slm
        self._k = k
        self._temperature = temperature
        self._system = system_name
        self._verify = verify_grounding

    def retrieve(self, question: str,
                 tenant: Optional[TenantContext] = None
                 ) -> List[RetrievedChunk]:
        """The retrieval half, exposed for inspection and benches.

        With a *tenant* context the hit list is filtered to the
        tenant's visible document scopes **after** retrieval, so an
        out-of-scope document can never reach generation, provenance
        or the entailment verifier.
        """
        hits = self._retriever.retrieve(question, self._k)
        if tenant is None or not tenant.doc_scopes:
            return hits
        return [h for h in hits if tenant.doc_visible(h.chunk.doc_id)]

    def answer(self, question: str,
               tenant: Optional[TenantContext] = None) -> Answer:
        """Retrieve context and generate one (verified) answer."""
        with span("qa.textqa") as sp:
            hits = self.retrieve(question, tenant=tenant)
            contexts = [hit.chunk.text for hit in hits]
            generation = self._slm.generate(
                question, contexts, temperature=self._temperature
            )
            provenance = tuple(
                hits[i].chunk_id for i in generation.support
                if 0 <= i < len(hits)
            )
            answer = Answer(
                text=generation.text,
                value=_extract_scalar(generation.text),
                confidence=generation.confidence,
                grounded=generation.grounded,
                system=self._system,
                provenance=provenance,
                metadata={"n_context": len(contexts)},
            )
            if self._verify:
                self._verify_against_evidence(answer, generation, hits)
            sp.set("n_context", len(contexts))
            sp.set("grounded", answer.grounded)
            return answer

    def _verify_against_evidence(self, answer: Answer, generation,
                                 hits: List[RetrievedChunk]) -> None:
        if not generation.support:
            # Nothing cited: fabricated by construction.
            answer.metadata["verified"] = False
            answer.confidence *= 0.5
            return
        evidence = " ".join(
            hits[i].chunk.text for i in generation.support
            if 0 <= i < len(hits)
        )
        verified = self._slm.entails(evidence, generation.text)
        answer.metadata["verified"] = verified
        if not verified:
            answer.confidence *= 0.6
            answer.grounded = False


def _extract_scalar(text: str):
    """Pull the first numeric value out of a verbalized answer.

    Scale-aware: "$1.2 million" parses to 1200000.0 (see
    :func:`repro.text.patterns.extract_first_scalar`).
    """
    from ..text.patterns import extract_first_scalar

    return extract_first_scalar(text)
