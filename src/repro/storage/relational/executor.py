"""Physical execution of logical plans (iterator model).

Rows flow between operators as dicts keyed by *qualified* column names
("alias.column"); unqualified lookups resolve through the suffix
fallback in :class:`~.expressions.ColumnRef`. The executor charges
``rows_scanned`` via the tables it reads, so benchmark cost accounting
reflects real work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ...errors import ExecutionError, PlanError
from ...obs import span
from ..types import sort_key
from .expressions import (
    BinaryOp, ColumnRef, Expression, FunctionCall, Literal,
    predicate_matches,
)
from .planner import (
    AggregateNode, DistinctNode, FilterNode, HashJoinNode, IndexScanNode,
    LimitNode, NestedLoopJoinNode, PlanNode, ProjectNode, ScanNode, SortNode,
)
from .sql_parser import AggregateCall
from .table import Table


@dataclass
class ResultSet:
    """Materialized query result: ordered column names plus row tuples."""

    columns: List[str]
    rows: List[Tuple[Any, ...]]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def to_dicts(self) -> List[Dict[str, Any]]:
        """Rows as column→value dicts."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def column(self, name: str) -> List[Any]:
        """All values of one output column."""
        try:
            pos = self.columns.index(name)
        except ValueError:
            raise ExecutionError(
                "no output column %r (has: %s)"
                % (name, ", ".join(self.columns))
            ) from None
        return [row[pos] for row in self.rows]

    def scalar(self) -> Any:
        """The single value of a 1x1 result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise ExecutionError(
                "scalar() needs a 1x1 result, got %dx%d"
                % (len(self.rows), len(self.columns))
            )
        return self.rows[0][0]

    def pretty(self, max_rows: int = 20) -> str:
        """Fixed-width text rendering (for examples and reports)."""
        headers = [str(c) for c in self.columns]
        shown = self.rows[:max_rows]
        cells = [[_fmt(v) for v in row] for row in shown]
        widths = [
            max([len(h)] + [len(row[i]) for row in cells])
            for i, h in enumerate(headers)
        ]
        sep = "-+-".join("-" * w for w in widths)
        lines = [
            " | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep
        ]
        for row in cells:
            lines.append(
                " | ".join(c.ljust(w) for c, w in zip(row, widths))
            )
        if len(self.rows) > max_rows:
            lines.append("... (%d more rows)" % (len(self.rows) - max_rows))
        return "\n".join(lines)


def _fmt(value: Any) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, float):
        return "%.4g" % value
    return str(value)


class _Aggregator:
    """Incremental state for one AggregateCall."""

    def __init__(self, call: AggregateCall):
        self._call = call
        self._count = 0
        self._sum = 0.0
        self._min: Any = None
        self._max: Any = None
        self._distinct: set = set()
        self._any_numeric = False

    def update(self, row: Dict[str, Any]) -> None:
        call = self._call
        if call.arg is None:  # COUNT(*)
            self._count += 1
            return
        value = call.arg.evaluate(row)
        if value is None:
            return
        if call.distinct:
            self._distinct.add(value)
            return
        self._count += 1
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            self._sum += value
            self._any_numeric = True
        if self._min is None or sort_key(value) < sort_key(self._min):
            self._min = value
        if self._max is None or sort_key(value) > sort_key(self._max):
            self._max = value

    def result(self) -> Any:
        func = self._call.func
        if self._call.distinct:
            if func == "count":
                return len(self._distinct)
            values = sorted(self._distinct, key=sort_key)
            if not values:
                return None
            if func == "sum":
                return sum(values)
            if func == "avg":
                return sum(values) / len(values)
            if func == "min":
                return values[0]
            if func == "max":
                return values[-1]
            raise PlanError("unknown aggregate %r" % func)
        if func == "count":
            return self._count
        if self._count == 0:
            return None
        if func == "sum":
            if not self._any_numeric:
                raise ExecutionError("SUM over non-numeric values")
            return self._sum
        if func == "avg":
            if not self._any_numeric:
                raise ExecutionError("AVG over non-numeric values")
            return self._sum / self._count
        if func == "min":
            return self._min
        if func == "max":
            return self._max
        raise PlanError("unknown aggregate %r" % func)


class Executor:
    """Execute plan trees against a catalog of named tables."""

    def __init__(self, tables: Dict[str, Table]):
        self._tables = tables

    # ------------------------------------------------------------------
    def _table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise ExecutionError("unknown table %r" % name) from None

    @staticmethod
    def _row_dict(alias: str, schema_cols: List[str],
                  row: Tuple[Any, ...]) -> Dict[str, Any]:
        return {
            "%s.%s" % (alias, col): value
            for col, value in zip(schema_cols, row)
        }

    def _iter(self, node: PlanNode) -> Iterator[Dict[str, Any]]:
        if isinstance(node, ScanNode):
            table = self._table(node.table)
            cols = table.schema.column_names()
            for _, row in table.scan():
                yield self._row_dict(node.alias, cols, row)
        elif isinstance(node, IndexScanNode):
            table = self._table(node.table)
            cols = table.schema.column_names()
            for row in table.lookup(node.column, node.value):
                yield self._row_dict(node.alias, cols, row)
        elif isinstance(node, FilterNode):
            if isinstance(node.child, ScanNode):
                yield from self._filtered_scan(node)
            else:
                for row in self._iter(node.child):
                    if predicate_matches(node.predicate, row):
                        yield row
        elif isinstance(node, NestedLoopJoinNode):
            yield from self._nested_loop(node)
        elif isinstance(node, HashJoinNode):
            yield from self._hash_join(node)
        else:
            raise PlanError("cannot iterate node %r" % node.label())

    def _filtered_scan(self, node: FilterNode):
        """Filter fused into its base scan, pushing the predicate down.

        Semantically identical to scan-then-filter — same rows, order
        and ``rows_scanned`` charges — but the table sees the filter's
        equality conjuncts, so a partitioned table can prune to the
        shard owning a bound entity key.
        """
        child = node.child
        table = self._table(child.table)
        cols = table.schema.column_names()
        alias = child.alias

        def test(raw: Tuple[Any, ...]) -> bool:
            return bool(predicate_matches(
                node.predicate, self._row_dict(alias, cols, raw)
            ))

        equals = _equality_conjuncts(node.predicate, alias, cols)
        for _, raw in table.scan_matching(test, equals=equals):
            yield self._row_dict(alias, cols, raw)

    def _nested_loop(self, node: NestedLoopJoinNode):
        right_rows = list(self._iter(node.right))
        for left_row in self._iter(node.left):
            matched = False
            for right_row in right_rows:
                combined = {**left_row, **right_row}
                if predicate_matches(node.condition, combined):
                    matched = True
                    yield combined
            if node.kind == "left" and not matched:
                if right_rows:
                    nulls = {k: None for k in right_rows[0]}
                else:
                    nulls = {}
                yield {**left_row, **nulls}

    def _hash_join(self, node: HashJoinNode):
        build: Dict[Any, List[Dict[str, Any]]] = {}
        right_rows = list(self._iter(node.right))
        right_keys: List[str] = list(right_rows[0].keys()) if right_rows else []
        for right_row in right_rows:
            key = node.right_key.evaluate(right_row)
            if key is None:
                continue
            build.setdefault(key, []).append(right_row)
        for left_row in self._iter(node.left):
            key = node.left_key.evaluate(left_row)
            matches = build.get(key, []) if key is not None else []
            matched = False
            for right_row in matches:
                combined = {**left_row, **right_row}
                if node.residual is not None and not predicate_matches(
                    node.residual, combined
                ):
                    continue
                matched = True
                yield combined
            if node.kind == "left" and not matched:
                yield {**left_row, **{k: None for k in right_keys}}

    # ------------------------------------------------------------------
    def execute(self, node: PlanNode) -> ResultSet:
        """Run the plan to a materialized :class:`ResultSet`.

        Each recursive step opens an ``sql.exec`` span, so a traced
        query yields a span tree mirroring the plan's operator tree.
        """
        with span("sql.exec", node=type(node).__name__) as sp:
            result = self._execute_node(node)
            sp.set("rows", len(result.rows))
        return result

    def _execute_node(self, node: PlanNode) -> ResultSet:
        if isinstance(node, LimitNode):
            inner = self.execute(node.child)
            start = node.offset
            end = None if node.limit is None else start + node.limit
            return ResultSet(inner.columns, inner.rows[start:end])
        if isinstance(node, SortNode):
            child = node.child
            if isinstance(child, ProjectNode) and not child.star:
                return self._sort_then_project(node, child)
            result = self.execute(child)
            return self._sort(node, result)
        if isinstance(node, DistinctNode):
            inner = self.execute(node.child)
            seen = set()
            rows = []
            for row in inner.rows:
                key = tuple(sort_key(v) for v in row)
                if key not in seen:
                    seen.add(key)
                    rows.append(row)
            return ResultSet(inner.columns, rows)
        if isinstance(node, ProjectNode):
            return self._project(node)
        if isinstance(node, AggregateNode):
            return self._aggregate(node)
        # Bare relational node: expose qualified columns as-is.
        rows_out: List[Tuple[Any, ...]] = []
        columns: List[str] = []
        for row in self._iter(node):
            if not columns:
                columns = list(row.keys())
            rows_out.append(tuple(row.get(c) for c in columns))
        return ResultSet(columns, rows_out)

    def _sort_then_project(self, sort_node: SortNode,
                           project: ProjectNode) -> ResultSet:
        """Sort with access to pre-projection columns, then project.

        Lets ORDER BY reference base-table columns that are not in the
        select list (e.g. ``SELECT name ... ORDER BY price``).
        """
        columns = [item.output_name() for item in project.items]
        pairs = []  # (context, output_tuple)
        for row in self._iter(project.child):
            out = tuple(item.expr.evaluate(row) for item in project.items)
            ctx = dict(row)
            ctx.update(zip(columns, out))
            pairs.append((ctx, out))
        for item in reversed(sort_node.order_by):
            def key(pair, _item=item):
                return sort_key(_item.expr.evaluate(pair[0]))
            pairs.sort(key=key, reverse=item.descending)
        return ResultSet(columns, [out for _, out in pairs])

    def _project(self, node: ProjectNode) -> ResultSet:
        rows_out: List[Tuple[Any, ...]] = []
        columns: List[str] = []
        if node.star:
            for row in self._iter(node.child):
                if not columns:
                    columns = [k.split(".", 1)[-1] for k in row]
                    if len(set(columns)) != len(columns):
                        columns = list(row.keys())
                    full_keys = list(row.keys())
                rows_out.append(tuple(row[k] for k in full_keys))
            return ResultSet(columns or [], rows_out)
        columns = [item.output_name() for item in node.items]
        for row in self._iter(node.child):
            rows_out.append(
                tuple(item.expr.evaluate(row) for item in node.items)
            )
        return ResultSet(columns, rows_out)

    def _aggregate(self, node: AggregateNode) -> ResultSet:
        groups: Dict[tuple, Dict[str, Any]] = {}
        aggs: Dict[tuple, List[_Aggregator]] = {}
        agg_items = [
            (i, item) for i, item in enumerate(node.items) if item.is_aggregate
        ]
        saw_rows = False
        for row in self._iter(node.child):
            saw_rows = True
            key = tuple(
                sort_key(c.evaluate(row)) for c in node.group_by
            )
            if key not in groups:
                groups[key] = row
                aggs[key] = [_Aggregator(item.expr) for _, item in agg_items]
            for agg, (_, item) in zip(aggs[key], agg_items):
                agg.update(row)
        if not node.group_by and not saw_rows:
            # Global aggregate over empty input still yields one row.
            groups[()] = {}
            aggs[()] = [_Aggregator(item.expr) for _, item in agg_items]

        columns = [item.output_name() for item in node.items]
        rows_out: List[Tuple[Any, ...]] = []
        for key in groups:
            sample = groups[key]
            agg_values = [a.result() for a in aggs[key]]
            agg_iter = iter(agg_values)
            out_row = []
            extended = dict(sample)
            for item in node.items:
                if item.is_aggregate:
                    value = next(agg_iter)
                else:
                    value = item.expr.evaluate(sample) if sample else None
                out_row.append(value)
                extended[item.output_name()] = value
            if node.having is not None:
                if not self._having_matches(node.having, extended, sample,
                                            aggs[key], agg_items):
                    continue
            rows_out.append(tuple(out_row))
        rows_out.sort(key=lambda r: tuple(sort_key(v) for v in r))
        return ResultSet(columns, rows_out)

    def _having_matches(self, having: Expression, extended: Dict[str, Any],
                        sample: Dict[str, Any], aggregators, agg_items) -> bool:
        # HAVING may reference aggregates directly (e.g. COUNT(*) > 2).
        # Rewrite: evaluate by substituting aggregate results by sql text.
        class _HavingContext(dict):
            def __init__(self, base):
                super().__init__(base)

        ctx = _HavingContext(extended)
        # Map each aggregate's canonical sql to its computed value.
        for agg, (_, item) in zip(aggregators, agg_items):
            ctx[item.expr.sql().lower().replace(" ", "")] = agg.result()

        rewritten = _rewrite_having(having, ctx)
        return predicate_matches(rewritten, ctx)


def _conjuncts(expr: Expression, out: List[Expression]) -> None:
    if isinstance(expr, BinaryOp) and expr.op.upper() == "AND":
        _conjuncts(expr.left, out)
        _conjuncts(expr.right, out)
    else:
        out.append(expr)


def _equality_conjuncts(
    predicate: Expression, alias: str, cols: List[str],
) -> Optional[List[Tuple[str, Any]]]:
    """(column, value) pairs every row matching *predicate* satisfies.

    Recognizes top-level AND conjuncts of the shapes ``col = literal``
    and ``LOWER(col) = literal`` (the shape synthesized SQL emits for
    entity matches; shard routing canonicalizes strings to lowercase,
    so the lowered literal routes with the raw stored value). Anything
    else contributes no hint.
    """
    parts: List[Expression] = []
    _conjuncts(predicate, parts)
    hints: List[Tuple[str, Any]] = []
    for part in parts:
        if not (isinstance(part, BinaryOp) and part.op == "="):
            continue
        for lhs, rhs in ((part.left, part.right), (part.right, part.left)):
            if not isinstance(rhs, Literal):
                continue
            column = _hinted_column(lhs, alias, cols)
            if column is not None:
                hints.append((column, rhs.value))
                break
    return hints or None


def _hinted_column(expr: Expression, alias: str,
                   cols: List[str]) -> Optional[str]:
    if (isinstance(expr, FunctionCall) and expr.name.lower() == "lower"
            and len(expr.args) == 1):
        expr = expr.args[0]
    if not isinstance(expr, ColumnRef):
        return None
    if expr.table and expr.table.lower() != alias.lower():
        return None
    name = expr.name.lower()
    return name if name in cols else None


def _rewrite_having(expr: Expression, ctx: Dict[str, Any]) -> Expression:
    """Replace AggregateCall leaves with column refs into *ctx*."""
    from .expressions import BinaryOp, UnaryOp
    from .sql_parser import AggregateCall as _AC

    if isinstance(expr, _AC):
        return ColumnRef(expr.sql().lower().replace(" ", ""))
    if isinstance(expr, BinaryOp):
        return BinaryOp(
            expr.op, _rewrite_having(expr.left, ctx),
            _rewrite_having(expr.right, ctx),
        )
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, _rewrite_having(expr.operand, ctx))
    return expr


def _sort_result(result: ResultSet, order_by) -> ResultSet:
    """Multi-key stable sort of a materialized result.

    Applies one stable pass per key, last key first, reversing for
    DESC — this avoids negating non-numeric sort keys.
    """
    rows = list(result.rows)
    for item in reversed(order_by):
        def key(row, _item=item):
            ctx = dict(zip(result.columns, row))
            return sort_key(_item.expr.evaluate(ctx))
        rows.sort(key=key, reverse=item.descending)
    return ResultSet(result.columns, rows)


def _executor_sort(self, node: SortNode, result: ResultSet) -> ResultSet:
    # ORDER BY references output column names of the materialized child.
    return _sort_result(result, node.order_by)


Executor._sort = _executor_sort
