"""Comparative Multi-Entity QA (paper Sections I, III.C).

The paper's flagship example is a *comparison* spanning entities and
modalities: "Compare the efficacy of Drug A (from clinical trial
tables) with patient-reported side effects (from unstructured
forums)". This module implements the decomposition strategy:

1. detect a comparison question and its entity mentions;
2. rewrite it into one sub-question per entity (drop the other
   entity's span, normalize the interrogative);
3. answer each sub-question through the full hybrid pipeline;
4. compose a verdict (who is higher/lower, by how much) with combined
   provenance.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..slm.model import SmallLanguageModel
from ..text.ner import Entity
from .answer import ANSWER_SYSTEM_HYBRID, Answer

_COMPARE_CUES = ("compare", " versus ", " vs ", " vs. ", "or the")
_MEASURE_KINDS = {"PERCENT", "MONEY", "DATE", "QUARTER", "NUMBER", "ID",
                  "YEAR", "METRIC"}

_LEAD_RE = re.compile(r"^\s*compare\s+", re.IGNORECASE)


@dataclass
class ComparisonFrame:
    """A detected comparison: the entity spans being compared."""

    question: str
    entities: List[Entity]

    @property
    def entity_names(self) -> List[str]:
        """Normalized names of the compared entities."""
        return [e.norm for e in self.entities]


def detect_comparison(question: str,
                      slm: SmallLanguageModel) -> Optional[ComparisonFrame]:
    """Return a :class:`ComparisonFrame` when *question* compares
    two or more named entities, else None."""
    low = question.lower()
    if not any(cue in low for cue in _COMPARE_CUES):
        return None
    entities = [
        e for e in slm.tag_entities(question)
        if e.etype not in _MEASURE_KINDS
    ]
    # Deduplicate by normalized name, keep first mention order.
    seen = []
    unique: List[Entity] = []
    for entity in entities:
        if entity.norm not in seen:
            seen.append(entity.norm)
            unique.append(entity)
    if len(unique) < 2:
        return None
    return ComparisonFrame(question, unique[:2])


def _strip_entity(question: str, entity: Entity) -> str:
    """Remove one entity span plus its joining conjunction/article."""
    start, end = entity.start, entity.end
    prefix = question[:start]
    # Swallow a preceding "and the" / "and" / "or" / "with the".
    prefix = re.sub(
        r"(?:\s+(?:and|or|with|versus|vs\.?)(?:\s+the)?\s*)$", " ",
        prefix, flags=re.IGNORECASE,
    )
    suffix = question[end:]
    suffix = re.sub(
        r"^(?:\s*(?:and|or|versus|vs\.?)(?:\s+the)?\s+)", " ",
        suffix, flags=re.IGNORECASE,
    )
    text = (prefix + suffix).strip()
    return re.sub(r"\s{2,}", " ", text)


def decompose(frame: ComparisonFrame) -> List[Tuple[str, str]]:
    """(entity_norm, sub_question) pairs, one per compared entity.

    >>> # "Compare the sales of A and B in Q2" →
    >>> #   ("a", "What is the sales of A in Q2"), ("b", ...)
    """
    out = []
    for keep in frame.entities:
        text = frame.question
        for other in frame.entities:
            if other.norm == keep.norm:
                continue
            # Recompute the span in the current text (offsets shift as
            # earlier removals happen; search by surface form).
            position = text.find(other.text)
            if position < 0:
                continue
            shifted = Entity(other.etype, other.text, position,
                             position + len(other.text), other.norm)
            text = _strip_entity(text, shifted)
        text = _LEAD_RE.sub("What is ", text).strip()
        if not text.endswith("?"):
            text = text.rstrip(".") + "?"
        out.append((keep.norm, text))
    return out


class ComparativeQA:
    """Answer comparison questions by per-entity decomposition."""

    def __init__(self, slm: SmallLanguageModel,
                 answer_fn: Callable[[str], Answer]):
        self._slm = slm
        self._answer_fn = answer_fn

    def try_answer(self, question: str) -> Optional[Answer]:
        """Comparison answer, or None when not a comparison question."""
        frame = detect_comparison(question, self._slm)
        if frame is None:
            return None
        sub_answers: List[Tuple[str, Answer]] = []
        for entity_norm, sub_question in decompose(frame):
            sub_answers.append((entity_norm, self._answer_fn(sub_question)))
        return self._compose(question, sub_answers)

    @staticmethod
    def _numeric(answer: Answer) -> Optional[float]:
        from ..text.patterns import extract_first_scalar

        value = answer.value
        if isinstance(value, (list, tuple)) and len(value) == 1:
            value = value[0]
        if isinstance(value, bool):
            return None
        if isinstance(value, (int, float)):
            return float(value)
        return extract_first_scalar(answer.text or "")

    def _compose(self, question: str,
                 sub_answers: Sequence[Tuple[str, Answer]]) -> Answer:
        live = [
            (name, ans) for name, ans in sub_answers if not ans.abstained
        ]
        if len(live) < 2:
            return Answer.abstain(
                ANSWER_SYSTEM_HYBRID,
                "comparison sub-questions unanswerable",
            )
        values = [(name, ans, self._numeric(ans)) for name, ans in live]
        provenance = tuple(
            p for _, ans, _ in values for p in ans.provenance
        )
        grounded = all(ans.grounded for _, ans, _ in values)
        confidence = min(ans.confidence for _, ans, _ in values)
        if all(v is not None for _, _, v in values):
            (name_a, _, val_a), (name_b, _, val_b) = values[:2]
            if val_a == val_b:
                verdict = "both equal at %s" % _fmt(val_a)
                winner = None
            else:
                winner = name_a if val_a > val_b else name_b
                verdict = "%s is higher" % winner
            text = "%s: %s; %s: %s — %s." % (
                name_a, _fmt(val_a), name_b, _fmt(val_b), verdict,
            )
            metadata = {
                "comparison": {name_a: val_a, name_b: val_b},
                "winner": winner,
            }
        else:
            text = "; ".join(
                "%s: %s" % (name, ans.text) for name, ans, _ in values
            )
            metadata = {"comparison": None, "winner": None}
        return Answer(
            text=text,
            value={name: v for name, _, v in values},
            confidence=confidence,
            grounded=grounded,
            system=ANSWER_SYSTEM_HYBRID,
            provenance=provenance,
            metadata=metadata,
        )


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "?"
    if float(value).is_integer():
        return str(int(value))
    return "%.4g" % value
