"""Uncertainty gating with semantic entropy (paper Section III.D).

Samples multiple answers per question, clusters them by bidirectional
entailment, and uses the cluster entropy to decide which answers to
serve and which to flag for human review — the deployment pattern the
paper describes for high-risk domains.

Run:  python examples/uncertainty_gate.py
"""

from repro.bench import LakeSpec, generate_ecommerce_lake
from repro.entropy import SemanticEntropyEstimator, predictive_entropy
from repro.slm import SLMConfig, SmallLanguageModel
from repro.text.ner import Gazetteer

N_SAMPLES = 8
TEMPERATURE = 0.9
GATE = 0.6  # normalized-entropy threshold for human review


def main():
    lake = generate_ecommerce_lake(LakeSpec(n_products=8, seed=23))
    texts = dict(lake.review_texts)
    fillers = [texts[d] for d in texts if d.startswith("filler")]
    gazetteer = Gazetteer()
    gazetteer.add("VALUE", lake.product_names())
    slm = SmallLanguageModel(SLMConfig(seed=0), gazetteer=gazetteer)
    estimator = SemanticEntropyEstimator(judge=slm.judge)

    facts = [f for f in lake.satisfaction_facts if not f.noisy][:6]
    print("%-4s %-9s %-9s %-8s %s" % (
        "case", "sem.ent.", "pred.ent.", "action", "majority answer"))
    print("-" * 78)
    for i, fact in enumerate(facts):
        question = ("How much did satisfaction with the %s change in "
                    "%s %d?" % (fact.product, fact.quarter, fact.year))
        # Even cases see the gold evidence; odd cases get only filler —
        # the unanswerable regime that must be flagged.
        if i % 2 == 0:
            contexts = [texts[fact.doc_id]] + fillers[:2]
        else:
            contexts = fillers[:3]
        samples = slm.sample_answers(
            question, contexts, n_samples=N_SAMPLES,
            temperature=TEMPERATURE, seed=100 + i,
        )
        estimate = estimator.estimate(samples)
        action = ("REVIEW" if estimate.normalized > GATE else "serve")
        print("%-4d %-9.3f %-9.2f %-8s %s" % (
            i, estimate.normalized, predictive_entropy(samples),
            action, estimate.majority_answer[:44]))
        if action == "REVIEW":
            reps = sorted(
                {c.representative[:34] for c in estimate.clusters}
            )[:3]
            print("     divergent clusters: %s" % " | ".join(reps))
    print("-" * 78)
    print("gate: normalized semantic entropy > %.1f → human review" % GATE)


if __name__ == "__main__":
    main()
