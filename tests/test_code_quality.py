"""Source-hygiene checks, driven by the in-repo lint engine.

The rules themselves (unused imports, debug prints, docstrings,
determinism, exception hygiene, layering, import cycles, mutable
defaults) have exactly one implementation: :mod:`repro.lint`. This
suite runs that engine over ``src/repro`` and fails per-rule with the
offending findings, so CI output stays as pointed as the old ad-hoc
AST tests were.
"""

import pathlib

import pytest

from repro.lint import LintEngine, all_rules, rule_ids

SRC = pathlib.Path(__file__).parent.parent / "src" / "repro"

_FINDINGS = LintEngine().lint_tree(SRC)


@pytest.mark.parametrize("rule_id", rule_ids())
def test_rule_is_clean(rule_id):
    offenders = [f for f in _FINDINGS if f.rule == rule_id]
    assert not offenders, "\n".join(f.render() for f in offenders)


def test_no_parse_errors():
    # lint_tree turns SyntaxError into synthetic "parse-error" findings
    # outside any registered rule; they must never appear.
    broken = [f for f in _FINDINGS if f.rule not in set(rule_ids())]
    assert not broken, "\n".join(f.render() for f in broken)


def test_every_rule_documented():
    for rule in all_rules():
        assert rule.id and rule.summary, rule
        assert rule.__doc__, "rule %s lacks a docstring" % rule.id
