"""Microbenchmarks of the relational engine's hot paths.

Not tied to a paper claim — these are the regression guards a database
repo keeps around its executor: point lookup via index vs scan, hash
join vs nested loop, predicate pushdown on vs off (simulated by a
cross-table predicate), and write throughput.
"""

from __future__ import annotations

import pytest

from repro.metering import CostMeter, ROWS_SCANNED
from repro.bench import render_table
from repro.storage.relational import Database

from _common import emit

N_ROWS = 2000
RESULTS = []


@pytest.fixture(scope="module")
def db():
    database = Database(meter=CostMeter())
    database.execute(
        "CREATE TABLE items (id INT PRIMARY KEY, grp INT, val FLOAT)"
    )
    database.load_rows("items", [
        (i, i % 50, float(i % 997)) for i in range(N_ROWS)
    ])
    database.execute(
        "CREATE TABLE groups (grp INT PRIMARY KEY, label TEXT)"
    )
    database.load_rows("groups", [
        (g, "g%02d" % g) for g in range(50)
    ])
    return database


def test_point_lookup_indexed(benchmark, db):
    result = benchmark(
        db.execute, "SELECT val FROM items WHERE id = 1234"
    )
    assert len(result) == 1


def test_point_lookup_scan(benchmark, db):
    # val is unindexed: full scan baseline for the same selectivity.
    result = benchmark(
        db.execute, "SELECT id FROM items WHERE val = 123.0"
    )
    assert len(result) >= 1


def test_index_saves_row_scans(benchmark, db):
    benchmark(lambda: None)
    meter = db._meter  # noqa: SLF001 — measuring the engine itself
    with meter.measure() as indexed:
        db.execute("SELECT val FROM items WHERE id = 77")
    with meter.measure() as scanned:
        db.execute("SELECT id FROM items WHERE val = 77.0")
    RESULTS.append({
        "case": "point lookup",
        "indexed_rows_scanned": indexed.get(ROWS_SCANNED, 0),
        "scan_rows_scanned": scanned.get(ROWS_SCANNED, 0),
    })
    assert indexed.get(ROWS_SCANNED, 0) == 0
    assert scanned.get(ROWS_SCANNED, 0) == N_ROWS


def test_hash_join(benchmark, db):
    result = benchmark(
        db.execute,
        "SELECT g.label, COUNT(*) AS n FROM items i "
        "JOIN groups g ON i.grp = g.grp GROUP BY g.label",
    )
    assert len(result) == 50


def test_nested_loop_join(benchmark, db):
    # Inequality condition forces the nested-loop path on a slice.
    result = benchmark(
        db.execute,
        "SELECT COUNT(*) FROM groups a JOIN groups b ON a.grp < b.grp",
    )
    assert result.scalar() == 50 * 49 / 2


def test_group_aggregate(benchmark, db):
    result = benchmark(
        db.execute,
        "SELECT grp, SUM(val) AS s, AVG(val) AS a FROM items GROUP BY grp",
    )
    assert len(result) == 50


def test_insert_throughput(benchmark):
    def build():
        database = Database(meter=CostMeter())
        database.execute(
            "CREATE TABLE t (id INT PRIMARY KEY, v FLOAT)"
        )
        database.load_rows("t", ((i, float(i)) for i in range(500)))
        return database

    database = benchmark(build)
    assert database.execute("SELECT COUNT(*) FROM t").scalar() == 500


def test_micro_report(benchmark, db):
    benchmark(lambda: None)
    if RESULTS:
        emit("engine_micro", render_table(
            RESULTS, title="Engine micro: index vs scan row costs"
        ))
